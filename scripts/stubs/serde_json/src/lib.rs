//! Offline stub for `serde_json` (see scripts/offline-check.sh).
//!
//! Every entry point returns the same loud error: real (de)serialisation
//! needs the crates.io crate, which the dev container cannot fetch.  Tests
//! that hit these paths are the documented "serde_json stub" failure set —
//! expected offline, green with real dependencies.

use std::fmt;

/// The one error this stub ever produces.
#[derive(Debug)]
pub struct Error(&'static str);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}
impl std::error::Error for Error {}

fn stub_error() -> Error {
    Error("serde_json stub: (de)serialisation unavailable offline")
}

/// Always fails: serialisation needs the real crate.
pub fn to_string<T: ?Sized>(_value: &T) -> Result<String, Error> {
    Err(stub_error())
}

/// Always fails: serialisation needs the real crate.
pub fn to_string_pretty<T: ?Sized>(_value: &T) -> Result<String, Error> {
    Err(stub_error())
}

/// Always fails: deserialisation needs the real crate.
pub fn from_str<T>(_s: &str) -> Result<T, Error> {
    Err(stub_error())
}

/// Minimal `Value` so type annotations compile; never actually produced
/// (because `from_str` always fails).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The only inhabitant the stub ever names.
    Null,
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, _key: &str) -> &Value {
        &Value::Null
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, _other: &i32) -> bool {
        false
    }
}
impl PartialEq<u64> for Value {
    fn eq(&self, _other: &u64) -> bool {
        false
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, _other: &&str) -> bool {
        false
    }
}
