//! Offline stub for `crossbeam` (see scripts/offline-check.sh): just the
//! channel API the workspace uses, backed by `std::sync::mpsc`.
//!
//! The one behavioural addition over mpsc is `Receiver::is_empty`, which
//! crossbeam has and mpsc lacks — emulated with a peek stash: `is_empty`
//! pulls an available message into the stash, and every receive drains the
//! stash before touching the underlying channel, so no message is lost or
//! reordered.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::mpsc;
    use std::sync::Mutex;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half (mpsc passthrough).
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half: mpsc plus a stash so `is_empty` can peek.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
        stash: Mutex<VecDeque<T>>,
    }

    fn relock<T: ?Sized>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            if let Some(v) = relock(&self.stash).pop_front() {
                return Ok(v);
            }
            self.rx.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            if let Some(v) = relock(&self.stash).pop_front() {
                return Ok(v);
            }
            self.rx.try_recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            if let Some(v) = relock(&self.stash).pop_front() {
                return Ok(v);
            }
            self.rx.recv_timeout(timeout)
        }

        pub fn is_empty(&self) -> bool {
            let mut stash = relock(&self.stash);
            if !stash.is_empty() {
                return false;
            }
            match self.rx.try_recv() {
                Ok(v) => {
                    stash.push_back(v);
                    false
                }
                Err(_) => true,
            }
        }
    }

    /// An unbounded MPSC channel (crossbeam's is MPMC; the workspace only
    /// ever uses one consumer per channel).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender(tx),
            Receiver {
                rx,
                stash: Mutex::new(VecDeque::new()),
            },
        )
    }
}
