//! Offline stub for `parking_lot` (see scripts/offline-check.sh): declared in the
//! workspace manifest but unused by any offline-checked target, so an
//! empty crate satisfies dependency resolution.
