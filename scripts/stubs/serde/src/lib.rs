//! Offline stub for `serde` (see scripts/offline-check.sh).
//!
//! The dev container cannot fetch crates.io, so the check workspace swaps
//! the real serde for this shim: the `Serialize`/`Deserialize` traits are
//! markers with blanket impls, and the derive macros (from the sibling
//! `serde_derive` stub) expand to nothing.  Anything that only needs the
//! types to *compile* works; tests that need real (de)serialisation fail
//! with the documented "stub" error from the serde_json shim.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Owned-deserialisation marker, mirroring `serde::de::DeserializeOwned`.
pub mod de {
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}
}
