//! Offline stub for `serde_derive`: the derive macros accept the usual
//! `#[serde(...)]` helper attributes and expand to nothing — the serde
//! stub's blanket impls satisfy every `Serialize`/`Deserialize` bound.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
