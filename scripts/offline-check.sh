#!/bin/sh
# Refresh the offline verification workspace at /tmp/check from the repo.
#
# The dev container has no network access, so crates.io dependencies
# (serde, crossbeam, ...) cannot be fetched.  /tmp/check mirrors the repo
# with those dependencies replaced by minimal API-compatible stubs
# (scripts/stubs, committed in-repo so fresh containers can rebuild the
# check workspace) and the proptest-based test files removed (proptest
# cannot be stubbed usefully).  Run this, then
# `cd /tmp/check && cargo build --release && cargo test -q`.
#
# crates/trace (the flight recorder, PR 3) and crates/storage (the WAL +
# pluggable backends, PR 7; depends only on gridwfs-chaos) are
# dependency-free on purpose — they need no stubbing and their tests all
# run here.  Path-only crates like them mirror into this workspace
# automatically: the tar below copies everything but ./target and
# ./scripts, so a new crate only needs a stub entry when it pulls a
# crates.io dependency.
set -eu

REPO=/root/repo
CHECK=/tmp/check

mkdir -p "$CHECK"
# Copy sources, preserving the incremental target dir.  Stage the copy and
# move only content-changed files across: a straight tar extract preserves
# repo mtimes, so a mirror file that was edited in place (e.g. patched to
# prove a test fails first) and then restored to *older* repo content
# would keep its stale compiled artifact — cargo's freshness check is
# mtime-based and never sees time move backward.  `cp` stamps now.
STAGE=$(mktemp -d)
(cd "$REPO" && tar cf - --exclude=./target --exclude=./scripts .) | \
    (cd "$STAGE" && tar xf -)
(cd "$STAGE" && find . -type f | while read -r f; do
    if ! cmp -s "$f" "$CHECK/$f"; then
        mkdir -p "$CHECK/$(dirname "$f")"
        cp "$f" "$CHECK/$f"
    fi
done)
rm -rf "$STAGE"
# Install the stub crates from the repo copy.
rm -rf "$CHECK/stubs"
cp -r "$REPO/scripts/stubs" "$CHECK/stubs"

# Point the workspace at the stubs and drop proptest (unstubbable).
sed -i \
    -e 's#^rand = .*#rand = { path = "stubs/rand" }#' \
    -e 's#^proptest = .*##' \
    -e 's#^criterion = .*#criterion = { path = "stubs/criterion" }#' \
    -e 's#^crossbeam = .*#crossbeam = { path = "stubs/crossbeam" }#' \
    -e 's#^parking_lot = .*#parking_lot = { path = "stubs/parking_lot" }#' \
    -e 's#^bytes = .*#bytes = { path = "stubs/bytes" }#' \
    -e 's#^serde = .*#serde = { path = "stubs/serde" }#' \
    -e 's#^serde_json = .*#serde_json = { path = "stubs/serde_json" }#' \
    "$CHECK/Cargo.toml"
sed -i -e 's#^proptest\.workspace = true##' "$CHECK"/Cargo.toml "$CHECK"/crates/*/Cargo.toml
rm -f "$CHECK"/tests/*properties*.rs "$CHECK"/crates/*/tests/*properties*.rs \
    "$CHECK"/tests/*.proptest-regressions "$CHECK"/crates/*/tests/*.proptest-regressions

echo "refreshed $CHECK"
