//! Shared helpers for the chaos-facing integration tests.

use std::sync::Once;

/// Installs a panic hook that stays quiet for the panics these tests
/// inject on purpose (payloads mentioning "chaos:" or "expected panic")
/// and delegates everything else to the default hook.  Without this the
/// injected worker panics spray backtraces over the test output.
pub fn quiet_expected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if msg.contains("chaos:") || msg.contains("expected panic") {
                return;
            }
            default(info);
        }));
    });
}
