//! The crash-recovery round trip: submit → checkpoint → hard kill →
//! restart → the job resumes from its engine checkpoint and completes
//! without redoing finished work.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use gridwfs_serve::{
    recover, Backend, DirStorage, GridSpec, JobId, JobState, RealFs, Service, ServiceConfig,
    Submission,
};
use gridwfs_wpdl::builder::WorkflowBuilder;

fn tmpdir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gridwfs-recovery-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn chain3_xml() -> String {
    let mut b = WorkflowBuilder::new("recoverable").program("p", 1.0, &["local"]);
    b.activity("a", "p");
    b.activity("b", "p");
    b.activity("c", "p");
    b.edge("a", "b")
        .edge("b", "c")
        .to_xml()
        .expect("test workflow serialises")
}

/// These tests poke `job-*` files on disk directly, so they pin the
/// per-file backend; the WAL gets the same round trips via the
/// backend-parameterized suites in `recover` and `chaos_sweep`.
fn start(dir: &Path) -> Service {
    Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        state_dir: Some(dir.to_path_buf()),
        backend: Backend::Dir,
        ..ServiceConfig::default()
    })
    .unwrap()
}

fn dir_storage(dir: &Path) -> DirStorage {
    DirStorage::new(std::sync::Arc::new(RealFs), dir).unwrap()
}

#[test]
fn checkpoint_kill_restart_resumes_from_checkpoint() {
    let dir = tmpdir("roundtrip");
    let service = start(&dir);
    // Paced 0.25: three ~250ms tasks, so the kill lands mid-workflow.
    let id = service
        .submit(Submission {
            name: "recoverable".into(),
            workflow_xml: chain3_xml(),
            grid: GridSpec::paced_grid(0.25).with_host("local", 1.0),
            seed: 7,
            deadline: None,
        })
        .unwrap();

    // Wait for the engine checkpoint to record activity `a` as done, then
    // pull the plug while `b` is still in flight.
    let ckpt = recover::checkpoint_path(&dir, id);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        assert!(Instant::now() < deadline, "first settlement never landed");
        if std::fs::read_to_string(&ckpt)
            .map(|t| t.contains("status='done'"))
            .unwrap_or(false)
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let records = service.shutdown_now();
    assert_eq!(records.len(), 1);
    assert_eq!(
        records[0].state,
        JobState::Queued,
        "aborted job is parked for the next incarnation, not failed"
    );
    assert!(ckpt.exists(), "checkpoint survives the kill");

    // Restart over the same directory: the job is re-admitted and runs to
    // completion from the checkpoint.
    let service = start(&dir);
    use std::sync::atomic::Ordering;
    assert_eq!(
        service.metrics().counters.recovered.load(Ordering::Relaxed),
        1
    );
    assert!(service.wait_all_terminal(Duration::from_secs(30)));
    let rec = service.status(id).unwrap();
    assert_eq!(rec.state, JobState::Done, "{:?}", rec.detail);
    assert!(rec.recovered);
    // The fresh run of this chain submits 3 tasks; the resumed run must
    // have skipped the checkpointed `a`.
    assert!(
        rec.task_submissions < 3,
        "resumed run redid finished work ({} submissions)",
        rec.task_submissions
    );
    drop(service);

    // Third incarnation: the terminal result is on disk, nothing to do.
    let service = start(&dir);
    assert!(service.jobs().is_empty());
    assert!(service.status(JobId(id.0)).is_none());
    drop(service);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restart_never_reuses_terminal_job_ids() {
    let dir = tmpdir("idreuse");
    let service = start(&dir);
    let first = service
        .submit(Submission {
            name: "first".into(),
            workflow_xml: chain3_xml(),
            grid: GridSpec::virtual_grid().with_host("local", 1.0),
            seed: 1,
            deadline: None,
        })
        .unwrap();
    assert!(service.wait_all_terminal(Duration::from_secs(30)));
    assert_eq!(service.status(first).unwrap().state, JobState::Done);
    service.drain();

    // The terminal job left a result marker (and checkpoint) behind; a
    // fresh submission in the next incarnation must get a fresh id, or it
    // would resume the finished workflow and inherit its result.
    let service = start(&dir);
    assert!(service.jobs().is_empty(), "terminal job not re-admitted");
    let second = service
        .submit(Submission {
            name: "second".into(),
            workflow_xml: chain3_xml(),
            grid: GridSpec::virtual_grid().with_host("local", 1.0),
            seed: 2,
            deadline: None,
        })
        .unwrap();
    assert!(
        second.0 > first.0,
        "id {second:?} reused over terminal {first:?}"
    );
    assert!(service.wait_all_terminal(Duration::from_secs(30)));
    let rec = service.status(second).unwrap();
    assert_eq!(rec.state, JobState::Done, "{:?}", rec.detail);
    assert_eq!(rec.name, "second");
    assert_eq!(
        rec.task_submissions, 3,
        "ran from scratch, not a stale ckpt"
    );
    drop(service);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn control_characters_in_labels_do_not_poison_the_state_dir() {
    let dir = tmpdir("evil-label");
    let service = start(&dir);
    let label = "evil\nhost h9 1.0";
    let id = service
        .submit(Submission {
            name: label.into(),
            workflow_xml: chain3_xml(),
            grid: GridSpec::virtual_grid().with_host("local", 1.0),
            seed: 3,
            deadline: None,
        })
        .unwrap();
    assert!(service.wait_all_terminal(Duration::from_secs(30)));
    assert_eq!(service.status(id).unwrap().state, JobState::Done);
    service.drain();
    // The restart must not choke on the persisted label.
    let service = start(&dir);
    assert!(service.jobs().is_empty());
    drop(service);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deadline_budget_carries_across_restarts() {
    let dir = tmpdir("deadline-budget");
    let service = start(&dir);
    let id = service
        .submit(Submission {
            name: "budgeted".into(),
            workflow_xml: chain3_xml(),
            grid: GridSpec::paced_grid(0.25).with_host("local", 1.0),
            seed: 7,
            deadline: Some(600.0),
        })
        .unwrap();
    // Let the first task settle, then pull the plug mid-workflow.
    let ckpt = recover::checkpoint_path(&dir, id);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        assert!(Instant::now() < deadline, "first settlement never landed");
        if std::fs::read_to_string(&ckpt)
            .map(|t| t.contains("status='done'"))
            .unwrap_or(false)
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    service.shutdown_now();
    let st = dir_storage(&dir);
    assert!(
        recover::read_elapsed(&st, id) > 0.0,
        "aborted incarnation banked its consumed executor time"
    );

    // Simulate a job that has already burned through its whole budget:
    // the next incarnation must fail the deadline instead of granting a
    // fresh one.
    recover::write_elapsed(&st, id, 1e6).unwrap();
    drop(st);
    let service = start(&dir);
    assert!(service.wait_all_terminal(Duration::from_secs(30)));
    let rec = service.status(id).unwrap();
    assert_eq!(rec.state, JobState::Failed, "{:?}", rec.detail);
    assert_eq!(rec.detail.as_deref(), Some("deadline exceeded"));
    drop(service);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn queued_jobs_survive_a_kill_without_checkpoints() {
    let dir = tmpdir("queued");
    let service = start(&dir);
    // Occupy the single worker, then queue a second job behind it.
    let blocker = service
        .submit(Submission {
            name: "blocker".into(),
            workflow_xml: chain3_xml(),
            grid: GridSpec::paced_grid(0.25).with_host("local", 1.0),
            seed: 1,
            deadline: None,
        })
        .unwrap();
    let parked = service
        .submit(Submission {
            name: "parked".into(),
            workflow_xml: chain3_xml(),
            grid: GridSpec::virtual_grid().with_host("local", 1.0),
            seed: 2,
            deadline: None,
        })
        .unwrap();
    // Kill while `parked` has never run: no checkpoint, only manifests.
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.status(blocker).unwrap().state == JobState::Queued {
        assert!(Instant::now() < deadline, "blocker never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    service.shutdown_now();
    assert!(!recover::checkpoint_path(&dir, parked).exists());

    let service = start(&dir);
    use std::sync::atomic::Ordering;
    assert_eq!(
        service.metrics().counters.recovered.load(Ordering::Relaxed),
        2
    );
    assert!(service.wait_all_terminal(Duration::from_secs(30)));
    assert_eq!(service.status(blocker).unwrap().state, JobState::Done);
    assert_eq!(service.status(parked).unwrap().state, JobState::Done);
    drop(service);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_rollback_burns_the_id_instead_of_resurrecting_the_job() {
    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    use gridwfs_serve::{CountersSnapshot, MemStorage, Op, Storage, SubmitError};

    /// [`MemStorage`] that can be armed to bounce any all-`Del` batch —
    /// the shape of a rollback whose cleanup commit fails while the
    /// staged admission records stay durable.  (Admission's own staging
    /// batch mixes `Del`s with `Put`s, so it passes through untouched.)
    struct DelFail {
        inner: MemStorage,
        arm: AtomicBool,
    }
    impl Storage for DelFail {
        fn read(&self, name: &str) -> io::Result<Vec<u8>> {
            self.inner.read(name)
        }
        fn exists(&self, name: &str) -> bool {
            self.inner.exists(name)
        }
        fn list(&self) -> io::Result<Vec<String>> {
            self.inner.list()
        }
        fn apply(&self, ops: Vec<Op>) -> Vec<(String, io::Error)> {
            if self.arm.load(Ordering::Relaxed) && ops.iter().all(|op| matches!(op, Op::Del(_))) {
                return ops
                    .iter()
                    .map(|op| {
                        (
                            op.reported_name().to_string(),
                            io::Error::other("injected commit failure"),
                        )
                    })
                    .collect();
            }
            self.inner.apply(ops)
        }
        fn counters(&self) -> CountersSnapshot {
            self.inner.counters()
        }
        fn compact(&self) -> io::Result<()> {
            self.inner.compact()
        }
        fn backend_name(&self) -> &'static str {
            self.inner.backend_name()
        }
    }

    let st = Arc::new(DelFail {
        inner: MemStorage::new(),
        arm: AtomicBool::new(false),
    });
    let config = |queue_capacity| ServiceConfig {
        workers: 1,
        queue_capacity,
        storage: Some(st.clone() as Arc<dyn Storage>),
        ..ServiceConfig::default()
    };
    let sub = |name: &str, seed, paced| Submission {
        name: name.into(),
        workflow_xml: chain3_xml(),
        grid: if paced {
            GridSpec::paced_grid(0.25).with_host("local", 1.0)
        } else {
            GridSpec::virtual_grid().with_host("local", 1.0)
        },
        seed,
        deadline: None,
    };

    // One busy worker and a 1-deep queue: the third admission is staged
    // to storage, bounces off the full queue, and rolls back — with its
    // cleanup deletes armed to fail.
    let service = Service::start(config(1)).unwrap();
    let blocker = service.submit(sub("blocker", 1, true)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.status(blocker).unwrap().state == JobState::Queued {
        assert!(Instant::now() < deadline, "blocker never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    let queued = service.submit(sub("queued", 2, false)).unwrap();
    st.arm.store(true, Ordering::Relaxed);
    match service.submit(sub("bounced", 3, false)) {
        Err(SubmitError::QueueFull) => {}
        other => panic!("expected QueueFull, got {other:?}"),
    }
    st.arm.store(false, Ordering::Relaxed);

    // The staged records could not be cleared, so the slot must hold a
    // terminal tombstone and the id must be burned, not recycled.
    let burned = JobId(queued.0 + 1);
    assert!(
        st.exists(&recover::meta_name(burned)),
        "premise: staged meta survived the failed rollback"
    );
    assert_eq!(
        st.read_to_string(&recover::result_name(burned)).unwrap(),
        "state failed\ndetail rolled-back\n"
    );
    service.shutdown_now();

    // Restart over the same storage: the interrupted jobs are re-admitted,
    // the rolled-back admission is terminal — never resurrected — and a
    // fresh submission gets a fresh id past the burned one.
    let service = Service::start(config(8)).unwrap();
    assert_eq!(
        service.jobs().len(),
        2,
        "only the genuinely admitted jobs recover"
    );
    assert!(
        service.status(burned).is_none(),
        "rolled-back admission resurrected"
    );
    let fresh = service.submit(sub("fresh", 4, false)).unwrap();
    assert_eq!(fresh.0, burned.0 + 1, "burned id handed out again");
    assert!(service.wait_all_terminal(Duration::from_secs(30)));
    assert_eq!(service.status(queued).unwrap().state, JobState::Done);
    assert_eq!(service.status(fresh).unwrap().state, JobState::Done);
    assert_eq!(service.status(fresh).unwrap().name, "fresh");
    drop(service);
}
