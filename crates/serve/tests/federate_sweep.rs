//! The federated replica-kill sweep (ISSUE: robustness tentpole).
//!
//! For every (seed, backend) combination, run a 3-replica fleet over one
//! shared storage backend, submit a load round-robin, and chaos-kill a
//! seed-chosen subset of replicas (replica 0 is always spared so the
//! fleet stays live).  A killed replica models a box that wedged right
//! after accepting work: its admissions — and their epoch-1 leases —
//! land in storage, but no worker ever runs them and no heartbeat ever
//! renews, so the leases expire and the survivors take the jobs over.
//!
//! Fleet-wide invariants, on the WAL, the per-file dir, and memory:
//!
//! 1. **Exactly one terminal state** — every admitted job ends with
//!    exactly one `.result` record and exactly one `job_settled` journal
//!    event; no job is lost, none is double-settled.
//! 2. **Takeover accounting** — the fleet's `takeovers` counter equals
//!    the number of jobs the killed replicas admitted, and nothing is
//!    ever fenced (the dead own nothing worth contesting).
//! 3. **Determinism** — paired runs of the same combo admit the same
//!    ids and produce byte-identical per-job journals, across backends
//!    too: lease traffic is wall-clock-paced, so it is kept out of the
//!    journals except for the deterministic `lease_takeover` record.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gridwfs_serve::{
    recover, DirStorage, FaultPlan, GridSpec, JobId, MemStorage, RealFs, Service, ServiceConfig,
    Storage, Submission, WalStorage,
};

const REPLICAS: usize = 3;
const JOBS: u64 = 12;
const SEEDS: std::ops::RangeInclusive<u64> = 1..=8;
const KILL_SPEC: &str = "replica_kill=0.45,panic=0.2";

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gridwfs-federate-sweep-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn submission(i: u64) -> Submission {
    Submission {
        name: format!("fleet-{i}"),
        workflow_xml: format!(
            "<Workflow name='w{i}'>\
               <Activity name='a'><Implement>p</Implement></Activity>\
               <Program name='p' duration='{}'><Option hostname='h1'/></Program>\
             </Workflow>",
            3 + i
        ),
        grid: GridSpec::virtual_grid().with_host("h1", 1.0),
        seed: 100 + i,
        deadline: None,
    }
}

fn backend_storage(kind: &str, root: &Path) -> Arc<dyn Storage> {
    match kind {
        "wal" => Arc::new(WalStorage::open(root.join("state")).unwrap()),
        "dir" => Arc::new(DirStorage::new(Arc::new(RealFs), root.join("state")).unwrap()),
        "mem" => Arc::new(MemStorage::new()),
        other => panic!("unknown backend {other}"),
    }
}

struct Outcome {
    admitted: Vec<u64>,
    /// Per-job journal bytes, keyed by job id.
    journals: BTreeMap<u64, Vec<u8>>,
    /// Per-job result record, keyed by job id.
    results: BTreeMap<u64, String>,
}

/// One fleet run: 3 replicas over one backend, seed-chosen kills.
fn run_fleet(base: &Path, seed: u64, backend: &str) -> Outcome {
    let st = backend_storage(backend, base);
    let trace = base.join("trace");
    let ttl = Duration::from_millis(500);
    let spec = format!("seed={seed},{KILL_SPEC}");
    let plan = FaultPlan::parse(&spec).unwrap();
    // Replica 0 is exempt from the kill decision (its plan simply has no
    // replica-kill probability) so the fleet always has a survivor; the
    // engine-level fault stream is identical either way.
    let spared = FaultPlan::parse(&format!("seed={seed},panic=0.2")).unwrap();
    let fleet: Vec<Service> = (0..REPLICAS)
        .map(|k| {
            Service::start(ServiceConfig {
                workers: 2,
                queue_capacity: 64,
                storage: Some(st.clone()),
                trace_dir: Some(trace.clone()),
                chaos: Some(if k == 0 { spared.clone() } else { plan.clone() }),
                replica_id: Some(format!("r{k}")),
                replica_index: k,
                fleet_size: REPLICAS,
                lease_ttl: ttl,
                ..ServiceConfig::default()
            })
            .unwrap_or_else(|e| panic!("replica {k} start ({spec}, {backend}): {e}"))
        })
        .collect();

    // Round-robin the load across the whole fleet, dead replicas
    // included: their admissions are the orphans the sweep is about.
    let mut admitted = Vec::new();
    let mut orphans = 0u64;
    for i in 0..JOBS {
        let k = (i as usize) % REPLICAS;
        let id = fleet[k]
            .submit(submission(i))
            .unwrap_or_else(|e| panic!("submit {i} to r{k} ({spec}, {backend}): {e}"));
        admitted.push(id.0);
        if k > 0 && plan.replica_killed(&format!("r{k}")) {
            orphans += 1;
        }
    }

    // Fleet-wide completion: every admitted job has a result record in
    // the *shared* storage, whoever ended up running it.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let done = admitted
            .iter()
            .all(|&id| st.exists(&recover::result_name(JobId(id))));
        if done {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "fleet never settled all jobs ({spec}, {backend})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let takeovers: u64 = fleet
        .iter()
        .map(|s| s.metrics().counters.takeovers.load(Ordering::Relaxed))
        .sum();
    assert_eq!(
        takeovers, orphans,
        "every orphaned job taken over exactly once ({spec}, {backend})"
    );
    let fenced: u64 = fleet
        .iter()
        .map(|s| s.metrics().counters.fenced_writes.load(Ordering::Relaxed))
        .sum();
    assert_eq!(
        fenced, 0,
        "dead-from-start replicas never contest a write ({spec}, {backend})"
    );
    for svc in fleet {
        drop(svc.drain());
    }

    let mut journals = BTreeMap::new();
    let mut results = BTreeMap::new();
    for &id in &admitted {
        let jid = JobId(id);
        assert!(
            !st.exists(&recover::lease_name(jid)),
            "job {id}: lease released with its settle ({spec}, {backend})"
        );
        let result = st.read_to_string(&recover::result_name(jid)).unwrap();
        results.insert(id, result);
        let bytes = std::fs::read(recover::trace_path(&trace, jid)).unwrap();
        let text = String::from_utf8_lossy(&bytes);
        assert_eq!(
            text.matches("\"kind\":\"job_settle\"").count(),
            1,
            "job {id}: exactly one terminal settlement ({spec}, {backend}):\n{text}"
        );
        journals.insert(id, bytes);
    }
    Outcome {
        admitted,
        journals,
        results,
    }
}

fn sweep(backend: &str) {
    common::quiet_expected_panics();
    for seed in SEEDS {
        let a = run_fleet(&tmpdir(&format!("{backend}-{seed}-a")), seed, backend);
        let b = run_fleet(&tmpdir(&format!("{backend}-{seed}-b")), seed, backend);
        assert_eq!(
            a.admitted, b.admitted,
            "admission schedule diverged (seed {seed}, {backend})"
        );
        assert_eq!(
            a.results, b.results,
            "terminal records diverged (seed {seed}, {backend})"
        );
        for (&id, bytes_a) in &a.journals {
            let bytes_b = &b.journals[&id];
            assert_eq!(
                bytes_a,
                bytes_b,
                "journal for job {id} not byte-identical across paired runs (seed {seed}, {backend}):\n--- a ---\n{}\n--- b ---\n{}",
                String::from_utf8_lossy(bytes_a),
                String::from_utf8_lossy(bytes_b)
            );
        }
    }
}

mod common;

#[test]
fn replica_kill_sweep_wal() {
    sweep("wal");
}

#[test]
fn replica_kill_sweep_dir() {
    sweep("dir");
}

#[test]
fn replica_kill_sweep_memory() {
    sweep("mem");
}
