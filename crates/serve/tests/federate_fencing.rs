//! Federated-serve fencing drills (ISSUE: robustness tentpole).
//!
//! The zombie-owner race, on every storage backend: replica A owns a
//! running job and is paused past its lease TTL; replica B observes the
//! expiry, claims the lease with the epoch bumped, re-runs the job, and
//! settles it.  When the zombie resumes and tries to write, its batch
//! carries a `Check` on the *old* fencing line, so the storage layer
//! rejects it atomically — the job reaches exactly one terminal state in
//! storage no matter how late the zombie wakes.
//!
//! Plus the kill-9 half of takeover: a replica is hard-killed mid-run
//! and the peer drives the orphan through the ordinary recovery path —
//! checkpoint resume, elapsed-ledger deadline budget, incarnation-tagged
//! journal append.

use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gridwfs_serve::{
    recover, DirStorage, GridSpec, JobId, JobState, MemStorage, Op, RealFs, Service, ServiceConfig,
    Storage, Submission, SubmitError, WalStorage,
};
use gridwfs_wpdl::builder::WorkflowBuilder;

fn tmpdir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gridwfs-federate-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn chain3_xml() -> String {
    let mut b = WorkflowBuilder::new("federated").program("p", 1.0, &["local"]);
    b.activity("a", "p");
    b.activity("b", "p");
    b.activity("c", "p");
    b.edge("a", "b")
        .edge("b", "c")
        .to_xml()
        .expect("test workflow serialises")
}

fn paced_sub(name: &str, scale: f64) -> Submission {
    Submission {
        name: name.into(),
        workflow_xml: chain3_xml(),
        grid: GridSpec::paced_grid(scale).with_host("local", 1.0),
        seed: 7,
        deadline: Some(600.0),
    }
}

/// One replica of an in-process fleet sharing `storage`.
fn replica(
    k: usize,
    fleet: usize,
    storage: Arc<dyn Storage>,
    trace: &Path,
    ttl: Duration,
) -> Service {
    Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 64,
        storage: Some(storage),
        trace_dir: Some(trace.to_path_buf()),
        replica_id: Some(format!("r{k}")),
        replica_index: k,
        fleet_size: fleet,
        lease_ttl: ttl,
        ..ServiceConfig::default()
    })
    .unwrap()
}

fn backends(root: &Path) -> Vec<(&'static str, Arc<dyn Storage>)> {
    vec![
        (
            "wal",
            Arc::new(WalStorage::open(root.join("wal")).unwrap()) as Arc<dyn Storage>,
        ),
        (
            "dir",
            Arc::new(DirStorage::new(Arc::new(RealFs), root.join("dir")).unwrap()),
        ),
        ("mem", Arc::new(MemStorage::new())),
    ]
}

/// Polls `cond` until true or panics after `secs`.
fn wait_for(secs: u64, what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn zombie_owner_is_fenced_on_every_backend() {
    let root = tmpdir("zombie");
    for (bt, st) in backends(&root) {
        let trace = root.join(format!("trace-{bt}"));
        let ttl = Duration::from_millis(400);
        let a = replica(0, 2, st.clone(), &trace, ttl);
        let b = replica(1, 2, st.clone(), &trace, ttl);

        // ~1.2s of paced work on A: long enough that B's takeover lands
        // while A still believes it owns the job.
        let id = a.submit(paced_sub(&format!("zombie-{bt}"), 0.4)).unwrap();

        // Let A renew at least once, then freeze its federation: no more
        // renewals, no scanning — the lease expires on schedule while
        // A's worker keeps running the engine (the zombie).
        let ac = a.metrics();
        wait_for(10, "a renewal", || {
            ac.counters.leases_renewed.load(Ordering::Relaxed) >= 1
        });
        a.pause_federation(true);

        // B observes the expiry and claims the job at epoch 2.
        let bc = b.metrics();
        wait_for(20, "takeover by b", || {
            bc.counters.takeovers.load(Ordering::Relaxed) == 1
        });
        assert!(bc.counters.lease_expirations.load(Ordering::Relaxed) >= 1);

        // The zombie's next flush for the job — checkpoint or terminal
        // settle — is rejected at the storage batch and journalled.
        wait_for(20, "zombie fenced", || {
            ac.counters.fenced_writes.load(Ordering::Relaxed) >= 1
        });

        assert!(a.wait_all_terminal(Duration::from_secs(20)), "a ({bt})");
        assert!(b.wait_all_terminal(Duration::from_secs(20)), "b ({bt})");
        assert_eq!(b.status(id).unwrap().state, JobState::Done, "({bt})");
        let json = b.metrics_json();
        for needle in [
            "\"takeovers\": 1",
            "\"lease_expirations\"",
            "\"leases_renewed\"",
            "\"fenced_writes\": 0",
        ] {
            assert!(
                json.contains(needle),
                "({bt}) metrics missing {needle}: {json}"
            );
        }
        drop(a.drain());
        drop(b.drain());

        // Exactly one terminal state in storage, owned by nobody.
        let result = st.read_to_string(&recover::result_name(id)).unwrap();
        assert!(
            result.starts_with("state done"),
            "({bt}) result is the taker's: {result}"
        );
        assert!(
            !st.exists(&recover::lease_name(id)),
            "({bt}) lease released on settle"
        );

        // The journal tells the whole story: one takeover, at least one
        // fenced zombie write, and the taker's incarnation header.
        let journal = std::fs::read_to_string(recover::trace_path(&trace, JobId(id.0))).unwrap();
        assert_eq!(
            journal.matches("\"kind\":\"lease_takeover\"").count(),
            1,
            "({bt})\n{journal}"
        );
        assert!(
            journal.contains("\"kind\":\"write_fenced\""),
            "({bt})\n{journal}"
        );
        assert!(
            journal.contains("\"epoch\":2"),
            "({bt}) takeover bumped the epoch\n{journal}"
        );
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn killed_replica_job_resumes_from_checkpoint_on_the_peer() {
    let root = tmpdir("kill9");
    let st: Arc<dyn Storage> = Arc::new(WalStorage::open(root.join("wal")).unwrap());
    let trace = root.join("trace");
    let ttl = Duration::from_millis(300);
    let a = replica(0, 2, st.clone(), &trace, ttl);
    let b = replica(1, 2, st.clone(), &trace, ttl);

    let id = a.submit(paced_sub("kill9", 0.25)).unwrap();

    // Wait until the first task's settlement is in the persisted engine
    // checkpoint, then hard-kill A: the engine aborts, the elapsed ledger
    // banks the consumed budget, the checkpoint and the lease stay put.
    wait_for(20, "first checkpointed settlement", || {
        st.read_to_string(&recover::checkpoint_name(id))
            .map(|t| t.contains("status='done'"))
            .unwrap_or(false)
    });
    a.shutdown_now();
    assert!(
        recover::read_elapsed(st.as_ref(), id) > 0.0,
        "aborted incarnation banked its consumed executor time"
    );
    assert!(
        st.exists(&recover::lease_name(id)),
        "lease survives the kill"
    );

    // B claims after expiry and drives the job through the ordinary
    // recovery path: checkpoint resume, remaining deadline, incarnation 1.
    let bc = b.metrics();
    wait_for(20, "takeover by b", || {
        bc.counters.takeovers.load(Ordering::Relaxed) == 1
    });
    assert!(b.wait_all_terminal(Duration::from_secs(30)));
    let rec = b.status(id).unwrap();
    assert_eq!(rec.state, JobState::Done, "{:?}", rec.detail);
    assert!(rec.recovered, "the taker re-admitted it as recovered work");
    drop(b.drain());

    let result = st.read_to_string(&recover::result_name(id)).unwrap();
    assert!(result.starts_with("state done"), "{result}");
    let journal = std::fs::read_to_string(recover::trace_path(&trace, JobId(id.0))).unwrap();
    assert_eq!(journal.matches("\"kind\":\"lease_takeover\"").count(), 1);
    assert!(
        journal.contains("\"incarnation\":1"),
        "takeover appended an incarnation-tagged segment:\n{journal}"
    );
    std::fs::remove_dir_all(&root).ok();
}

/// A federated restart of the *same* replica reclaims its own jobs with
/// the epoch bumped — its previous incarnation's in-flight batches are
/// fenced, its queued work is not handed to peers that lost the race.
#[test]
fn restarted_replica_reclaims_its_own_leases() {
    let root = tmpdir("reclaim");
    let st: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let trace = root.join("trace");
    let ttl = Duration::from_millis(300);
    let a = replica(0, 1, st.clone(), &trace, ttl);
    let id = a.submit(paced_sub("reclaim", 0.25)).unwrap();
    wait_for(20, "first checkpointed settlement", || {
        st.read_to_string(&recover::checkpoint_name(id))
            .map(|t| t.contains("status='done'"))
            .unwrap_or(false)
    });
    a.shutdown_now();
    let lease = recover::read_lease(st.as_ref(), id).unwrap().unwrap();
    assert_eq!((lease.owner.as_str(), lease.epoch), ("r0", 1));

    let a = replica(0, 1, st.clone(), &trace, ttl);
    let lease = recover::read_lease(st.as_ref(), id).unwrap().unwrap();
    assert_eq!(
        (lease.owner.as_str(), lease.epoch),
        ("r0", 2),
        "restart reclaims at a bumped epoch"
    );
    assert!(a.wait_all_terminal(Duration::from_secs(30)));
    assert_eq!(a.status(id).unwrap().state, JobState::Done);
    assert_eq!(
        a.metrics().counters.takeovers.load(Ordering::Relaxed),
        0,
        "reclaiming your own lease is not a takeover"
    );
    drop(a.drain());
    assert!(!st.exists(&recover::lease_name(id)));
    std::fs::remove_dir_all(&root).ok();
}

/// A claim the winner cannot admit locally must be walked back, not
/// renewed forever: plant a torn job (meta but no workflow) under an
/// expired ghost lease, watch the sweeper claim it, fail `load_job`, and
/// release the lease — then restore the workflow record and watch the
/// next sweep retry the takeover to completion.
#[test]
fn unservable_claim_is_released_and_retried() {
    let root = tmpdir("release");
    let st: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let trace = root.join("trace");
    let a = replica(0, 1, st.clone(), &trace, Duration::from_millis(400));

    // One atomic batch: a full submission minus its workflow record,
    // owned by a departed replica whose lease expired long ago.
    let id = JobId(7);
    let sub = paced_sub("release", 0.05);
    let ghost = recover::Lease {
        owner: "ghost".into(),
        epoch: 1,
        expires_at: 0.0,
    };
    let mut ops = recover::write_submission_ops(id, &sub, Some(ghost.payload()));
    ops.retain(|op| !matches!(op, Op::Put(n, _) if *n == recover::workflow_name(id)));
    assert!(st.apply(ops).is_empty());

    // The sweeper sees the expiry and claims the orphan, but admission
    // fails (no workflow record), so the fresh lease must come back off.
    let ac = a.metrics();
    wait_for(20, "ghost lease expiry observed", || {
        ac.counters.lease_expirations.load(Ordering::Relaxed) >= 1
    });
    wait_for(20, "failed claim walked back", || {
        !st.exists(&recover::lease_name(id))
    });
    assert_eq!(
        ac.counters.takeovers.load(Ordering::Relaxed),
        0,
        "a claim that never admitted is not a takeover"
    );

    // Heal the job; the next sweep retries the takeover and runs it.
    st.put(&recover::workflow_name(id), sub.workflow_xml.as_bytes())
        .unwrap();
    wait_for(20, "takeover retried after heal", || {
        ac.counters.takeovers.load(Ordering::Relaxed) == 1
    });
    assert!(a.wait_all_terminal(Duration::from_secs(20)));
    assert_eq!(a.status(id).unwrap().state, JobState::Done);
    drop(a.drain());
    let result = st.read_to_string(&recover::result_name(id)).unwrap();
    assert!(result.starts_with("state done"), "{result}");
    assert!(!st.exists(&recover::lease_name(id)));
    std::fs::remove_dir_all(&root).ok();
}

/// Two replicas misconfigured with the same id stride (neither sets a
/// distinct `replica_index`) mint colliding job ids over shared storage.
/// The admission guard must reject the second submission instead of
/// silently overwriting the peer's live job — and the rejecting replica
/// keeps serving: its next mint lands on a free id.
#[test]
fn colliding_admission_is_rejected_not_overwritten() {
    let root = tmpdir("collide");
    let st: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let trace = root.join("trace");
    // Both claim index 0 of a fleet of 1 — the misconfiguration the
    // guard exists for.  Long ttl keeps takeover out of the picture.
    let a = replica(0, 1, st.clone(), &trace, Duration::from_secs(5));
    let b = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 64,
        storage: Some(st.clone()),
        trace_dir: Some(trace.to_path_buf()),
        replica_id: Some("imposter".into()),
        replica_index: 0,
        fleet_size: 1,
        lease_ttl: Duration::from_secs(5),
        ..ServiceConfig::default()
    })
    .unwrap();

    let id = a.submit(paced_sub("collide-a", 0.05)).unwrap();
    assert_eq!(id.0, 1);
    match b.submit(paced_sub("collide-b", 0.05)) {
        Err(SubmitError::Io(msg)) => {
            assert!(msg.contains("already in use"), "{msg}");
            assert!(msg.contains("--replica-index"), "{msg}");
        }
        other => panic!("collision admitted: {other:?}"),
    }
    assert!(b.status(id).is_none(), "no phantom record for the loser");

    // The burned id is not recycled: b's next submission mints id 2 and
    // runs normally alongside a's job 1.
    let id2 = b.submit(paced_sub("collide-b2", 0.05)).unwrap();
    assert_eq!(id2.0, 2);
    assert!(a.wait_all_terminal(Duration::from_secs(20)));
    assert!(b.wait_all_terminal(Duration::from_secs(20)));
    assert_eq!(a.status(id).unwrap().state, JobState::Done);
    assert_eq!(b.status(id2).unwrap().state, JobState::Done);
    drop(a.drain());
    drop(b.drain());

    // Job 1's records are a's throughout: the collision never touched them.
    let meta = st.read_to_string(&recover::meta_name(id)).unwrap();
    assert!(meta.contains("collide-a"), "{meta}");
    let result = st.read_to_string(&recover::result_name(id)).unwrap();
    assert!(result.starts_with("state done"), "{result}");
    std::fs::remove_dir_all(&root).ok();
}
