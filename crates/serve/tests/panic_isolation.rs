//! Worker panic isolation (ISSUE satellite): one workflow whose closure
//! panics must fail **only its own job** — the worker thread survives, the
//! other N−1 jobs complete, the panic is counted and journalled.

mod common;

use std::sync::atomic::Ordering;
use std::time::Duration;

use gridwfs_serve::{recover, FaultPlan, GridSpec, JobState, Service, ServiceConfig, Submission};

#[test]
fn one_panicking_workflow_fails_alone_while_five_complete() {
    common::quiet_expected_panics();

    let trace = std::env::temp_dir().join(format!(
        "gridwfs-panic-iso-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&trace);

    // Six jobs, seeds 100..=105; the plan targets exactly seed 103.  With
    // only two workers, every worker is guaranteed to keep popping jobs
    // *after* the panic — three jobs each — so completion of all six
    // proves the pool survived, not just that the panic was caught.
    let plan = FaultPlan::parse("seed=1,panic_seed=103").unwrap();
    let svc = Service::start(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        trace_dir: Some(trace.clone()),
        chaos: Some(plan),
        ..ServiceConfig::default()
    })
    .unwrap();

    let mut ids = Vec::new();
    for i in 0..6u64 {
        let id = svc
            .submit(Submission {
                name: format!("iso-{i}"),
                workflow_xml: "<Workflow name='w'>\
                   <Activity name='a'><Implement>p</Implement></Activity>\
                   <Program name='p' duration='5'><Option hostname='h1'/></Program>\
                 </Workflow>"
                    .into(),
                grid: GridSpec::virtual_grid().with_host("h1", 1.0),
                seed: 100 + i,
                deadline: None,
            })
            .unwrap();
        ids.push((id, 100 + i));
    }

    assert!(
        svc.wait_all_terminal(Duration::from_secs(30)),
        "a worker died: jobs after the panic never ran"
    );
    assert_eq!(
        svc.metrics().counters.jobs_panicked.load(Ordering::Relaxed),
        1,
        "exactly one panic expected"
    );
    let metrics_json = svc.metrics_json();
    assert!(
        metrics_json.contains("\"jobs_panicked\": 1"),
        "snapshot missing the panic counter: {metrics_json}"
    );

    let records = svc.drain();
    assert_eq!(records.len(), 6);
    for (id, seed) in ids {
        let rec = records.iter().find(|r| r.id == id).unwrap();
        if seed == 103 {
            assert_eq!(rec.state, JobState::Failed, "targeted job must fail");
            let detail = rec.detail.as_deref().unwrap_or("");
            assert!(
                detail.contains("workflow panicked") && detail.contains("chaos:"),
                "failure detail should carry the panic payload, got: {detail}"
            );
            // The flight journal records the panic for post-mortem.
            let journal = std::fs::read_to_string(recover::trace_path(&trace, id)).unwrap();
            assert!(
                journal.contains("job_panicked"),
                "journal missing job_panicked event:\n{journal}"
            );
        } else {
            assert_eq!(
                rec.state,
                JobState::Done,
                "job {id} (seed {seed}) should be untouched by the panic"
            );
        }
    }
}
