//! The headline chaos sweep (ISSUE: robustness tentpole).
//!
//! For every (fault plan, seed) combination — 4 plans × 8 seeds = 32
//! combos — run a 2-worker service against a seeded [`FaultPlan`], then
//! restart the same state directory with chaos off, and assert the three
//! service invariants:
//!
//! 1. **No deadlock** — `wait_all_terminal` returns within its budget in
//!    both phases, under injected panics, stalls, and fs faults.
//! 2. **No admitted job lost** — every submission that returned `Ok` is,
//!    after the restart, terminal on disk, terminal in memory, or
//!    explicitly quarantined (corrupt-by-injection, moved aside and
//!    counted); nothing silently vanishes.
//! 3. **Determinism** — running the identical combo in a fresh temp
//!    directory admits the same jobs and produces byte-identical per-job
//!    flight journals, because every fault decision is a pure function of
//!    (plan seed, file name, op, sequence) and never of wall time or path.

mod common;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

use gridwfs_serve::{
    recover, FaultPlan, GridSpec, JobId, Service, ServiceConfig, Submission, SubmitError,
};

const JOBS: u64 = 5;
const SEEDS: std::ops::RangeInclusive<u64> = 1..=8;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gridwfs-chaos-sweep-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn submission(i: u64) -> Submission {
    Submission {
        name: format!("sweep-{i}"),
        workflow_xml: format!(
            "<Workflow name='w{i}'>\
               <Activity name='a'><Implement>p</Implement></Activity>\
               <Program name='p' duration='{}'><Option hostname='h1'/></Program>\
             </Workflow>",
            3 + i
        ),
        grid: GridSpec::virtual_grid().with_host("h1", 1.0),
        seed: 100 + i,
        deadline: None,
    }
}

/// Everything a combo run produces that the invariants inspect.
struct Outcome {
    admitted: Vec<u64>,
    /// Per-job journal bytes after BOTH phases, keyed by job id.
    journals: BTreeMap<u64, Vec<u8>>,
}

fn config(state: &Path, trace: &Path, chaos: Option<FaultPlan>) -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        state_dir: Some(state.to_path_buf()),
        trace_dir: Some(trace.to_path_buf()),
        chaos,
        ..ServiceConfig::default()
    }
}

/// Phase 1 (chaos on) + phase 2 (restart, chaos off) in `base`.
fn run_combo(base: &Path, spec: &str) -> Outcome {
    let state = base.join("state");
    let trace = base.join("trace");
    let plan = FaultPlan::parse(spec).unwrap_or_else(|e| panic!("bad spec '{spec}': {e}"));

    // Phase 1: chaos on.
    let svc = Service::start(config(&state, &trace, Some(plan)))
        .unwrap_or_else(|e| panic!("phase-1 start ({spec}): {e}"));
    let mut admitted = Vec::new();
    for i in 0..JOBS {
        match svc.submit(submission(i)) {
            Ok(id) => admitted.push(id.0),
            // An injected fault while persisting the submission: loudly
            // rejected, nothing of the job remains — not "admitted".
            Err(SubmitError::Io(_)) => {}
            Err(e) => panic!("unexpected submit error ({spec}): {e}"),
        }
    }
    assert!(
        svc.wait_all_terminal(Duration::from_secs(60)),
        "phase-1 deadlock under chaos ({spec})"
    );
    drop(svc.drain());

    // Phase 2: restart the same state dir with chaos off; recovery must
    // re-admit every unfinished job and run it to a terminal state.
    let svc = Service::start(config(&state, &trace, None))
        .unwrap_or_else(|e| panic!("phase-2 start ({spec}): {e}"));
    assert!(
        svc.wait_all_terminal(Duration::from_secs(60)),
        "phase-2 deadlock after restart ({spec})"
    );
    let records = svc.drain();

    // Invariant 2: every admitted job is accounted for.
    for &id in &admitted {
        let jid = JobId(id);
        let terminal_on_disk = recover::result_path(&state, jid).exists();
        let terminal_in_memory = records.iter().any(|r| r.id == jid && r.state.is_terminal());
        let quarantined = recover::meta_path(&state, jid)
            .with_extension("meta.quarantined")
            .exists();
        assert!(
            terminal_on_disk || terminal_in_memory || quarantined,
            "job {id} lost ({spec}): admitted but neither terminal nor quarantined"
        );
    }

    let mut journals = BTreeMap::new();
    for &id in &admitted {
        let bytes = std::fs::read(recover::trace_path(&trace, JobId(id))).unwrap_or_default();
        journals.insert(id, bytes);
    }
    Outcome { admitted, journals }
}

/// Runs each seeded variant of `template` twice in fresh directories and
/// asserts the two runs are indistinguishable.
fn sweep(tag: &str, template: &str) {
    common::quiet_expected_panics();
    for seed in SEEDS {
        let spec = format!("seed={seed},{template}");
        let a = run_combo(&tmpdir(&format!("{tag}-{seed}-a")), &spec);
        let b = run_combo(&tmpdir(&format!("{tag}-{seed}-b")), &spec);
        assert_eq!(
            a.admitted, b.admitted,
            "admission schedule diverged ({spec})"
        );
        for (&id, bytes_a) in &a.journals {
            let bytes_b = &b.journals[&id];
            assert_eq!(
                bytes_a,
                bytes_b,
                "journal for job {id} not byte-identical across runs ({spec}):\n--- a ---\n{}\n--- b ---\n{}",
                String::from_utf8_lossy(bytes_a),
                String::from_utf8_lossy(bytes_b)
            );
        }
    }
}

#[test]
fn sweep_workflow_panics() {
    sweep("panic", "panic=0.3");
}

#[test]
fn sweep_state_dir_write_and_rename_faults() {
    sweep("wr", "write=0.25,rename=0.25");
}

#[test]
fn sweep_torn_writes_and_read_faults() {
    sweep("torn", "torn=0.4,read=0.2");
}

#[test]
fn sweep_everything_at_once() {
    sweep(
        "all",
        "panic=0.15,stall=0.4,stall_ms=5,write=0.15,torn=0.2,rename=0.15,read=0.1",
    );
}
