//! The headline chaos sweep (ISSUE: robustness tentpole).
//!
//! For every (fault plan, seed) combination — 4 plans × 8 seeds = 32
//! combos — run a 2-worker service against a seeded [`FaultPlan`], then
//! restart the same storage with chaos off, and assert the three service
//! invariants **on every storage backend** (WAL, per-file dir, memory):
//!
//! 1. **No deadlock** — `wait_all_terminal` returns within its budget in
//!    both phases, under injected panics, stalls, and storage faults.
//! 2. **No admitted job lost** — every submission that returned `Ok` is,
//!    after the restart, terminal in storage, terminal in memory, or
//!    explicitly quarantined (corrupt-by-injection, moved aside and
//!    counted); nothing silently vanishes.
//! 3. **Determinism** — running the identical combo in a fresh temp
//!    directory admits the same jobs and produces byte-identical per-job
//!    flight journals, because every fault decision is a pure function of
//!    (plan seed, record name, op, sequence) and never of wall time, path,
//!    or backend file layout.
//!
//! Fault injection sits at the [`Storage`] record level (`ChaosStorage`),
//! so the exact same decision stream hits the WAL, the per-file dir, and
//! the in-memory table.

mod common;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use gridwfs_serve::{
    recover, Backend, FaultPlan, GridSpec, JobId, MemStorage, Service, ServiceConfig, Storage,
    Submission, SubmitError, WalStorage,
};

const JOBS: u64 = 5;
const SEEDS: std::ops::RangeInclusive<u64> = 1..=8;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gridwfs-chaos-sweep-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn submission(i: u64) -> Submission {
    Submission {
        name: format!("sweep-{i}"),
        workflow_xml: format!(
            "<Workflow name='w{i}'>\
               <Activity name='a'><Implement>p</Implement></Activity>\
               <Program name='p' duration='{}'><Option hostname='h1'/></Program>\
             </Workflow>",
            3 + i
        ),
        grid: GridSpec::virtual_grid().with_host("h1", 1.0),
        seed: 100 + i,
        deadline: None,
    }
}

/// Everything a combo run produces that the invariants inspect.
struct Outcome {
    admitted: Vec<u64>,
    /// Per-job journal bytes after BOTH phases, keyed by job id.
    journals: BTreeMap<u64, Vec<u8>>,
}

fn config(
    state: &Path,
    trace: &Path,
    chaos: Option<FaultPlan>,
    backend: Backend,
    storage: Option<Arc<dyn Storage>>,
) -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        state_dir: Some(state.to_path_buf()),
        trace_dir: Some(trace.to_path_buf()),
        chaos,
        backend,
        storage,
        ..ServiceConfig::default()
    }
}

/// Phase 1 (chaos on) + phase 2 (restart, chaos off) in `base`.
fn run_combo(base: &Path, spec: &str, backend: Backend) -> Outcome {
    let state = base.join("state");
    let trace = base.join("trace");
    let plan = FaultPlan::parse(spec).unwrap_or_else(|e| panic!("bad spec '{spec}': {e}"));
    // The memory backend has no disk to restart from: both phases (and
    // the final inspection) share one table through the storage override,
    // which is exactly how a caller embeds the service without a disk.
    let mem: Option<Arc<MemStorage>> =
        (backend == Backend::Memory).then(|| Arc::new(MemStorage::new()));
    let override_storage = || mem.clone().map(|m| m as Arc<dyn Storage>);

    // Phase 1: chaos on.
    let svc = Service::start(config(
        &state,
        &trace,
        Some(plan),
        backend,
        override_storage(),
    ))
    .unwrap_or_else(|e| panic!("phase-1 start ({spec}, {backend:?}): {e}"));
    let mut admitted = Vec::new();
    for i in 0..JOBS {
        match svc.submit(submission(i)) {
            Ok(id) => admitted.push(id.0),
            // An injected fault while persisting the submission: loudly
            // rejected, nothing of the job remains — not "admitted".
            Err(SubmitError::Io(_)) => {}
            Err(e) => panic!("unexpected submit error ({spec}, {backend:?}): {e}"),
        }
    }
    assert!(
        svc.wait_all_terminal(Duration::from_secs(60)),
        "phase-1 deadlock under chaos ({spec}, {backend:?})"
    );
    // `drain` consumes the service, so the backend (and a WAL's append
    // handle) is released before the restart opens the same storage.
    drop(svc.drain());

    // Phase 2: restart the same storage with chaos off; recovery must
    // re-admit every unfinished job and run it to a terminal state.
    let svc = Service::start(config(&state, &trace, None, backend, override_storage()))
        .unwrap_or_else(|e| panic!("phase-2 start ({spec}, {backend:?}): {e}"));
    assert!(
        svc.wait_all_terminal(Duration::from_secs(60)),
        "phase-2 deadlock after restart ({spec}, {backend:?})"
    );
    let records = svc.drain();

    // Invariant 2: every admitted job is accounted for.  Inspect through
    // the trait so the check is layout-agnostic (the WAL has no per-job
    // files to stat).
    let st: Arc<dyn Storage> = match backend {
        Backend::Memory => mem.clone().unwrap(),
        Backend::Dir => Arc::new(
            gridwfs_serve::DirStorage::new(Arc::new(gridwfs_serve::RealFs), &state).unwrap(),
        ),
        Backend::Wal => Arc::new(WalStorage::open(&state).unwrap()),
    };
    for &id in &admitted {
        let jid = JobId(id);
        let terminal_in_storage = st.exists(&recover::result_name(jid));
        let terminal_in_memory = records.iter().any(|r| r.id == jid && r.state.is_terminal());
        let quarantined = st.exists(&format!("{}.quarantined", recover::meta_name(jid)));
        assert!(
            terminal_in_storage || terminal_in_memory || quarantined,
            "job {id} lost ({spec}, {backend:?}): admitted but neither terminal nor quarantined"
        );
    }

    let mut journals = BTreeMap::new();
    for &id in &admitted {
        let bytes = std::fs::read(recover::trace_path(&trace, JobId(id))).unwrap_or_default();
        journals.insert(id, bytes);
    }
    Outcome { admitted, journals }
}

/// Runs each seeded variant of `template` twice in fresh directories, on
/// every backend, and asserts the two runs are indistinguishable.  The
/// admission schedule must also agree **across** backends: the fault
/// stream is keyed by record name, not by what the backend does with it.
fn sweep(tag: &str, template: &str) {
    common::quiet_expected_panics();
    for seed in SEEDS {
        let spec = format!("seed={seed},{template}");
        let mut admitted_by_backend: Vec<Vec<u64>> = Vec::new();
        for backend in [Backend::Wal, Backend::Dir, Backend::Memory] {
            let bt = backend.as_str();
            let a = run_combo(&tmpdir(&format!("{tag}-{seed}-{bt}-a")), &spec, backend);
            let b = run_combo(&tmpdir(&format!("{tag}-{seed}-{bt}-b")), &spec, backend);
            assert_eq!(
                a.admitted, b.admitted,
                "admission schedule diverged ({spec}, {backend:?})"
            );
            for (&id, bytes_a) in &a.journals {
                let bytes_b = &b.journals[&id];
                assert_eq!(
                    bytes_a,
                    bytes_b,
                    "journal for job {id} not byte-identical across runs ({spec}, {backend:?}):\n--- a ---\n{}\n--- b ---\n{}",
                    String::from_utf8_lossy(bytes_a),
                    String::from_utf8_lossy(bytes_b)
                );
            }
            admitted_by_backend.push(a.admitted);
        }
        for pair in admitted_by_backend.windows(2) {
            assert_eq!(
                pair[0], pair[1],
                "admission schedule diverged across backends ({spec})"
            );
        }
    }
}

#[test]
fn sweep_workflow_panics() {
    sweep("panic", "panic=0.3");
}

#[test]
fn sweep_state_dir_write_and_rename_faults() {
    sweep("wr", "write=0.25,rename=0.25");
}

#[test]
fn sweep_torn_writes_and_read_faults() {
    sweep("torn", "torn=0.4,read=0.2");
}

#[test]
fn sweep_everything_at_once() {
    sweep(
        "all",
        "panic=0.15,stall=0.4,stall_ms=5,write=0.15,torn=0.2,rename=0.15,read=0.1",
    );
}
