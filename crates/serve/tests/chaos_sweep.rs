//! The headline chaos sweep (ISSUE: robustness tentpole).
//!
//! For every (fault plan, seed) combination — 4 plans × 8 seeds = 32
//! combos — run a 2-worker service against a seeded [`FaultPlan`], then
//! restart the same storage with chaos off, and assert the three service
//! invariants **on every storage backend** (WAL, per-file dir, memory):
//!
//! 1. **No deadlock** — `wait_all_terminal` returns within its budget in
//!    both phases, under injected panics, stalls, and storage faults.
//! 2. **No admitted job lost** — every submission that returned `Ok` is,
//!    after the restart, terminal in storage, terminal in memory, or
//!    explicitly quarantined (corrupt-by-injection, moved aside and
//!    counted); nothing silently vanishes.
//! 3. **Determinism** — running the identical combo in a fresh temp
//!    directory admits the same jobs and produces byte-identical per-job
//!    flight journals, because every fault decision is a pure function of
//!    (plan seed, record name, op, sequence) and never of wall time, path,
//!    or backend file layout.
//!
//! Fault injection sits at the [`Storage`] record level (`ChaosStorage`),
//! so the exact same decision stream hits the WAL, the per-file dir, and
//! the in-memory table.
//!
//! The sweep is parameterized over the *workflow shape* as well: plain
//! chains and `<Foreach>` fan-outs with per-item retry and a dead-letter
//! queue.  For fan-outs a fourth invariant applies — **per-item
//! accounting**: in the final checkpoint of a done job every instantiated
//! item holds exactly one terminal state (settled + dead-lettered ==
//! instantiated; nothing lost, nothing double-settled) and the persisted
//! `.dlq` record names exactly the checkpoint's dead-lettered items.  The
//! accounting is asserted strictly when the plan injects no storage
//! faults, and is compared for equality across runs *and across backends*
//! always (the record-level fault stream is backend-agnostic, so even
//! what chaos leaves behind must match).

mod common;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use grid_wfs::ItemState;
use gridwfs_serve::{
    recover, Backend, FaultPlan, GridSpec, JobId, MemStorage, ProfileSpec, SchedulerSpec, Service,
    ServiceConfig, Storage, Submission, SubmitError, WalStorage,
};

const JOBS: u64 = 5;
const SEEDS: std::ops::RangeInclusive<u64> = 1..=8;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gridwfs-chaos-sweep-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn submission(i: u64) -> Submission {
    Submission {
        name: format!("sweep-{i}"),
        workflow_xml: format!(
            "<Workflow name='w{i}'>\
               <Activity name='a'><Implement>p</Implement></Activity>\
               <Program name='p' duration='{}'><Option hostname='h1'/></Program>\
             </Workflow>",
            3 + i
        ),
        grid: GridSpec::virtual_grid().with_host("h1", 1.0),
        seed: 100 + i,
        deadline: None,
    }
}

/// A MapReduce-shaped job: a fan-out over four items whose program
/// raises a recoverable exception probabilistically (seed-driven), with
/// one retry before the item parks in the dead-letter queue, then a
/// reduce step.  Parked items do not fail the job.
fn submission_foreach(i: u64) -> Submission {
    Submission {
        name: format!("mapred-{i}"),
        workflow_xml: format!(
            "<Workflow name='m{i}'>\
               <Exception name='flaky' fatal='false'/>\
               <Activity name='map' interval='1'><Implement>m</Implement>\
                 <Foreach max_parallel='2' max_attempts='2' on_item_failure='dlq'>\
                   <Item>north</Item><Item>east</Item><Item>south</Item><Item>west</Item>\
                 </Foreach>\
               </Activity>\
               <Activity name='reduce'><Implement>r</Implement></Activity>\
               <Transition from='map' to='reduce'/>\
               <Program name='m' duration='{}'><Option hostname='h1'/></Program>\
               <Program name='r' duration='2'><Option hostname='h1'/></Program>\
             </Workflow>",
            3 + i
        ),
        grid: GridSpec::virtual_grid()
            .with_host("h1", 1.0)
            .with_profile(ProfileSpec {
                program: "m".into(),
                checkpoint_period: Some(1.0),
                soft_crash_mttf: None,
                exception: Some(("flaky".into(), 1, 0.3)),
            }),
        seed: 100 + i,
        deadline: None,
    }
}

/// A resilient-scheduler job: three options where the first host dies
/// almost immediately, so the scorer must steer the retries.  Used by the
/// targeted-panic sweep below to prove the resilient path keeps every
/// chaos invariant — paired-run and cross-backend byte-identical
/// journals included.
fn submission_resilient(i: u64) -> Submission {
    Submission {
        name: format!("steer-{i}"),
        workflow_xml: format!(
            "<Workflow name='s{i}'>\
               <Activity name='a' max_tries='4' interval='1'><Implement>p</Implement></Activity>\
               <Program name='p' duration='{}'>\
                 <Option hostname='doomed.host'/>\
                 <Option hostname='ok1'/>\
                 <Option hostname='ok2'/>\
               </Program>\
             </Workflow>",
            3 + i
        ),
        grid: GridSpec::virtual_grid()
            .with_unreliable_host("doomed.host", 1.0, 0.001, 1e6)
            .with_host("ok1", 1.0)
            .with_host("ok2", 1.0)
            .with_scheduler(SchedulerSpec::Resilient),
        seed: 100 + i,
        deadline: None,
    }
}

/// Everything a combo run produces that the invariants inspect.
struct Outcome {
    admitted: Vec<u64>,
    /// Per-job journal bytes after BOTH phases, keyed by job id.
    journals: BTreeMap<u64, Vec<u8>>,
    /// Per-job item accounting lines derived from the final checkpoint
    /// and `.dlq` record (empty vec for jobs without a fan-out).
    accounting: BTreeMap<u64, Vec<String>>,
}

/// Derives the per-item accounting of one job from what storage holds
/// after phase 2.  With `strict` (no storage faults were injected) the
/// strong invariants are asserted outright: the job is done, its final
/// checkpoint parses, every item is terminal — settled + dead-lettered
/// == instantiated, one state each — and the `.dlq` record lists exactly
/// the checkpoint's dead-lettered indices.  Without `strict`, whatever
/// chaos left behind is rendered to lines so runs and backends can be
/// compared for equality.
fn item_accounting(st: &dyn Storage, id: JobId, strict: bool, ctx: &str) -> Vec<String> {
    let mut out = Vec::new();
    let done = st
        .read_to_string(&recover::result_name(id))
        .map(|r| r.starts_with("state done"))
        .unwrap_or(false);
    if !done {
        // Legitimately failed (e.g. a chaos-injected workflow panic keyed
        // by the job seed, which recurs identically every incarnation):
        // the per-item invariants apply to completed fan-outs only.
        out.push("not-done".into());
        return out;
    }
    let ckpt = match st.read_to_string(&recover::checkpoint_name(id)) {
        Ok(text) => text,
        Err(e) => {
            assert!(!strict, "{ctx}: {id}: done job without a checkpoint: {e}");
            out.push("no-ckpt".into());
            return out;
        }
    };
    let instance = match grid_wfs::checkpoint::from_xml(&ckpt) {
        Ok(instance) => instance,
        Err(e) => {
            // A torn final group commit can land the done marker next to
            // an unreadable checkpoint on a per-record backend; the torn
            // bytes are still deterministic, which is what non-strict
            // sweeps compare.
            assert!(!strict, "{ctx}: {id}: done job with torn checkpoint: {e}");
            out.push("torn-ckpt".into());
            return out;
        }
    };
    let mut ckpt_dlq = Vec::new();
    for (name, items) in instance.items_iter() {
        for (idx, p) in items.iter().enumerate() {
            if strict {
                assert!(
                    p.state.is_terminal(),
                    "{ctx}: {id}: item {name}[{idx}] left {:?} in a done job",
                    p.state
                );
            }
            if p.state == ItemState::DeadLettered {
                ckpt_dlq.push(idx);
            }
            out.push(format!(
                "{name}[{idx}] {} attempts={}",
                p.state.wire_str(),
                p.attempts
            ));
        }
    }
    let dlq_record: Vec<usize> = recover::read_dlq(st, id)
        .map(|entries| entries.iter().map(|e| e.index).collect())
        .unwrap_or_default();
    if strict {
        assert_eq!(
            dlq_record, ckpt_dlq,
            "{ctx}: {id}: .dlq record disagrees with the checkpoint"
        );
    }
    out.push(format!("dlq-record {dlq_record:?}"));
    out
}

fn config(
    state: &Path,
    trace: &Path,
    chaos: Option<FaultPlan>,
    backend: Backend,
    storage: Option<Arc<dyn Storage>>,
) -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        state_dir: Some(state.to_path_buf()),
        trace_dir: Some(trace.to_path_buf()),
        chaos,
        backend,
        storage,
        ..ServiceConfig::default()
    }
}

/// Phase 1 (chaos on) + phase 2 (restart, chaos off) in `base`.
fn run_combo(base: &Path, spec: &str, backend: Backend, submit: fn(u64) -> Submission) -> Outcome {
    let state = base.join("state");
    let trace = base.join("trace");
    let plan = FaultPlan::parse(spec).unwrap_or_else(|e| panic!("bad spec '{spec}': {e}"));
    let strict = !plan.has_fs_faults();
    // The memory backend has no disk to restart from: both phases (and
    // the final inspection) share one table through the storage override,
    // which is exactly how a caller embeds the service without a disk.
    let mem: Option<Arc<MemStorage>> =
        (backend == Backend::Memory).then(|| Arc::new(MemStorage::new()));
    let override_storage = || mem.clone().map(|m| m as Arc<dyn Storage>);

    // Phase 1: chaos on.
    let svc = Service::start(config(
        &state,
        &trace,
        Some(plan),
        backend,
        override_storage(),
    ))
    .unwrap_or_else(|e| panic!("phase-1 start ({spec}, {backend:?}): {e}"));
    let mut admitted = Vec::new();
    for i in 0..JOBS {
        match svc.submit(submit(i)) {
            Ok(id) => admitted.push(id.0),
            // An injected fault while persisting the submission: loudly
            // rejected, nothing of the job remains — not "admitted".
            Err(SubmitError::Io(_)) => {}
            Err(e) => panic!("unexpected submit error ({spec}, {backend:?}): {e}"),
        }
    }
    assert!(
        svc.wait_all_terminal(Duration::from_secs(60)),
        "phase-1 deadlock under chaos ({spec}, {backend:?})"
    );
    // `drain` consumes the service, so the backend (and a WAL's append
    // handle) is released before the restart opens the same storage.
    drop(svc.drain());

    // Phase 2: restart the same storage with chaos off; recovery must
    // re-admit every unfinished job and run it to a terminal state.
    let svc = Service::start(config(&state, &trace, None, backend, override_storage()))
        .unwrap_or_else(|e| panic!("phase-2 start ({spec}, {backend:?}): {e}"));
    assert!(
        svc.wait_all_terminal(Duration::from_secs(60)),
        "phase-2 deadlock after restart ({spec}, {backend:?})"
    );
    let records = svc.drain();

    // Invariant 2: every admitted job is accounted for.  Inspect through
    // the trait so the check is layout-agnostic (the WAL has no per-job
    // files to stat).
    let st: Arc<dyn Storage> = match backend {
        Backend::Memory => mem.clone().unwrap(),
        Backend::Dir => Arc::new(
            gridwfs_serve::DirStorage::new(Arc::new(gridwfs_serve::RealFs), &state).unwrap(),
        ),
        Backend::Wal => Arc::new(WalStorage::open(&state).unwrap()),
    };
    for &id in &admitted {
        let jid = JobId(id);
        let terminal_in_storage = st.exists(&recover::result_name(jid));
        let terminal_in_memory = records.iter().any(|r| r.id == jid && r.state.is_terminal());
        let quarantined = st.exists(&format!("{}.quarantined", recover::meta_name(jid)));
        assert!(
            terminal_in_storage || terminal_in_memory || quarantined,
            "job {id} lost ({spec}, {backend:?}): admitted but neither terminal nor quarantined"
        );
    }

    let mut journals = BTreeMap::new();
    let mut accounting = BTreeMap::new();
    for &id in &admitted {
        let bytes = std::fs::read(recover::trace_path(&trace, JobId(id))).unwrap_or_default();
        journals.insert(id, bytes);
        let ctx = format!("({spec}, {backend:?})");
        accounting.insert(id, item_accounting(st.as_ref(), JobId(id), strict, &ctx));
    }
    Outcome {
        admitted,
        journals,
        accounting,
    }
}

/// Runs each seeded variant of `template` twice in fresh directories, on
/// every backend, and asserts the two runs are indistinguishable.  The
/// admission schedule must also agree **across** backends: the fault
/// stream is keyed by record name, not by what the backend does with it.
fn sweep(tag: &str, template: &str, submit: fn(u64) -> Submission) {
    common::quiet_expected_panics();
    for seed in SEEDS {
        let spec = format!("seed={seed},{template}");
        let mut admitted_by_backend: Vec<Vec<u64>> = Vec::new();
        let mut accounting_by_backend: Vec<BTreeMap<u64, Vec<String>>> = Vec::new();
        for backend in [Backend::Wal, Backend::Dir, Backend::Memory] {
            let bt = backend.as_str();
            let a = run_combo(
                &tmpdir(&format!("{tag}-{seed}-{bt}-a")),
                &spec,
                backend,
                submit,
            );
            let b = run_combo(
                &tmpdir(&format!("{tag}-{seed}-{bt}-b")),
                &spec,
                backend,
                submit,
            );
            assert_eq!(
                a.admitted, b.admitted,
                "admission schedule diverged ({spec}, {backend:?})"
            );
            for (&id, bytes_a) in &a.journals {
                let bytes_b = &b.journals[&id];
                assert_eq!(
                    bytes_a,
                    bytes_b,
                    "journal for job {id} not byte-identical across runs ({spec}, {backend:?}):\n--- a ---\n{}\n--- b ---\n{}",
                    String::from_utf8_lossy(bytes_a),
                    String::from_utf8_lossy(bytes_b)
                );
            }
            assert_eq!(
                a.accounting, b.accounting,
                "item accounting diverged across runs ({spec}, {backend:?})"
            );
            admitted_by_backend.push(a.admitted);
            accounting_by_backend.push(a.accounting);
        }
        for pair in admitted_by_backend.windows(2) {
            assert_eq!(
                pair[0], pair[1],
                "admission schedule diverged across backends ({spec})"
            );
        }
        // The record-level fault stream is backend-agnostic, so per-item
        // accounting — including what chaos dead-lettered — must be
        // seed-identical on the WAL, the per-file dir, and memory.
        for pair in accounting_by_backend.windows(2) {
            assert_eq!(
                pair[0], pair[1],
                "item accounting diverged across backends ({spec})"
            );
        }
    }
}

#[test]
fn sweep_workflow_panics() {
    sweep("panic", "panic=0.3", submission);
}

#[test]
fn sweep_state_dir_write_and_rename_faults() {
    sweep("wr", "write=0.25,rename=0.25", submission);
}

#[test]
fn sweep_torn_writes_and_read_faults() {
    sweep("torn", "torn=0.4,read=0.2", submission);
}

#[test]
fn sweep_everything_at_once() {
    sweep(
        "all",
        "panic=0.15,stall=0.4,stall_ms=5,write=0.15,torn=0.2,rename=0.15,read=0.1",
        submission,
    );
}

/// The resilient scheduler under targeted chaos: job seed 101 always
/// panics in phase 1 (`panic_seed`), and every job's first option is a
/// host that dies at once, so retries must migrate off it.  The full
/// sweep invariants apply — no deadlock, nothing lost (each job settles
/// exactly once), and the steered journals are byte-identical across
/// paired runs and backends: evidence-driven placement stays as
/// deterministic as oblivious cycling.
#[test]
fn sweep_resilient_steering_under_targeted_panics() {
    sweep(
        "steer",
        "panic_seed=101,stall=0.2,stall_ms=3",
        submission_resilient,
    );
}

/// Worker-count invariance for the resilient scheduler: the scorer's
/// evidence is engine-local and journal-fed, so however many workers run
/// the batch, each job's steered flight journal is byte-identical.
#[test]
fn resilient_journals_are_worker_count_invariant() {
    let mut baseline: Option<BTreeMap<u64, Vec<u8>>> = None;
    for workers in [1, 2, 4] {
        let base = tmpdir(&format!("steer-workers-{workers}"));
        let trace = base.join("trace");
        let svc = Service::start(ServiceConfig {
            workers,
            queue_capacity: 64,
            trace_dir: Some(trace.clone()),
            ..ServiceConfig::default()
        })
        .unwrap();
        let mut admitted = Vec::new();
        for i in 0..JOBS {
            admitted.push(svc.submit(submission_resilient(i)).unwrap().0);
        }
        assert!(svc.wait_all_terminal(Duration::from_secs(60)));
        drop(svc.drain());
        let mut journals = BTreeMap::new();
        for &id in &admitted {
            journals.insert(
                id,
                std::fs::read(recover::trace_path(&trace, JobId(id))).unwrap(),
            );
        }
        match &baseline {
            None => baseline = Some(journals),
            Some(j0) => {
                for (&id, bytes) in &journals {
                    assert_eq!(
                        bytes, &j0[&id],
                        "steered journal for job {id} depends on worker count ({workers} workers)"
                    );
                }
            }
        }
    }
}

/// Fan-outs under engine-level chaos only (panics + stalls, no storage
/// faults): every group commit lands, so the strong per-item invariants
/// are asserted outright in [`item_accounting`] — every job done, every
/// item exactly one terminal state, `.dlq` record == checkpoint.
#[test]
fn sweep_foreach_items_survive_panics_and_restart() {
    sweep(
        "fe-panic",
        "panic=0.3,stall=0.3,stall_ms=3",
        submission_foreach,
    );
}

/// Fan-outs under storage chaos (torn writes, failed writes/renames,
/// read faults) plus panics: the sweep's generic invariants hold and the
/// per-item accounting — including what chaos left dead-lettered — is
/// byte-identical across runs and backends per seed.
#[test]
fn sweep_foreach_fanout_under_storage_chaos() {
    sweep(
        "fe-all",
        "panic=0.15,write=0.15,torn=0.2,rename=0.15,read=0.1",
        submission_foreach,
    );
}

/// Worker-count invariance for fan-outs: however many workers race the
/// fan-out, the journals and the final per-item accounting are
/// byte-identical — scheduling is not allowed to leak into outcomes.
#[test]
fn foreach_accounting_is_worker_count_invariant() {
    // (result bytes, journal lines) per job, from the first worker count.
    type Baseline = (BTreeMap<u64, Vec<u8>>, BTreeMap<u64, Vec<String>>);
    let mut baseline: Option<Baseline> = None;
    for workers in [1, 2, 4] {
        let base = tmpdir(&format!("fe-workers-{workers}"));
        let state = base.join("state");
        let trace = base.join("trace");
        let svc = Service::start(ServiceConfig {
            workers,
            queue_capacity: 64,
            state_dir: Some(state.clone()),
            trace_dir: Some(trace.clone()),
            backend: Backend::Wal,
            ..ServiceConfig::default()
        })
        .unwrap();
        let mut admitted = Vec::new();
        for i in 0..JOBS {
            admitted.push(svc.submit(submission_foreach(i)).unwrap().0);
        }
        assert!(svc.wait_all_terminal(Duration::from_secs(60)));
        drop(svc.drain());
        let st = WalStorage::open(&state).unwrap();
        let mut journals = BTreeMap::new();
        let mut accounting = BTreeMap::new();
        for &id in &admitted {
            journals.insert(
                id,
                std::fs::read(recover::trace_path(&trace, JobId(id))).unwrap(),
            );
            let ctx = format!("(workers={workers})");
            accounting.insert(id, item_accounting(&st, JobId(id), true, &ctx));
        }
        match &baseline {
            None => baseline = Some((journals, accounting)),
            Some((j0, a0)) => {
                for (&id, bytes) in &journals {
                    assert_eq!(
                        bytes,
                        &j0[&id],
                        "journal for job {id} depends on worker count ({workers} workers):\n{}",
                        String::from_utf8_lossy(bytes)
                    );
                }
                assert_eq!(
                    &accounting, a0,
                    "item accounting depends on worker count ({workers} workers)"
                );
            }
        }
    }
}
