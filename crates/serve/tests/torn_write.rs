//! Torn-write robustness (ISSUE satellite): truncate every persisted
//! state artifact at **every byte boundary** and assert recovery never
//! panics, never loses track of an id, and either recovers or quarantines
//! the entry.  Two storage shapes are swept:
//!
//! * the per-file layout ([`DirStorage`]) — one truncated file per tear
//!   point, exactly the PR-4 suite;
//! * the write-ahead log ([`WalStorage`]) — the log truncated at every
//!   byte boundary and at every record boundary; replay must quarantine
//!   only the torn tail and keep every complete record.
//!
//! A torn write is a short write that *reported success* (lost page cache,
//! powered-off disk cache): the corruption only surfaces at the next read.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use grid_wfs::{checkpoint, Instance};
use gridwfs_serve::{
    recover, Backend, DirStorage, GridSpec, JobId, RealFs, Service, ServiceConfig, Submission,
    WalStorage,
};
use gridwfs_storage::{WAL_FILE, WAL_QUARANTINE};
use gridwfs_wpdl::parse;
use gridwfs_wpdl::validate::validate;

const WF: &str = "<Workflow name='w'>\
   <Activity name='a'><Implement>p</Implement></Activity>\
   <Program name='p' duration='5'><Option hostname='h1'/></Program>\
 </Workflow>";

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gridwfs-torn-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dir_st(dir: &Path) -> DirStorage {
    DirStorage::new(Arc::new(RealFs), dir).unwrap()
}

fn submission() -> Submission {
    Submission {
        name: "torn".into(),
        workflow_xml: WF.into(),
        grid: GridSpec::virtual_grid().with_host("h1", 1.0),
        seed: 7,
        deadline: None,
    }
}

/// Write `job-<id>` into `dir` and return the full meta bytes.
fn seed_job(dir: &Path, id: JobId) -> Vec<u8> {
    recover::write_submission(&dir_st(dir), id, &submission()).unwrap();
    std::fs::read(recover::meta_path(dir, id)).unwrap()
}

#[test]
fn meta_truncated_at_every_byte_boundary_recovers_or_quarantines() {
    let template = tmpdir("meta-template");
    let id = JobId(7);
    let full = seed_job(&template, id);
    assert!(full.len() > 10, "meta file suspiciously small");

    for len in 0..full.len() {
        let dir = tmpdir("meta");
        let st = dir_st(&dir);
        recover::write_submission(&st, id, &submission()).unwrap();
        std::fs::write(recover::meta_path(&dir, id), &full[..len]).unwrap();

        let scanned =
            recover::scan(&st).unwrap_or_else(|e| panic!("scan must not fail at len {len}: {e}"));
        assert_eq!(
            scanned.jobs.len() as u64 + scanned.quarantined,
            1,
            "len {len}: job neither recovered nor quarantined"
        );
        // Whatever happened to the meta, the id stays burned: a restarted
        // service must never hand job-7's files to a new submission.
        assert_eq!(recover::max_job_id(&st).unwrap(), 7, "len {len}");

        // A second scan is clean: quarantined entries were moved aside,
        // recovered ones are still recoverable — and still burn the id.
        let again = recover::scan(&st).unwrap();
        assert_eq!(again.quarantined, 0, "len {len}: quarantine not sticky");
        assert_eq!(recover::max_job_id(&st).unwrap(), 7, "len {len}");
    }
}

#[test]
fn checkpoint_truncated_at_every_byte_boundary_loads_gracefully() {
    let workflow = parse::from_str(WF).unwrap();
    let instance = Instance::new(validate(workflow).unwrap());
    let xml = checkpoint::to_xml(&instance);
    let bytes = xml.as_bytes();
    assert!(
        checkpoint::from_xml(&xml).is_ok(),
        "full checkpoint round-trips"
    );

    for len in 0..bytes.len() {
        let torn = String::from_utf8_lossy(&bytes[..len]);
        // Must return, never panic; a truncated checkpoint is an Err the
        // worker converts into a Failed job with the parse detail.
        let _ = checkpoint::from_xml(&torn);
    }
}

#[test]
fn torn_checkpoint_on_disk_fails_the_job_instead_of_the_service() {
    let workflow = parse::from_str(WF).unwrap();
    let instance = Instance::new(validate(workflow).unwrap());
    let xml = checkpoint::to_xml(&instance);

    // A handful of representative tear points (full sweep is covered by
    // the loader test above; here each point boots a whole service).
    for len in [0, 1, xml.len() / 2, xml.len() - 1] {
        let dir = tmpdir(&format!("ckpt-e2e-{len}"));
        let id = JobId(3);
        recover::write_submission(&dir_st(&dir), id, &submission()).unwrap();
        std::fs::write(recover::checkpoint_path(&dir, id), &xml.as_bytes()[..len]).unwrap();

        let svc = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            state_dir: Some(dir.clone()),
            backend: Backend::Dir,
            ..ServiceConfig::default()
        })
        .unwrap();
        assert!(
            svc.wait_all_terminal(std::time::Duration::from_secs(30)),
            "len {len}: recovered job never settled"
        );
        let records = svc.drain();
        let rec = records
            .iter()
            .find(|r| r.id == id)
            .expect("job re-admitted");
        assert!(
            rec.state.is_terminal(),
            "len {len}: expected terminal, got {:?}",
            rec.state
        );
    }
}

#[test]
fn elapsed_ledger_truncated_at_every_byte_boundary_reads_without_panic() {
    let dir = tmpdir("elapsed");
    let st = dir_st(&dir);
    let id = JobId(4);
    recover::write_elapsed(&st, id, 123.456).unwrap();
    let full = std::fs::read(recover::elapsed_path(&dir, id)).unwrap();
    assert!(!full.is_empty());

    for len in 0..full.len() {
        std::fs::write(recover::elapsed_path(&dir, id), &full[..len]).unwrap();
        let v = recover::read_elapsed(&st, id);
        assert!(
            v.is_finite() && v >= 0.0,
            "len {len}: read_elapsed returned {v}"
        );
    }
}

#[test]
fn staging_and_quarantine_leftovers_still_burn_their_ids() {
    let dir = tmpdir("leftovers");
    let st = dir_st(&dir);
    std::fs::write(dir.join("job-12.meta.quarantined"), b"corrupt").unwrap();
    std::fs::write(dir.join("job-9.meta.tmp"), b"half a meta").unwrap();
    // Neither is scannable work...
    let scanned = recover::scan(&st).unwrap();
    assert!(scanned.jobs.is_empty());
    assert_eq!(scanned.quarantined, 0);
    // ...but both keep their ids out of circulation.
    assert_eq!(recover::max_job_id(&st).unwrap(), 12);
}

// ---------------------------------------------------------------------
// WAL tears
// ---------------------------------------------------------------------

/// Seeds a fresh WAL with `n` submissions (one commit frame each) and
/// returns the raw log bytes after the owning handle is dropped.
fn seed_wal(dir: &Path, n: u64) -> Vec<u8> {
    {
        let st = WalStorage::open(dir).unwrap();
        for i in 1..=n {
            recover::write_submission(&st, JobId(i), &submission()).unwrap();
        }
    }
    std::fs::read(dir.join(WAL_FILE)).unwrap()
}

/// Offsets of every frame boundary in a WAL image, starting at 0 and
/// ending at `bytes.len()` — decoded from the length headers alone.
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut offs = vec![0usize];
    let mut off = 0usize;
    while off + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 8 + len;
        assert!(off <= bytes.len(), "frame overruns the seeded log");
        offs.push(off);
    }
    assert_eq!(*offs.last().unwrap(), bytes.len(), "trailing garbage");
    offs
}

/// Replayed job ids after planting `image` as the whole log.
fn replay_ids(dir: &Path, image: &[u8]) -> Vec<u64> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(dir.join(WAL_FILE), image).unwrap();
    let st = WalStorage::open(dir).unwrap();
    let mut ids: Vec<u64> = recover::scan(&st)
        .unwrap()
        .jobs
        .iter()
        .map(|(id, _)| id.0)
        .collect();
    ids.sort_unstable();
    ids
}

#[test]
fn wal_truncated_at_every_byte_boundary_quarantines_only_the_tail() {
    let seed = tmpdir("wal-seed");
    let full = seed_wal(&seed, 3);
    let bounds = frame_boundaries(&full);
    assert_eq!(bounds.len(), 4, "3 submissions → 3 commit frames");

    let dir = tmpdir("wal-byte");
    for len in 0..full.len() {
        // Every complete frame before the tear survives; the torn tail is
        // moved aside, byte for byte, never dropped silently.
        let valid = *bounds.iter().filter(|&&b| b <= len).max().unwrap();
        let want: Vec<u64> =
            (1..=bounds.iter().filter(|&&b| b > 0 && b <= len).count() as u64).collect();
        let got = replay_ids(&dir, &full[..len]);
        assert_eq!(got, want, "len {len}: wrong survivor set");

        let healed = std::fs::read(dir.join(WAL_FILE)).unwrap();
        assert_eq!(
            healed,
            &full[..valid],
            "len {len}: healed log not the valid prefix"
        );
        let quarantined = std::fs::read(dir.join(WAL_QUARANTINE)).unwrap_or_default();
        assert_eq!(
            quarantined,
            &full[valid..len],
            "len {len}: quarantine is not exactly the torn tail"
        );

        // Ids of replayed records are never recycled: the next id a
        // service would mint is strictly above every survivor.
        let st = WalStorage::open(&dir).unwrap();
        let max = recover::max_job_id(&st).unwrap();
        assert_eq!(max, want.last().copied().unwrap_or(0), "len {len}");
    }
}

#[test]
fn wal_truncated_after_every_record_replays_the_full_prefix() {
    let seed = tmpdir("wal-frames-seed");
    let full = seed_wal(&seed, 5);
    let bounds = frame_boundaries(&full);

    let dir = tmpdir("wal-frames");
    for (k, &b) in bounds.iter().enumerate() {
        let got = replay_ids(&dir, &full[..b]);
        let want: Vec<u64> = (1..=k as u64).collect();
        assert_eq!(got, want, "cut after frame {k}");
        assert!(
            !dir.join(WAL_QUARANTINE).exists(),
            "cut after frame {k}: clean cut must not quarantine"
        );
    }
}

#[test]
fn service_over_torn_wal_recovers_survivors_and_mints_fresh_ids() {
    let dir = tmpdir("wal-service");
    let full = seed_wal(&dir, 2);
    // Tear mid-record: a third submission's frame arrives half-written.
    let mut torn = full.clone();
    torn.extend_from_slice(&[0x17, 0x00, 0x00, 0x00, 0xde, 0xad]);
    std::fs::write(dir.join(WAL_FILE), &torn).unwrap();

    let svc = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        state_dir: Some(dir.clone()),
        backend: Backend::Wal,
        ..ServiceConfig::default()
    })
    .unwrap();
    use std::sync::atomic::Ordering;
    assert_eq!(
        svc.metrics().counters.recovered.load(Ordering::Relaxed),
        2,
        "both complete records re-admitted"
    );
    let fresh = svc.submit(submission()).unwrap();
    assert!(fresh.0 > 2, "fresh id {fresh:?} collides with a survivor");
    assert!(svc.wait_all_terminal(std::time::Duration::from_secs(30)));
    for rec in svc.drain() {
        assert!(rec.state.is_terminal(), "{:?}", rec);
    }
}
