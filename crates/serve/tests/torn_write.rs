//! Torn-write robustness (ISSUE satellite): truncate every state-dir file
//! kind at **every byte boundary** and assert recovery never panics, never
//! loses track of an id, and either recovers or quarantines the entry.
//!
//! A torn write is a short write that *reported success* (lost page cache,
//! powered-off disk cache): the corruption only surfaces at the next read.
//! `write_atomic` makes these windows small but recovery must still treat
//! every file on disk as potentially half-written.

use std::path::{Path, PathBuf};

use grid_wfs::{checkpoint, Instance};
use gridwfs_serve::{recover, GridSpec, JobId, RealFs, Service, ServiceConfig, Submission};
use gridwfs_wpdl::parse;
use gridwfs_wpdl::validate::validate;

const FS: RealFs = RealFs;

const WF: &str = "<Workflow name='w'>\
   <Activity name='a'><Implement>p</Implement></Activity>\
   <Program name='p' duration='5'><Option hostname='h1'/></Program>\
 </Workflow>";

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gridwfs-torn-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn submission() -> Submission {
    Submission {
        name: "torn".into(),
        workflow_xml: WF.into(),
        grid: GridSpec::virtual_grid().with_host("h1", 1.0),
        seed: 7,
        deadline: None,
    }
}

/// Write `job-<id>` into `dir` and return the full meta bytes.
fn seed_job(dir: &Path, id: JobId) -> Vec<u8> {
    recover::write_submission(&FS, dir, id, &submission()).unwrap();
    std::fs::read(recover::meta_path(dir, id)).unwrap()
}

#[test]
fn meta_truncated_at_every_byte_boundary_recovers_or_quarantines() {
    let template = tmpdir("meta-template");
    let id = JobId(7);
    let full = seed_job(&template, id);
    assert!(full.len() > 10, "meta file suspiciously small");

    for len in 0..full.len() {
        let dir = tmpdir("meta");
        recover::write_submission(&FS, &dir, id, &submission()).unwrap();
        std::fs::write(recover::meta_path(&dir, id), &full[..len]).unwrap();

        let scanned = recover::scan(&FS, &dir)
            .unwrap_or_else(|e| panic!("scan must not fail at len {len}: {e}"));
        assert_eq!(
            scanned.jobs.len() as u64 + scanned.quarantined,
            1,
            "len {len}: job neither recovered nor quarantined"
        );
        // Whatever happened to the meta, the id stays burned: a restarted
        // service must never hand job-7's files to a new submission.
        assert_eq!(recover::max_job_id(&FS, &dir).unwrap(), 7, "len {len}");

        // A second scan is clean: quarantined entries were moved aside,
        // recovered ones are still recoverable — and still burn the id.
        let again = recover::scan(&FS, &dir).unwrap();
        assert_eq!(again.quarantined, 0, "len {len}: quarantine not sticky");
        assert_eq!(recover::max_job_id(&FS, &dir).unwrap(), 7, "len {len}");
    }
}

#[test]
fn checkpoint_truncated_at_every_byte_boundary_loads_gracefully() {
    let workflow = parse::from_str(WF).unwrap();
    let instance = Instance::new(validate(workflow).unwrap());
    let xml = checkpoint::to_xml(&instance);
    let bytes = xml.as_bytes();
    assert!(
        checkpoint::from_xml(&xml).is_ok(),
        "full checkpoint round-trips"
    );

    let dir = tmpdir("ckpt");
    let path = dir.join("job-1.ckpt");
    for len in 0..bytes.len() {
        std::fs::write(&path, &bytes[..len]).unwrap();
        // Must return, never panic; a truncated checkpoint is an Err the
        // worker converts into a Failed job with the parse detail.
        let _ = checkpoint::load(&path);
    }
}

#[test]
fn torn_checkpoint_on_disk_fails_the_job_instead_of_the_service() {
    let workflow = parse::from_str(WF).unwrap();
    let instance = Instance::new(validate(workflow).unwrap());
    let xml = checkpoint::to_xml(&instance);

    // A handful of representative tear points (full sweep is covered by
    // the loader test above; here each point boots a whole service).
    for len in [0, 1, xml.len() / 2, xml.len() - 1] {
        let dir = tmpdir(&format!("ckpt-e2e-{len}"));
        let id = JobId(3);
        recover::write_submission(&FS, &dir, id, &submission()).unwrap();
        std::fs::write(recover::checkpoint_path(&dir, id), &xml.as_bytes()[..len]).unwrap();

        let svc = Service::start(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            state_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        })
        .unwrap();
        assert!(
            svc.wait_all_terminal(std::time::Duration::from_secs(30)),
            "len {len}: recovered job never settled"
        );
        let records = svc.drain();
        let rec = records
            .iter()
            .find(|r| r.id == id)
            .expect("job re-admitted");
        assert!(
            rec.state.is_terminal(),
            "len {len}: expected terminal, got {:?}",
            rec.state
        );
    }
}

#[test]
fn elapsed_ledger_truncated_at_every_byte_boundary_reads_without_panic() {
    let dir = tmpdir("elapsed");
    let id = JobId(4);
    recover::write_elapsed(&FS, &dir, id, 123.456).unwrap();
    let full = std::fs::read(recover::elapsed_path(&dir, id)).unwrap();
    assert!(!full.is_empty());

    for len in 0..full.len() {
        std::fs::write(recover::elapsed_path(&dir, id), &full[..len]).unwrap();
        let v = recover::read_elapsed(&FS, &dir, id);
        assert!(
            v.is_finite() && v >= 0.0,
            "len {len}: read_elapsed returned {v}"
        );
    }
}

#[test]
fn staging_and_quarantine_leftovers_still_burn_their_ids() {
    let dir = tmpdir("leftovers");
    std::fs::write(dir.join("job-12.meta.quarantined"), b"corrupt").unwrap();
    std::fs::write(dir.join("job-9.meta.tmp"), b"half a meta").unwrap();
    // Neither is scannable work...
    let scanned = recover::scan(&FS, &dir).unwrap();
    assert!(scanned.jobs.is_empty());
    assert_eq!(scanned.quarantined, 0);
    // ...but both keep their ids out of circulation.
    assert_eq!(recover::max_job_id(&FS, &dir).unwrap(), 12);
}
