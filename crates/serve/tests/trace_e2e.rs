//! Flight-recorder end-to-end: per-job journals are byte-identical no
//! matter how many workers race over the queue, and a recovered job's
//! later incarnations append to the same journal under a fresh
//! incarnation tag instead of overwriting history.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use gridwfs_serve::{
    recover, Backend, GridSpec, JobId, JobState, Service, ServiceConfig, Submission,
};
use gridwfs_wpdl::builder::WorkflowBuilder;

fn tmpdir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gridwfs-trace-e2e-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A two-stage workflow whose first stage retries on an unreliable host —
/// enough structure for the journal to carry real recovery events.
fn retry_chain_xml(name: &str) -> String {
    let mut b = WorkflowBuilder::new(name).program("p", 10.0, &["shaky"]);
    b.activity("first", "p").retry(3, 2.0);
    b.activity("second", "p");
    b.edge("first", "second")
        .to_xml()
        .expect("test workflow serialises")
}

fn unreliable_grid() -> GridSpec {
    GridSpec::virtual_grid().with_unreliable_host("shaky", 1.0, 15.0, 1.0)
}

fn run_batch(trace_dir: &Path, workers: usize) -> Vec<String> {
    let service = Service::start(ServiceConfig {
        workers,
        queue_capacity: 16,
        trace_dir: Some(trace_dir.to_path_buf()),
        ..ServiceConfig::default()
    })
    .unwrap();
    let mut ids = Vec::new();
    for i in 0..4u64 {
        ids.push(
            service
                .submit(Submission {
                    name: format!("wf-{i}"),
                    workflow_xml: retry_chain_xml(&format!("wf-{i}")),
                    grid: unreliable_grid(),
                    seed: 100 + i,
                    deadline: None,
                })
                .unwrap(),
        );
    }
    assert!(service.wait_all_terminal(Duration::from_secs(30)));
    service.drain();
    ids.iter()
        .map(|id| std::fs::read_to_string(recover::trace_path(trace_dir, *id)).unwrap())
        .collect()
}

#[test]
fn journals_are_byte_identical_across_worker_counts() {
    let d1 = tmpdir("w1");
    let d4 = tmpdir("w4");
    let solo = run_batch(&d1, 1);
    let pool = run_batch(&d4, 4);
    assert_eq!(solo.len(), pool.len());
    for (i, (a, b)) in solo.iter().zip(&pool).enumerate() {
        assert_eq!(
            a,
            b,
            "job {} journal differs between 1 and 4 workers",
            i + 1
        );
        assert!(a.contains("\"kind\":\"job_admit\""), "{a}");
        assert!(a.contains("\"kind\":\"job_start\""), "{a}");
        assert!(a.contains("\"kind\":\"task_submit\""), "{a}");
        assert!(a.contains("\"kind\":\"job_settle\""), "{a}");
    }
    // The unreliable host makes at least one of the four seeds retry, so
    // the batch as a whole proves engine events reach the journals.
    assert!(
        solo.iter()
            .any(|j| j.contains("\"kind\":\"retry_scheduled\"")),
        "no seed retried — weaken the host or change seeds"
    );
    std::fs::remove_dir_all(&d1).ok();
    std::fs::remove_dir_all(&d4).ok();
}

#[test]
fn recovered_incarnation_appends_to_the_journal() {
    let state = tmpdir("state");
    let traces = tmpdir("traces");
    // Pinned to the per-file backend: the test polls the checkpoint file
    // on disk to time its kill.
    let config = || ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        state_dir: Some(state.clone()),
        trace_dir: Some(traces.clone()),
        backend: Backend::Dir,
        ..ServiceConfig::default()
    };
    let service = Service::start(config()).unwrap();
    // Paced 0.25: three ~250ms stages, so the kill lands mid-workflow.
    let mut b = WorkflowBuilder::new("slow").program("p", 1.0, &["local"]);
    b.activity("a", "p");
    b.activity("b", "p");
    b.activity("c", "p");
    let xml = b.edge("a", "b").edge("b", "c").to_xml().unwrap();
    let id = service
        .submit(Submission {
            name: "slow".into(),
            workflow_xml: xml,
            grid: GridSpec::paced_grid(0.25).with_host("local", 1.0),
            seed: 7,
            deadline: None,
        })
        .unwrap();
    assert_eq!(id, JobId(1));
    // Wait until the first stage settles, then pull the plug.
    let ckpt = recover::checkpoint_path(&state, id);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        assert!(Instant::now() < deadline, "first settlement never landed");
        if std::fs::read_to_string(&ckpt)
            .map(|t| t.contains("status='done'"))
            .unwrap_or(false)
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    service.shutdown_now();
    let journal = std::fs::read_to_string(recover::trace_path(&traces, id)).unwrap();
    assert!(journal.contains("\"incarnation\":0"), "{journal}");
    assert!(
        journal.contains("\"kind\":\"job_abort\"")
            && journal.contains("\"reason\":\"service-shutdown\""),
        "{journal}"
    );
    assert!(!journal.contains("\"kind\":\"job_settle\""), "{journal}");

    // Second incarnation: recovery re-admits, the journal grows.
    let service = Service::start(config()).unwrap();
    assert!(service.wait_all_terminal(Duration::from_secs(30)));
    assert!(service
        .trace_events()
        .iter()
        .any(|e| matches!(e.kind, gridwfs_serve::TraceKind::JobRecovered { job: 1 })));
    let records = service.drain();
    assert_eq!(records[0].state, JobState::Done);
    let journal = std::fs::read_to_string(recover::trace_path(&traces, id)).unwrap();
    let first_start = journal.find("\"incarnation\":0").unwrap();
    let second_start = journal.find("\"incarnation\":1").unwrap();
    assert!(
        first_start < second_start,
        "incarnations appear in order: {journal}"
    );
    assert!(
        journal.contains("\"kind\":\"job_settle\"") && journal.contains("\"state\":\"done\""),
        "{journal}"
    );
    std::fs::remove_dir_all(&state).ok();
    std::fs::remove_dir_all(&traces).ok();
}
