//! End-to-end service tests: admission control, backpressure, deadlines,
//! cancellation, and per-job fault isolation.

use std::path::PathBuf;
use std::time::Duration;

use gridwfs_serve::{GridSpec, JobState, Service, ServiceConfig, Submission, SubmitError};
use gridwfs_wpdl::builder::WorkflowBuilder;

fn chain_xml(name: &str, n: usize, duration: f64, host: &str) -> String {
    let mut b = WorkflowBuilder::new(name).program("p", duration, &[host]);
    for i in 0..n {
        b.activity(format!("t{i}"), "p");
    }
    for i in 1..n {
        b = b.edge(&format!("t{}", i - 1), &format!("t{i}"));
    }
    b.to_xml().expect("test workflow serialises")
}

fn submission(name: &str, grid: GridSpec, seed: u64, xml: String) -> Submission {
    Submission {
        name: name.into(),
        workflow_xml: xml,
        grid,
        seed,
        deadline: None,
    }
}

fn tmpdir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gridwfs-serve-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn batch_completes_and_backpressure_is_loud() {
    // One slow worker, a 2-deep queue, six paced jobs: some submissions
    // must bounce with QueueFull, and with retries everything still lands.
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        ..ServiceConfig::default()
    })
    .unwrap();
    let grid = GridSpec::paced_grid(0.08).with_host("local", 1.0);
    let mut retries = 0u64;
    let mut ids = Vec::new();
    for i in 0..6 {
        let sub = submission(
            &format!("wf{i}"),
            grid.clone(),
            i,
            chain_xml("wf", 1, 1.0, "local"),
        );
        loop {
            match service.submit(sub.clone()) {
                Ok(id) => {
                    ids.push(id);
                    break;
                }
                Err(SubmitError::QueueFull) => {
                    retries += 1;
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
    }
    assert!(retries > 0, "queue of 2 never filled across 6 fast submits");
    assert!(service.wait_all_terminal(Duration::from_secs(30)));
    for id in ids {
        let rec = service.status(id).unwrap();
        assert_eq!(rec.state, JobState::Done, "{id}: {:?}", rec.detail);
    }
    let c = &service.metrics().counters;
    use std::sync::atomic::Ordering;
    assert_eq!(c.submitted.load(Ordering::Relaxed), 6);
    assert_eq!(c.completed.load(Ordering::Relaxed), 6);
    assert_eq!(c.rejected.load(Ordering::Relaxed), retries);
    assert_eq!(service.queue_depth(), 0);
    let snapshot = service.metrics_json();
    assert!(snapshot.contains("\"completed\": 6"), "{snapshot}");
    let records = service.drain();
    assert_eq!(records.len(), 6);
}

#[test]
fn deadline_expiry_fails_the_job() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        ..ServiceConfig::default()
    })
    .unwrap();
    let grid = GridSpec::virtual_grid().with_host("h1", 1.0);
    // Three 50-unit tasks against a 60-unit budget: the engine must give
    // up mid-chain on the executor clock.
    let mut sub = submission("late", grid.clone(), 3, chain_xml("late", 3, 50.0, "h1"));
    sub.deadline = Some(60.0);
    let late = service.submit(sub).unwrap();
    let ok = service
        .submit(submission("ok", grid, 4, chain_xml("ok", 3, 50.0, "h1")))
        .unwrap();
    assert!(service.wait_all_terminal(Duration::from_secs(30)));
    let rec = service.status(late).unwrap();
    assert_eq!(rec.state, JobState::Failed);
    assert_eq!(rec.detail.as_deref(), Some("deadline exceeded"));
    assert_eq!(service.status(ok).unwrap().state, JobState::Done);
    use std::sync::atomic::Ordering;
    let c = &service.metrics().counters;
    assert_eq!(c.deadline_exceeded.load(Ordering::Relaxed), 1);
    assert_eq!(c.failed.load(Ordering::Relaxed), 1);
    assert_eq!(c.completed.load(Ordering::Relaxed), 1);
}

#[test]
fn cancel_queued_and_running_jobs() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        ..ServiceConfig::default()
    })
    .unwrap();
    let grid = GridSpec::paced_grid(0.5).with_host("local", 1.0);
    // ~1.5s of paced work keeps the single worker busy...
    let running = service
        .submit(submission(
            "running",
            grid.clone(),
            1,
            chain_xml("running", 3, 1.0, "local"),
        ))
        .unwrap();
    // ... so this one is still queued when we cancel it.
    let queued = service
        .submit(submission(
            "queued",
            grid,
            2,
            chain_xml("queued", 1, 1.0, "local"),
        ))
        .unwrap();
    assert!(service.cancel(queued), "queued job accepts cancellation");
    assert_eq!(service.status(queued).unwrap().state, JobState::Cancelled);

    // Wait until the long job is actually running, then cancel it too.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while service.status(running).unwrap().state == JobState::Queued {
        assert!(std::time::Instant::now() < deadline, "never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(service.cancel(running), "running job accepts cancellation");
    assert!(service.wait_all_terminal(Duration::from_secs(30)));
    let rec = service.status(running).unwrap();
    assert_eq!(rec.state, JobState::Cancelled, "{:?}", rec.detail);
    assert!(
        !service.cancel(running),
        "terminal jobs refuse cancellation"
    );
    use std::sync::atomic::Ordering;
    assert_eq!(
        service.metrics().counters.cancelled.load(Ordering::Relaxed),
        2
    );
}

#[test]
fn per_job_isolation_of_failures() {
    let service = Service::start(ServiceConfig {
        workers: 2,
        queue_capacity: 8,
        ..ServiceConfig::default()
    })
    .unwrap();
    let grid = GridSpec::virtual_grid().with_host("h1", 1.0);
    // An unparsable document, a workflow bound to a host the Grid lacks,
    // and a healthy job, side by side.
    let garbage = service
        .submit(submission(
            "garbage",
            grid.clone(),
            1,
            "<Workflow name='broken'".into(),
        ))
        .unwrap();
    let unplaceable = service
        .submit(submission(
            "unplaceable",
            grid.clone(),
            2,
            chain_xml("unplaceable", 1, 5.0, "ghost-host"),
        ))
        .unwrap();
    let healthy = service
        .submit(submission(
            "healthy",
            grid,
            3,
            chain_xml("healthy", 2, 5.0, "h1"),
        ))
        .unwrap();
    assert!(service.wait_all_terminal(Duration::from_secs(30)));
    assert_eq!(service.status(garbage).unwrap().state, JobState::Failed);
    assert_eq!(service.status(unplaceable).unwrap().state, JobState::Failed);
    let rec = service.status(healthy).unwrap();
    assert_eq!(rec.state, JobState::Done, "{:?}", rec.detail);
    assert_eq!(rec.makespan, Some(10.0), "virtual chain of two 5s");
}

#[test]
fn rejects_after_drain_and_reports_unknown_jobs() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        ..ServiceConfig::default()
    })
    .unwrap();
    assert!(service.status(gridwfs_serve::JobId(99)).is_none());
    assert!(!service.cancel(gridwfs_serve::JobId(99)));
    let grid = GridSpec::virtual_grid().with_host("h1", 1.0);
    let sub = submission("x", grid, 1, chain_xml("x", 1, 1.0, "h1"));
    let records = service.drain();
    assert!(records.is_empty());
    // With a state directory, a completed job leaves a result marker and
    // submissions are journalled.
    let dir = tmpdir("drained");
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        state_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    })
    .unwrap();
    let id = service.submit(sub.clone()).unwrap();
    assert!(service.wait_all_terminal(Duration::from_secs(30)));
    assert_eq!(service.status(id).unwrap().state, JobState::Done);
    let records = service.drain();
    assert_eq!(records.len(), 1);
    // The drained handle is gone; submitting to a *new* service over the
    // same directory re-admits nothing (the job is terminal on disk).
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        state_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    })
    .unwrap();
    assert!(
        service.jobs().is_empty(),
        "terminal jobs are not re-admitted"
    );
    drop(service);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_snapshot_surfaces_storage_counters() {
    // ISSUE satellite: the WAL's counters show up in the service metrics
    // snapshot, and a restart over the same log reports replayed records.
    let dir = tmpdir("storage-counters");
    let config = || ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        state_dir: Some(dir.clone()),
        backend: gridwfs_serve::Backend::Wal,
        ..ServiceConfig::default()
    };
    let service = Service::start(config()).unwrap();
    let grid = GridSpec::virtual_grid().with_host("h1", 1.0);
    for i in 0..3 {
        service
            .submit(submission(
                &format!("wal{i}"),
                grid.clone(),
                i,
                chain_xml("wal", 2, 1.0, "h1"),
            ))
            .unwrap();
    }
    assert!(service.wait_all_terminal(Duration::from_secs(30)));
    let snapshot = service.metrics_json();
    assert!(snapshot.contains("\"schema\": 2"), "{snapshot}");
    assert!(snapshot.contains("\"backend\": \"wal\""), "{snapshot}");
    let field = |name: &str| -> u64 {
        let tail = &snapshot[snapshot
            .find(&format!("\"{name}\": "))
            .unwrap_or_else(|| panic!("{name} missing: {snapshot}"))
            + name.len()
            + 4..];
        tail.split(|c: char| !c.is_ascii_digit())
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(field("wal_appends") > 0, "{snapshot}");
    assert!(field("group_commits") > 0, "{snapshot}");
    assert!(field("bytes_logged") > 0, "{snapshot}");
    assert_eq!(field("recovery_replayed_records"), 0, "{snapshot}");
    drop(service.drain());

    // Restart: the same log replays the journalled records.
    let service = Service::start(config()).unwrap();
    let snapshot = service.metrics_json();
    assert!(snapshot.contains("\"backend\": \"wal\""), "{snapshot}");
    let tail = &snapshot[snapshot.find("\"recovery_replayed_records\": ").unwrap() + 29..];
    let replayed: u64 = tail
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(replayed > 0, "restart saw no replayed records: {snapshot}");
    drop(service);
    std::fs::remove_dir_all(&dir).ok();
}
