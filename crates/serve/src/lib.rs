//! # gridwfs-serve — the multi-tenant workflow service
//!
//! The paper's engine executes one workflow instance; a Grid workflow
//! *platform* is a long-running service executing many, for many clients,
//! with admission control and per-workflow fault isolation.  This crate is
//! that layer:
//!
//! * [`queue`] — the bounded admission queue with explicit backpressure;
//! * [`job`] — submission / job-record / lifecycle types;
//! * [`gridspec`] — a data description of the Grid a job runs on
//!   (virtual-time simulation or real paced threads), manifest
//!   round-trippable for crash recovery;
//! * [`service`] — the service itself: worker pool, submission API,
//!   status queries, cancellation, deadlines, graceful and hard shutdown,
//!   backed by a sharded job table (per-shard locks, `id % SHARDS`);
//! * `sched` — the cooperative work-stealing scheduler: each worker
//!   steps many paused engines (`Engine::step`) from a local run queue
//!   plus a timer heap, steals from siblings when idle, and
//!   group-commits state-dir writes once per tick;
//! * `worker` — per-job lifecycle: engine construction, journals,
//!   settlement;
//! * [`recover`] — persistence policy over the pluggable storage
//!   backends ([`gridwfs_storage`]): a restarted service re-admits
//!   unfinished jobs and resumes their engines from checkpoint;
//! * `federate` — federated serve: M replicas over one backend, each
//!   job owned through an expiring lease record; replicas renew on a
//!   heartbeat, fence every state batch on their lease epoch, and take
//!   over expired peers through the crash-recovery path;
//! * [`metrics`] — counters / gauges / latency histogram, JSON snapshots.
//!
//! ## Quickstart
//!
//! ```
//! use gridwfs_serve::{GridSpec, Service, ServiceConfig, Submission};
//! use std::time::Duration;
//!
//! let service = Service::start(ServiceConfig {
//!     workers: 2,
//!     queue_capacity: 16,
//!     ..ServiceConfig::default()
//! })
//! .unwrap();
//!
//! let grid = GridSpec::virtual_grid().with_host("h1", 1.0);
//! let id = service
//!     .submit(Submission {
//!         name: "demo".into(),
//!         workflow_xml: "<Workflow name='w'>\
//!            <Activity name='a'><Implement>p</Implement></Activity>\
//!            <Program name='p' duration='5'><Option hostname='h1'/></Program>\
//!          </Workflow>"
//!             .into(),
//!         grid,
//!         seed: 1,
//!         deadline: None,
//!     })
//!     .unwrap();
//!
//! assert!(service.wait_all_terminal(Duration::from_secs(10)));
//! let record = service.status(id).unwrap();
//! assert_eq!(record.state, gridwfs_serve::JobState::Done);
//! ```

mod federate;
pub mod gridspec;
pub mod job;
pub mod json;
pub mod metrics;
pub mod queue;
pub mod recover;
mod sched;
pub mod service;
mod table;
mod worker;

pub use gridspec::{
    DetectorSpec, ExecMode, GridSpec, HostSpec, LinkSpec, ProfileSpec, SchedulerSpec,
};
pub use gridwfs_chaos::{relock, splitmix64, ChaosFs, FaultPlan, RealFs, StateFs};
pub use gridwfs_storage::{
    Backend, ChaosStorage, CountersSnapshot, DirStorage, MemStorage, Op, Storage, WalStorage,
};
pub use gridwfs_trace::{TraceEvent, TraceKind, TraceSink};
pub use job::{JobId, JobRecord, JobState, Submission};
pub use metrics::{LatencySummary, Metrics, TraceMetricsSink};
pub use queue::{BoundedQueue, Pop, PushError};
pub use service::{Service, ServiceConfig, SubmitError};

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::Once;

    /// Installs a panic hook that stays quiet for the panics this crate's
    /// tests inject on purpose (payloads mentioning "chaos:" or "expected
    /// panic") and delegates everything else to the default hook.
    pub(crate) fn quiet_expected_panics() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let msg = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_default();
                if msg.contains("chaos:") || msg.contains("expected panic") {
                    return;
                }
                default(info);
            }));
        });
    }
}

#[cfg(test)]
mod send_bounds {
    /// The whole point of the service is running engines on worker
    /// threads; these bounds are load-bearing for the entire crate.
    #[test]
    fn engines_and_service_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<grid_wfs::Engine<grid_wfs::SimGrid>>();
        assert_send::<grid_wfs::Engine<grid_wfs::ThreadExecutor>>();
        assert_send::<crate::Service>();
    }
}
