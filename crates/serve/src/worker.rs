//! Per-job lifecycle: engine construction, the flight-recorder journal,
//! and settlement.
//!
//! This module used to *be* the worker — one blocking `Engine::run()` per
//! popped job.  The run loop now lives in [`crate::sched`], which steps
//! many paused engines per OS thread; what remains here is everything a
//! scheduler slice needs around the engine itself:
//!
//! * [`build_engine`] — parse/validate (or checkpoint-load) the workflow
//!   and wire up a steppable [`AnyEngine`] with its stop flag, deadline
//!   budget, and trace fanout;
//! * [`open_journal`] — the per-job journal with its incarnation header;
//! * [`settle`] — apply a finished run's outcome to the job record, the
//!   metrics registry, and the storage backend (terminal markers ride the
//!   scheduler's group-commit batch);
//! * [`note_panic`] / [`panic_message`] — a workflow closure that panics
//!   must not take its scheduler thread down; the catch sites in
//!   [`crate::sched`] route the payload here so the panicking job settles
//!   as `Failed`, a `job_panicked` event lands in its journal and the
//!   service ring, and the `jobs_panicked` counter bumps.

use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};

use grid_wfs::engine::{CheckpointSink, Engine, EngineConfig, LogKind, Report, StepOutcome};
use grid_wfs::{checkpoint, InjectedTaskFault, Instance, SimGrid, ThreadExecutor};
use gridwfs_chaos::relock;
use gridwfs_trace::{FanoutSink, JsonlSink, TraceEvent, TraceKind, TraceSink};
use gridwfs_wpdl::parse;
use gridwfs_wpdl::validate::validate;

use crate::gridspec::ExecMode;
use crate::job::{JobId, JobState, Submission};
use crate::metrics::{Metrics, TraceMetricsSink};
use crate::recover;
use crate::sched::StateBatch;
use crate::service::Shared;

/// Mailbox between an engine's [`CheckpointSink`] and the scheduler: the
/// sink overwrites it with the newest serialized checkpoint, the worker
/// drains it into its [`StateBatch`] after every slice.
pub(crate) type CheckpointCell = Arc<Mutex<Option<Vec<u8>>>>;

/// A steppable engine on whichever executor the submission's Grid spec
/// asked for.  Boxed: a `Run` moves between deques and the sleeper heap,
/// and the engines are large.
pub(crate) enum AnyEngine {
    /// Deterministic virtual time; never reports `Idle`.
    Virtual(Box<Engine<SimGrid>>),
    /// Real threads on the wall clock; `Idle` between notifications.
    Paced(Box<Engine<ThreadExecutor>>),
}

impl AnyEngine {
    pub(crate) fn step(&mut self) -> StepOutcome {
        match self {
            AnyEngine::Virtual(e) => e.step(),
            AnyEngine::Paced(e) => e.step(),
        }
    }

    /// Current executor-clock time (for converting `Idle` wake times to
    /// wall instants).
    pub(crate) fn now(&self) -> f64 {
        match self {
            AnyEngine::Virtual(e) => e.now(),
            AnyEngine::Paced(e) => e.now(),
        }
    }
}

/// Renders a panic payload as the detail string the job settles with.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// Records a workflow panic in the job's journal, the service ring, and
/// the `jobs_panicked` counter.
pub(crate) fn note_panic(shared: &Shared, id: JobId, journal: Option<&Arc<JsonlSink>>, msg: &str) {
    Metrics::incr(&shared.metrics.counters.jobs_panicked);
    if let Some(journal) = journal {
        journal.record(&TraceEvent {
            at: 0.0,
            kind: TraceKind::JobPanicked {
                job: id.0,
                detail: msg.to_string(),
            },
        });
        journal.flush();
    }
    shared.trace(TraceKind::JobPanicked {
        job: id.0,
        detail: msg.to_string(),
    });
}

/// Opens the job's flight-recorder journal (append: a recovered job's
/// later incarnations extend the same file) and stamps the incarnation
/// header.  Journal timestamps are the engine's executor clock, which
/// restarts at 0 per incarnation — the `job_start` header is what keeps
/// the segments apart.
pub(crate) fn open_journal(shared: &Shared, id: JobId, sub: &Submission) -> Option<Arc<JsonlSink>> {
    let dir = shared.cfg.trace_dir.as_ref()?;
    let path = recover::trace_path(dir, id);
    let incarnation = recover::count_incarnations(&path);
    match JsonlSink::append(&path) {
        Ok(sink) => {
            sink.record(&TraceEvent {
                at: 0.0,
                kind: TraceKind::JobStarted {
                    job: id.0,
                    incarnation,
                    seed: sub.seed,
                },
            });
            Some(Arc::new(sink))
        }
        Err(e) => {
            eprintln!("gridwfs-serve: {id}: cannot open trace journal: {e}");
            None
        }
    }
}

/// Builds the instance (fresh, or from the persisted engine checkpoint)
/// and wires it to the submission's Grid as a steppable engine, plus the
/// checkpoint mailbox its [`CheckpointSink`] feeds (named after the
/// record the scheduler commits it to).  Runs inside the scheduler's
/// `catch_unwind` region: the chaos hooks here inject exactly the panic a
/// buggy workflow closure would raise.  Both chaos decisions are keyed by
/// the submission seed, so they replay identically whatever worker picks
/// the job up.
pub(crate) fn build_engine(
    shared: &Shared,
    id: JobId,
    sub: &Submission,
    stop: Arc<AtomicBool>,
    journal: Option<Arc<JsonlSink>>,
) -> Result<(AnyEngine, Option<(String, CheckpointCell)>), String> {
    if let Some(plan) = &shared.chaos {
        if let Some(pause) = plan.worker_stall(sub.seed) {
            std::thread::sleep(pause);
        }
        if plan.job_panics(sub.seed) {
            panic!("chaos: injected workflow panic (job seed {})", sub.seed);
        }
    }
    let ckpt_name = recover::checkpoint_name(id);
    let instance = match shared.storage.as_deref() {
        Some(st) if st.exists(&ckpt_name) => {
            let xml = st.read_to_string(&ckpt_name).map_err(|e| e.to_string())?;
            checkpoint::from_xml(&xml).map_err(|e| e.to_string())?
        }
        _ => {
            let workflow = parse::from_str(&sub.workflow_xml).map_err(|e| e.to_string())?;
            let validated = validate(workflow).map_err(|issues| {
                issues
                    .iter()
                    .map(|i| i.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            })?;
            Instance::new(validated)
        }
    };
    // The engine's deadline is relative to each run start, so hand a
    // resumed job its *remaining* budget: total minus the executor time
    // already consumed in earlier incarnations (the `.elapsed` ledger).
    // An exhausted budget still runs with deadline 0 — the engine aborts
    // on its first step and the job settles as a deadline failure.
    let deadline = sub.deadline.or(shared.cfg.default_deadline).map(|total| {
        let consumed = shared
            .storage
            .as_deref()
            .map(|st| recover::read_elapsed(st, id))
            .unwrap_or(0.0);
        (total - consumed).max(0.0)
    });
    // With a storage backend, checkpoints are staged into a mailbox the
    // scheduler group-commits (one durability point per tick) instead of
    // paying a file write + fsync inside the engine step.
    let checkpoint = shared.storage.as_ref().map(|_| {
        let cell: CheckpointCell = Arc::new(Mutex::new(None));
        (ckpt_name, cell)
    });
    let checkpoint_sink = checkpoint.as_ref().map(|(_, cell)| {
        let cell = cell.clone();
        CheckpointSink::new(move |xml: String| {
            *relock(&cell) = Some(xml.into_bytes());
            Ok(())
        })
    });
    let config = EngineConfig {
        checkpoint_sink,
        stop: Some(stop),
        deadline,
        detector: sub.grid.detector_policy(),
        scheduler: sub.grid.scheduler_policy(),
        ..EngineConfig::default()
    };
    // The engine's trace stream always feeds the metrics registry; with a
    // trace directory it also feeds the job's journal.
    let metrics_sink: Arc<dyn TraceSink> = Arc::new(TraceMetricsSink::new(shared.metrics.clone()));
    let sink: Arc<dyn TraceSink> = match journal {
        Some(journal) => Arc::new(FanoutSink::new(vec![journal, metrics_sink])),
        None => metrics_sink,
    };
    match sub.grid.mode {
        ExecMode::Virtual => Ok((
            AnyEngine::Virtual(Box::new(
                Engine::from_instance(instance, sub.grid.build_sim(sub.seed))
                    .with_config(config)
                    .with_trace_sink(sink),
            )),
            checkpoint,
        )),
        ExecMode::Paced { scale } => {
            let mut executor = sub.grid.build_paced(instance.workflow(), scale);
            // Paced mode runs real threads, so the stall fault can starve
            // real heartbeats: the executor hook decides per task attempt.
            if let Some(plan) = &shared.chaos {
                let plan = plan.clone();
                let seed = sub.seed;
                executor.set_fault_hook(Arc::new(move |req: &grid_wfs::SubmitRequest| {
                    plan.task_stall(seed, req.task.0)
                        .map(|d| InjectedTaskFault::Stall(d.as_secs_f64()))
                }));
            }
            Ok((
                AnyEngine::Paced(Box::new(
                    Engine::from_instance(instance, executor)
                        .with_config(config)
                        .with_trace_sink(sink),
                )),
                checkpoint,
            ))
        }
    }
}

/// Applies the run's outcome to the job record, the metrics registry, and
/// the storage backend.  Terminal markers and elapsed ledgers are staged
/// on the scheduler's [`StateBatch`] (group-committed per tick) instead
/// of paying one durability point each.
pub(crate) fn settle(
    shared: &Shared,
    id: JobId,
    result: Result<Report, String>,
    run_wall: f64,
    journal: Option<Arc<JsonlSink>>,
    batch: &mut StateBatch,
) {
    let c = &shared.metrics.counters;
    let (state, detail, report) = match result {
        Err(msg) => (JobState::Failed, msg, None),
        Ok(report) => match report.aborted.as_deref() {
            Some("stop") => {
                let cancel_requested = shared
                    .table
                    .shard(id.0)
                    .jobs
                    .get(&id.0)
                    .is_some_and(|r| r.cancel_requested);
                if cancel_requested {
                    (JobState::Cancelled, "cancelled".to_string(), Some(report))
                } else {
                    // Service shutdown, not a client cancel: back to
                    // `Queued` so the next incarnation resumes it from the
                    // checkpoint the aborting engine just wrote.  Bank the
                    // executor time this incarnation consumed so the resume
                    // gets the remaining deadline budget, not a fresh one.
                    // (The batch is flushed before the worker exits, which
                    // is always before the next incarnation can start.)
                    if let Some(st) = shared.storage.as_deref() {
                        let consumed = recover::read_elapsed(st, id) + report.makespan;
                        batch.stage(
                            recover::elapsed_name(id),
                            recover::elapsed_payload(consumed),
                        );
                    }
                    if let Some(journal) = &journal {
                        journal.record(&TraceEvent {
                            at: report.finished_at,
                            kind: TraceKind::JobAborted {
                                job: id.0,
                                reason: "service-shutdown".into(),
                            },
                        });
                        journal.flush();
                    }
                    let mut shard = shared.table.shard(id.0);
                    if let Some(rec) = shard.jobs.get_mut(&id.0) {
                        rec.state = JobState::Queued;
                        rec.started_at = None;
                    }
                    return;
                }
            }
            Some("deadline") => {
                Metrics::incr(&c.deadline_exceeded);
                (
                    JobState::Failed,
                    "deadline exceeded".to_string(),
                    Some(report),
                )
            }
            _ => {
                let state = if report.is_success() {
                    JobState::Done
                } else {
                    JobState::Failed
                };
                (state, format!("{:?}", report.outcome), Some(report))
            }
        },
    };
    if let Some(journal) = &journal {
        journal.record(&TraceEvent {
            // Anchor on the engine clock (0.0 when the run died before
            // producing a report) — journals stay wall-clock-free.
            at: report.as_ref().map(|r| r.finished_at).unwrap_or(0.0),
            kind: TraceKind::JobSettled {
                job: id.0,
                state: state.as_str().into(),
                detail: detail.clone(),
            },
        });
        journal.flush();
        if let Some(e) = journal.error() {
            eprintln!("gridwfs-serve: {id}: trace journal write failed: {e}");
        }
    }
    match state {
        JobState::Done => Metrics::incr(&c.completed),
        JobState::Cancelled => Metrics::incr(&c.cancelled),
        _ => Metrics::incr(&c.failed),
    }
    let latency = {
        let mut shard = shared.table.shard(id.0);
        let Some(rec) = shard.jobs.get_mut(&id.0) else {
            return;
        };
        rec.state = state;
        rec.finished_at = Some(shared.now());
        rec.run_wall = Some(run_wall);
        rec.detail = Some(detail.clone());
        if let Some(report) = &report {
            rec.makespan = Some(report.makespan);
            rec.task_submissions = report
                .log
                .iter()
                .filter(|e| e.kind == LogKind::Submit)
                .count() as u64;
        }
        rec.latency()
    };
    if state != JobState::Cancelled {
        if let Some(latency) = latency {
            shared.metrics.observe_latency(latency);
        }
    }
    if shared.storage.is_some() {
        // The dead-letter record rides the same group commit as the
        // terminal marker: a job is never terminal without its DLQ, and
        // a reprocess run that drained the queue clears the stale record
        // in the same durability point that settles it.
        if let Some(report) = &report {
            if report.dlq.is_empty() {
                batch.stage_del(recover::dlq_name(id));
            } else {
                batch.stage(recover::dlq_name(id), recover::dlq_payload(&report.dlq));
            }
        }
        // A federated terminal settle releases the job's lease in the
        // same group commit as the result marker: peers see either a
        // live lease or a finished job, never an orphan window.
        if shared.federate.is_some() {
            batch.stage_del(recover::lease_name(id));
        }
        batch.stage(
            recover::result_name(id),
            recover::result_payload(state.as_str(), &detail),
        );
    }
}
