//! The worker loop: one popped job at a time, one engine instance each.
//!
//! A workflow closure that panics must not take its worker thread down —
//! that would silently shrink the pool until the service stopped making
//! progress.  [`run_job`] wraps the whole engine run in `catch_unwind`:
//! the panicking job settles as `Failed` (detail: the panic payload), a
//! `job_panicked` event lands in its journal and the service ring, the
//! `jobs_panicked` counter bumps, and the worker survives to pop the next
//! job.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use grid_wfs::engine::{Engine, EngineConfig, LogKind, Report};
use grid_wfs::{checkpoint, Executor, InjectedTaskFault, Instance};
use gridwfs_chaos::relock;
use gridwfs_trace::{FanoutSink, JsonlSink, TraceEvent, TraceKind, TraceSink};
use gridwfs_wpdl::parse;
use gridwfs_wpdl::validate::validate;

use crate::gridspec::ExecMode;
use crate::job::{JobId, JobState, Submission};
use crate::metrics::{Metrics, TraceMetricsSink};
use crate::queue::Pop;
use crate::recover;
use crate::service::Shared;

const POLL: Duration = Duration::from_millis(25);

/// Drains the admission queue until it is closed and empty.
pub(crate) fn worker_loop(shared: Arc<Shared>) {
    loop {
        match shared.queue.pop_timeout(POLL) {
            Pop::Closed => return,
            Pop::Empty => continue,
            Pop::Item(id) => {
                if shared.aborting.load(Ordering::Relaxed) {
                    // Hard shutdown: leave the job `Queued`; its manifest
                    // survives for the next incarnation's recovery scan.
                    continue;
                }
                run_job(&shared, id);
            }
        }
    }
}

fn run_job(shared: &Arc<Shared>, id: JobId) {
    let Some(sub) = relock(&shared.subs).get(&id.0).cloned() else {
        return;
    };
    let stop = Arc::new(AtomicBool::new(false));
    {
        let mut jobs = relock(&shared.jobs);
        let Some(rec) = jobs.get_mut(&id.0) else {
            return;
        };
        if rec.state != JobState::Queued {
            return; // cancelled while queued
        }
        rec.state = JobState::Running;
        rec.started_at = Some(shared.now());
        // Register the stop flag before the state change becomes visible:
        // any cancel() that observes `Running` is then guaranteed to find
        // the flag (it takes the jobs lock first).
        relock(&shared.stops).insert(id.0, stop.clone());
    }
    shared.metrics.running.fetch_add(1, Ordering::Relaxed);
    let journal = open_journal(shared, id, &sub);
    let wall_start = Instant::now();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        execute(shared, id, &sub, stop, journal.clone())
    }));
    let result = match caught {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            Metrics::incr(&shared.metrics.counters.jobs_panicked);
            if let Some(journal) = &journal {
                journal.record(&TraceEvent {
                    at: 0.0,
                    kind: TraceKind::JobPanicked {
                        job: id.0,
                        detail: msg.clone(),
                    },
                });
                journal.flush();
            }
            shared.trace(TraceKind::JobPanicked {
                job: id.0,
                detail: msg.clone(),
            });
            Err(format!("workflow panicked: {msg}"))
        }
    };
    let run_wall = wall_start.elapsed().as_secs_f64();
    relock(&shared.stops).remove(&id.0);
    shared.metrics.running.fetch_sub(1, Ordering::Relaxed);
    settle(shared, id, result, run_wall, journal);
}

/// Opens the job's flight-recorder journal (append: a recovered job's
/// later incarnations extend the same file) and stamps the incarnation
/// header.  Journal timestamps are the engine's executor clock, which
/// restarts at 0 per incarnation — the `job_start` header is what keeps
/// the segments apart.
fn open_journal(shared: &Arc<Shared>, id: JobId, sub: &Submission) -> Option<Arc<JsonlSink>> {
    let dir = shared.cfg.trace_dir.as_ref()?;
    let path = recover::trace_path(dir, id);
    let incarnation = recover::count_incarnations(&path);
    match JsonlSink::append(&path) {
        Ok(sink) => {
            sink.record(&TraceEvent {
                at: 0.0,
                kind: TraceKind::JobStarted {
                    job: id.0,
                    incarnation,
                    seed: sub.seed,
                },
            });
            Some(Arc::new(sink))
        }
        Err(e) => {
            eprintln!("gridwfs-serve: {id}: cannot open trace journal: {e}");
            None
        }
    }
}

/// Builds the instance (fresh, or from the persisted engine checkpoint)
/// and runs it on the submission's Grid.
fn execute(
    shared: &Arc<Shared>,
    id: JobId,
    sub: &Submission,
    stop: Arc<AtomicBool>,
    journal: Option<Arc<JsonlSink>>,
) -> Result<Report, String> {
    // Chaos hooks run inside the caller's catch_unwind region: an
    // injected panic exercises exactly the path a buggy workflow closure
    // would take.  Both decisions are keyed by the submission seed, so
    // they replay identically whatever worker picks the job up.
    if let Some(plan) = &shared.chaos {
        if let Some(pause) = plan.worker_stall(sub.seed) {
            std::thread::sleep(pause);
        }
        if plan.job_panics(sub.seed) {
            panic!("chaos: injected workflow panic (job seed {})", sub.seed);
        }
    }
    let ckpt_path = shared
        .cfg
        .state_dir
        .as_ref()
        .map(|dir| recover::checkpoint_path(dir, id));
    let instance = match &ckpt_path {
        Some(path) if path.exists() => checkpoint::load(path).map_err(|e| e.to_string())?,
        _ => {
            let workflow = parse::from_str(&sub.workflow_xml).map_err(|e| e.to_string())?;
            let validated = validate(workflow).map_err(|issues| {
                issues
                    .iter()
                    .map(|i| i.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            })?;
            Instance::new(validated)
        }
    };
    // The engine's deadline is relative to each run start, so hand a
    // resumed job its *remaining* budget: total minus the executor time
    // already consumed in earlier incarnations (the `.elapsed` ledger).
    // An exhausted budget still runs with deadline 0 — the engine aborts
    // on its first loop turn and the job settles as a deadline failure.
    let deadline = sub.deadline.or(shared.cfg.default_deadline).map(|total| {
        let consumed = shared
            .cfg
            .state_dir
            .as_ref()
            .map(|dir| recover::read_elapsed(shared.fs.as_ref(), dir, id))
            .unwrap_or(0.0);
        (total - consumed).max(0.0)
    });
    let config = EngineConfig {
        checkpoint_path: ckpt_path,
        stop: Some(stop),
        deadline,
        detector: sub.grid.detector_policy(),
        ..EngineConfig::default()
    };
    // The engine's trace stream always feeds the metrics registry; with a
    // trace directory it also feeds the job's journal.
    let metrics_sink: Arc<dyn TraceSink> = Arc::new(TraceMetricsSink::new(shared.metrics.clone()));
    let sink: Arc<dyn TraceSink> = match journal {
        Some(journal) => Arc::new(FanoutSink::new(vec![journal, metrics_sink])),
        None => metrics_sink,
    };
    match sub.grid.mode {
        ExecMode::Virtual => Ok(run_engine(
            instance,
            sub.grid.build_sim(sub.seed),
            config,
            sink,
        )),
        ExecMode::Paced { scale } => {
            let mut executor = sub.grid.build_paced(instance.workflow(), scale);
            // Paced mode runs real threads, so the stall fault can starve
            // real heartbeats: the executor hook decides per task attempt.
            if let Some(plan) = &shared.chaos {
                let plan = plan.clone();
                let seed = sub.seed;
                executor.set_fault_hook(Arc::new(move |req: &grid_wfs::SubmitRequest| {
                    plan.task_stall(seed, req.task.0)
                        .map(|d| InjectedTaskFault::Stall(d.as_secs_f64()))
                }));
            }
            Ok(run_engine(instance, executor, config, sink))
        }
    }
}

fn run_engine<X: Executor>(
    instance: Instance,
    executor: X,
    config: EngineConfig,
    sink: Arc<dyn TraceSink>,
) -> Report {
    Engine::from_instance(instance, executor)
        .with_config(config)
        .with_trace_sink(sink)
        .run()
}

/// Applies the run's outcome to the job record, the metrics registry, and
/// the state directory.
fn settle(
    shared: &Arc<Shared>,
    id: JobId,
    result: Result<Report, String>,
    run_wall: f64,
    journal: Option<Arc<JsonlSink>>,
) {
    let c = &shared.metrics.counters;
    let (state, detail, report) = match result {
        Err(msg) => (JobState::Failed, msg, None),
        Ok(report) => match report.aborted.as_deref() {
            Some("stop") => {
                let cancel_requested = relock(&shared.jobs)
                    .get(&id.0)
                    .is_some_and(|r| r.cancel_requested);
                if cancel_requested {
                    (JobState::Cancelled, "cancelled".to_string(), Some(report))
                } else {
                    // Service shutdown, not a client cancel: back to
                    // `Queued` so the next incarnation resumes it from the
                    // checkpoint the aborting engine just wrote.  Bank the
                    // executor time this incarnation consumed so the resume
                    // gets the remaining deadline budget, not a fresh one.
                    if let Some(dir) = &shared.cfg.state_dir {
                        let fs = shared.fs.as_ref();
                        let consumed = recover::read_elapsed(fs, dir, id) + report.makespan;
                        if let Err(e) = recover::write_elapsed(fs, dir, id, consumed) {
                            eprintln!("gridwfs-serve: {id}: cannot write elapsed ledger: {e}");
                        }
                    }
                    if let Some(journal) = &journal {
                        journal.record(&TraceEvent {
                            at: report.finished_at,
                            kind: TraceKind::JobAborted {
                                job: id.0,
                                reason: "service-shutdown".into(),
                            },
                        });
                        journal.flush();
                    }
                    let mut jobs = relock(&shared.jobs);
                    if let Some(rec) = jobs.get_mut(&id.0) {
                        rec.state = JobState::Queued;
                        rec.started_at = None;
                    }
                    return;
                }
            }
            Some("deadline") => {
                Metrics::incr(&c.deadline_exceeded);
                (
                    JobState::Failed,
                    "deadline exceeded".to_string(),
                    Some(report),
                )
            }
            _ => {
                let state = if report.is_success() {
                    JobState::Done
                } else {
                    JobState::Failed
                };
                (state, format!("{:?}", report.outcome), Some(report))
            }
        },
    };
    if let Some(journal) = &journal {
        journal.record(&TraceEvent {
            // Anchor on the engine clock (0.0 when the run died before
            // producing a report) — journals stay wall-clock-free.
            at: report.as_ref().map(|r| r.finished_at).unwrap_or(0.0),
            kind: TraceKind::JobSettled {
                job: id.0,
                state: state.as_str().into(),
                detail: detail.clone(),
            },
        });
        journal.flush();
        if let Some(e) = journal.error() {
            eprintln!("gridwfs-serve: {id}: trace journal write failed: {e}");
        }
    }
    match state {
        JobState::Done => Metrics::incr(&c.completed),
        JobState::Cancelled => Metrics::incr(&c.cancelled),
        _ => Metrics::incr(&c.failed),
    }
    let latency = {
        let mut jobs = relock(&shared.jobs);
        let Some(rec) = jobs.get_mut(&id.0) else {
            return;
        };
        rec.state = state;
        rec.finished_at = Some(shared.now());
        rec.run_wall = Some(run_wall);
        rec.detail = Some(detail.clone());
        if let Some(report) = &report {
            rec.makespan = Some(report.makespan);
            rec.task_submissions = report
                .log
                .iter()
                .filter(|e| e.kind == LogKind::Submit)
                .count() as u64;
        }
        rec.latency()
    };
    if state != JobState::Cancelled {
        if let Some(latency) = latency {
            shared.metrics.observe_latency(latency);
        }
    }
    if let Some(dir) = &shared.cfg.state_dir {
        if let Err(e) = recover::write_result(shared.fs.as_ref(), dir, id, state.as_str(), &detail)
        {
            eprintln!("gridwfs-serve: {id}: cannot write result marker: {e}");
        }
    }
}
