//! A data description of the Grid a job runs on.
//!
//! The service must be able to rebuild a job's executor after a restart,
//! so the Grid is described as plain data (hosts, link, behaviour
//! profiles) rather than a live [`SimGrid`] value, and it round-trips
//! through a line-based manifest format that needs no JSON machinery
//! (`to_manifest` / `from_manifest`).
//!
//! Two execution modes:
//!
//! * [`ExecMode::Virtual`] — a discrete-event [`SimGrid`]: virtual time,
//!   failure injection, runs as fast as the CPU allows.  One engine run is
//!   nearly instant regardless of the workflow's simulated makespan.
//! * [`ExecMode::Paced`] — a [`ThreadExecutor`] whose program bodies sleep
//!   `nominal_duration × scale` wall seconds (heartbeating as they go).
//!   This models Grid jobs with real latency, so worker-pool concurrency
//!   is observable in wall-clock time — the mode the load generator uses
//!   to demonstrate throughput.

use grid_wfs::sim_executor::TaskProfile;
use grid_wfs::{DetectorPolicy, PhiConfig, SimGrid, TaskResult, ThreadExecutor};
use gridwfs_sim::dist::Dist;
use gridwfs_sim::net::LinkModel;
use gridwfs_sim::resource::ResourceSpec;
use gridwfs_wpdl::ast::Workflow;

/// How jobs on this Grid execute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecMode {
    /// Discrete-event simulation in virtual time.
    Virtual,
    /// Real threads sleeping `nominal_duration × scale` wall seconds.
    Paced {
        /// Wall seconds per nominal time unit.
        scale: f64,
    },
}

/// One simulated host.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpec {
    /// Hostname matched against WPDL `<Option hostname=..>`.
    pub hostname: String,
    /// Relative speed.
    pub speed: f64,
    /// Mean time to failure; `None` = failure-free.
    pub mttf: Option<f64>,
    /// Mean downtime after a crash.
    pub downtime: f64,
}

/// Notification link behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Base delivery delay.
    pub delay: f64,
    /// Per-message drop probability.
    pub drop_p: f64,
    /// Uniform extra delay in `[0, jitter)` on top of the base delay.
    pub jitter: f64,
    /// Per-message duplication probability.
    pub dup_p: f64,
}

impl LinkSpec {
    /// A constant-delay, possibly lossy link (no jitter, no duplicates).
    pub fn constant(delay: f64, drop_p: f64) -> Self {
        LinkSpec {
            delay,
            drop_p,
            jitter: 0.0,
            dup_p: 0.0,
        }
    }

    /// Instantiates the simulated link.
    pub fn to_model(&self) -> LinkModel {
        LinkModel::jittered(self.delay, self.jitter, self.drop_p).with_duplicates(self.dup_p)
    }
}

/// Crash-presumption policy for every engine run on this Grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorSpec {
    /// Classic fixed timeout; `tolerance` overrides every activity's
    /// declared heartbeat tolerance when set.
    Timeout {
        /// Tolerance override (multiples of the heartbeat interval).
        tolerance: Option<f64>,
    },
    /// Adaptive φ-accrual suspicion at this threshold.
    Phi {
        /// Presumption threshold (suspicion level φ).
        threshold: f64,
    },
}

impl DetectorSpec {
    /// The engine-side policy this spec describes.
    pub fn to_policy(&self) -> DetectorPolicy {
        match self {
            DetectorSpec::Timeout { tolerance } => DetectorPolicy::FixedTimeout {
                tolerance: *tolerance,
            },
            DetectorSpec::Phi { threshold } => {
                DetectorPolicy::PhiAccrual(PhiConfig::with_threshold(*threshold))
            }
        }
    }
}

/// Placement policy for every engine run on this Grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerSpec {
    /// Blind option cycling plus breaker-skip (the default engine).
    Oblivious,
    /// Evidence-scored placement: φ levels, breaker state, windowed
    /// failure rates, and λ/D priors derived from the declared hosts.
    Resilient,
}

impl SchedulerSpec {
    /// The engine-side policy this spec describes, with per-host failure
    /// priors (λ = 1/MTTF, D = downtime) taken from `hosts`.
    pub fn to_policy(&self, hosts: &[HostSpec]) -> grid_wfs::SchedulerPolicy {
        match self {
            SchedulerSpec::Oblivious => grid_wfs::SchedulerPolicy::Oblivious,
            SchedulerSpec::Resilient => {
                let priors = hosts
                    .iter()
                    .filter_map(|h| {
                        h.mttf.map(|mttf| grid_wfs::HostPrior {
                            host: h.hostname.clone(),
                            lambda: 1.0 / mttf,
                            downtime: h.downtime,
                        })
                    })
                    .collect();
                grid_wfs::SchedulerPolicy::Resilient(grid_wfs::ScorerConfig {
                    priors,
                    ..grid_wfs::ScorerConfig::default()
                })
            }
        }
    }
}

/// Behaviour profile of one program's tasks (virtual mode only).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSpec {
    /// Program name the profile applies to.
    pub program: String,
    /// Emit a checkpoint every this many nominal time units.
    pub checkpoint_period: Option<f64>,
    /// Software-crash MTTF (exponential).
    pub soft_crash_mttf: Option<f64>,
    /// Exception injection: (name, checks, per-check probability).
    pub exception: Option<(String, u32, f64)>,
}

/// The full Grid description.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Execution mode.
    pub mode: ExecMode,
    /// Hosts available to workflows.
    pub hosts: Vec<HostSpec>,
    /// Link model (default: perfect).
    pub link: Option<LinkSpec>,
    /// Per-host link overrides (hosts not listed use `link`).
    pub host_links: Vec<(String, LinkSpec)>,
    /// Crash-presumption policy (default: each activity's declared fixed
    /// timeout).
    pub detector: Option<DetectorSpec>,
    /// Placement policy (default: oblivious cycling).
    pub scheduler: Option<SchedulerSpec>,
    /// Per-program behaviour profiles.
    pub profiles: Vec<ProfileSpec>,
}

impl GridSpec {
    /// An empty virtual-time Grid.
    pub fn virtual_grid() -> Self {
        GridSpec {
            mode: ExecMode::Virtual,
            hosts: Vec::new(),
            link: None,
            host_links: Vec::new(),
            detector: None,
            scheduler: None,
            profiles: Vec::new(),
        }
    }

    /// An empty paced Grid (`scale` wall seconds per nominal unit).
    pub fn paced_grid(scale: f64) -> Self {
        assert!(scale > 0.0, "pacing scale must be positive");
        GridSpec {
            mode: ExecMode::Paced { scale },
            ..GridSpec::virtual_grid()
        }
    }

    /// Builder: add a failure-free host.
    pub fn with_host(mut self, hostname: &str, speed: f64) -> Self {
        self.hosts.push(HostSpec {
            hostname: hostname.into(),
            speed,
            mttf: None,
            downtime: 0.0,
        });
        self
    }

    /// Builder: add an unreliable host.
    pub fn with_unreliable_host(
        mut self,
        hostname: &str,
        speed: f64,
        mttf: f64,
        downtime: f64,
    ) -> Self {
        self.hosts.push(HostSpec {
            hostname: hostname.into(),
            speed,
            mttf: Some(mttf),
            downtime,
        });
        self
    }

    /// Builder: set the notification link model.
    pub fn with_link(mut self, delay: f64, drop_p: f64) -> Self {
        self.link = Some(LinkSpec::constant(delay, drop_p));
        self
    }

    /// Builder: set the full notification link model (jitter, duplicates).
    pub fn with_link_spec(mut self, link: LinkSpec) -> Self {
        self.link = Some(link);
        self
    }

    /// Builder: override the link model for one host.
    pub fn with_host_link(mut self, hostname: &str, link: LinkSpec) -> Self {
        self.host_links.push((hostname.into(), link));
        self
    }

    /// Builder: set the crash-presumption policy.
    pub fn with_detector(mut self, detector: DetectorSpec) -> Self {
        self.detector = Some(detector);
        self
    }

    /// The engine-side crash-presumption policy for jobs on this Grid.
    pub fn detector_policy(&self) -> DetectorPolicy {
        self.detector.map(|d| d.to_policy()).unwrap_or_default()
    }

    /// Builder: set the placement policy.
    pub fn with_scheduler(mut self, scheduler: SchedulerSpec) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// The engine-side placement policy for jobs on this Grid (priors
    /// derived from the declared hosts' MTTF/downtime).
    pub fn scheduler_policy(&self) -> grid_wfs::SchedulerPolicy {
        self.scheduler
            .map(|s| s.to_policy(&self.hosts))
            .unwrap_or_default()
    }

    /// Builder: attach a behaviour profile.
    pub fn with_profile(mut self, profile: ProfileSpec) -> Self {
        self.profiles.push(profile);
        self
    }

    /// Instantiates the virtual-time simulated Grid.
    pub fn build_sim(&self, seed: u64) -> SimGrid {
        let mut grid = SimGrid::new(seed);
        if let Some(link) = &self.link {
            grid = grid.with_link(link.to_model());
        }
        for (host, link) in &self.host_links {
            grid.set_host_link(host.clone(), link.to_model());
        }
        for h in &self.hosts {
            let spec = match h.mttf {
                Some(mttf) => ResourceSpec::unreliable(&h.hostname, mttf, h.downtime),
                None => ResourceSpec::reliable(&h.hostname),
            }
            .with_speed(h.speed);
            grid.add_host(spec);
        }
        for p in &self.profiles {
            let mut profile = TaskProfile::reliable();
            if let Some(period) = p.checkpoint_period {
                profile = profile.with_checkpoints(period);
            }
            if let Some(mttf) = p.soft_crash_mttf {
                profile = profile.with_soft_crash(Dist::exponential_mean(mttf));
            }
            if let Some((name, checks, prob)) = &p.exception {
                profile = profile.with_exception(name.clone(), *checks, *prob);
            }
            grid.set_profile(&p.program, profile);
        }
        grid
    }

    /// Instantiates the paced thread executor for `workflow`: every
    /// program becomes a closure that sleeps its scaled nominal duration
    /// (divided by the fastest declared host speed), heartbeating along
    /// the way and returning early when cancelled.
    pub fn build_paced(&self, workflow: &Workflow, scale: f64) -> ThreadExecutor {
        let speedup = self
            .hosts
            .iter()
            .map(|h| h.speed)
            .fold(1.0_f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let mut executor = ThreadExecutor::new();
        for program in &workflow.programs {
            let wall = (program.nominal_duration / speedup * scale).max(0.001);
            executor.register(program.name.clone(), move |ctx| {
                let hb = (wall / 4.0).clamp(0.002, 0.05);
                ctx.work_for(wall, hb);
                TaskResult::Success
            });
        }
        executor
    }

    // ------------------------------------------------------- manifest ---

    /// Serialises the spec to the line-based manifest format.
    pub fn to_manifest(&self) -> String {
        let mut out = String::new();
        match self.mode {
            ExecMode::Virtual => out.push_str("mode virtual\n"),
            ExecMode::Paced { scale } => out.push_str(&format!("mode paced {scale}\n")),
        }
        for h in &self.hosts {
            let mttf = h.mttf.map(|m| m.to_string()).unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "host {} {} {} {}\n",
                h.hostname, h.speed, mttf, h.downtime
            ));
        }
        let link_line = |name: &str, l: &LinkSpec| {
            // Old manifests carried two link fields; keep emitting that
            // form when the extensions are unused so existing state dirs
            // stay byte-stable.
            if l.jitter == 0.0 && l.dup_p == 0.0 {
                format!("{name} {} {}\n", l.delay, l.drop_p)
            } else {
                format!("{name} {} {} {} {}\n", l.delay, l.drop_p, l.jitter, l.dup_p)
            }
        };
        if let Some(l) = &self.link {
            out.push_str(&link_line("link", l));
        }
        for (host, l) in &self.host_links {
            out.push_str(&link_line(&format!("hostlink {host}"), l));
        }
        match &self.detector {
            None => {}
            Some(DetectorSpec::Timeout { tolerance }) => {
                let t = tolerance
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".into());
                out.push_str(&format!("detector timeout {t}\n"));
            }
            Some(DetectorSpec::Phi { threshold }) => {
                out.push_str(&format!("detector phi {threshold}\n"));
            }
        }
        match &self.scheduler {
            None => {}
            Some(SchedulerSpec::Oblivious) => out.push_str("scheduler oblivious\n"),
            Some(SchedulerSpec::Resilient) => out.push_str("scheduler resilient\n"),
        }
        for p in &self.profiles {
            let ck = p
                .checkpoint_period
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into());
            let sc = p
                .soft_crash_mttf
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into());
            out.push_str(&format!("profile {} {} {}", p.program, ck, sc));
            if let Some((name, checks, prob)) = &p.exception {
                out.push_str(&format!(" exception {name} {checks} {prob}"));
            }
            out.push('\n');
        }
        out
    }

    /// Parses the manifest format back into a spec.
    pub fn from_manifest(text: &str) -> Result<GridSpec, String> {
        let mut spec = GridSpec::virtual_grid();
        let opt = |s: &str, what: &str| -> Result<Option<f64>, String> {
            if s == "-" {
                Ok(None)
            } else {
                s.parse().map(Some).map_err(|_| format!("bad {what} '{s}'"))
            }
        };
        for line in text.lines() {
            let mut f = line.split_whitespace();
            match f.next() {
                None => continue,
                Some("mode") => match f.next() {
                    Some("virtual") => spec.mode = ExecMode::Virtual,
                    Some("paced") => {
                        let scale = f
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| "paced mode needs a scale".to_string())?;
                        spec.mode = ExecMode::Paced { scale };
                    }
                    other => return Err(format!("unknown mode {other:?}")),
                },
                Some("host") => {
                    let fields: Vec<&str> = f.collect();
                    let [hostname, speed, mttf, downtime] = fields.as_slice() else {
                        return Err(format!("malformed host line '{line}'"));
                    };
                    spec.hosts.push(HostSpec {
                        hostname: hostname.to_string(),
                        speed: speed.parse().map_err(|_| format!("bad speed '{speed}'"))?,
                        mttf: opt(mttf, "mttf")?,
                        downtime: downtime
                            .parse()
                            .map_err(|_| format!("bad downtime '{downtime}'"))?,
                    });
                }
                Some("link") => {
                    let fields: Vec<&str> = f.collect();
                    spec.link = Some(parse_link(&fields, line)?);
                }
                Some("hostlink") => {
                    let fields: Vec<&str> = f.collect();
                    let Some((host, rest)) = fields.split_first() else {
                        return Err(format!("malformed hostlink line '{line}'"));
                    };
                    spec.host_links
                        .push((host.to_string(), parse_link(rest, line)?));
                }
                Some("detector") => {
                    let fields: Vec<&str> = f.collect();
                    spec.detector = Some(match fields.as_slice() {
                        ["timeout", t] => DetectorSpec::Timeout {
                            tolerance: opt(t, "tolerance")?,
                        },
                        ["phi", t] => DetectorSpec::Phi {
                            threshold: t.parse().map_err(|_| format!("bad threshold '{t}'"))?,
                        },
                        _ => return Err(format!("malformed detector line '{line}'")),
                    });
                }
                Some("scheduler") => {
                    spec.scheduler = Some(match f.next() {
                        Some("oblivious") => SchedulerSpec::Oblivious,
                        Some("resilient") => SchedulerSpec::Resilient,
                        other => return Err(format!("unknown scheduler {other:?}")),
                    });
                }
                Some("profile") => {
                    let fields: Vec<&str> = f.collect();
                    if fields.len() != 3 && fields.len() != 7 {
                        return Err(format!("malformed profile line '{line}'"));
                    }
                    let exception = if fields.len() == 7 {
                        if fields[3] != "exception" {
                            return Err(format!("malformed profile line '{line}'"));
                        }
                        Some((
                            fields[4].to_string(),
                            fields[5]
                                .parse()
                                .map_err(|_| format!("bad checks '{}'", fields[5]))?,
                            fields[6]
                                .parse()
                                .map_err(|_| format!("bad prob '{}'", fields[6]))?,
                        ))
                    } else {
                        None
                    };
                    spec.profiles.push(ProfileSpec {
                        program: fields[0].to_string(),
                        checkpoint_period: opt(fields[1], "checkpoint period")?,
                        soft_crash_mttf: opt(fields[2], "soft-crash mttf")?,
                        exception,
                    });
                }
                Some(other) => return Err(format!("unknown manifest directive '{other}'")),
            }
        }
        Ok(spec)
    }
}

/// Parses `delay drop_p [jitter dup_p]` link fields — the 2-field form is
/// the pre-extension manifest format and must keep parsing.
fn parse_link(fields: &[&str], line: &str) -> Result<LinkSpec, String> {
    let num = |s: &str, what: &str| -> Result<f64, String> {
        s.parse().map_err(|_| format!("bad {what} '{s}'"))
    };
    match fields {
        [delay, drop_p] => Ok(LinkSpec::constant(
            num(delay, "delay")?,
            num(drop_p, "drop_p")?,
        )),
        [delay, drop_p, jitter, dup_p] => Ok(LinkSpec {
            delay: num(delay, "delay")?,
            drop_p: num(drop_p, "drop_p")?,
            jitter: num(jitter, "jitter")?,
            dup_p: num(dup_p, "dup_p")?,
        }),
        _ => Err(format!("malformed link line '{line}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GridSpec {
        GridSpec::paced_grid(0.01)
            .with_host("fast.example.org", 2.0)
            .with_unreliable_host("flaky.example.org", 1.0, 80.0, 4.0)
            .with_link(0.5, 0.01)
            .with_profile(ProfileSpec {
                program: "solver".into(),
                checkpoint_period: Some(10.0),
                soft_crash_mttf: None,
                exception: Some(("disk_full".into(), 4, 0.05)),
            })
    }

    #[test]
    fn manifest_round_trips() {
        let spec = sample();
        let parsed = GridSpec::from_manifest(&spec.to_manifest()).unwrap();
        assert_eq!(spec, parsed);
    }

    #[test]
    fn manifest_round_trips_lossy_extensions() {
        let spec = GridSpec::virtual_grid()
            .with_host("h1", 1.0)
            .with_host("h2", 1.0)
            .with_link_spec(LinkSpec {
                delay: 0.2,
                drop_p: 0.1,
                jitter: 0.5,
                dup_p: 0.05,
            })
            .with_host_link("h1", LinkSpec::constant(3.0, 0.25))
            .with_detector(DetectorSpec::Phi { threshold: 8.0 });
        let parsed = GridSpec::from_manifest(&spec.to_manifest()).unwrap();
        assert_eq!(spec, parsed);
        let timeout =
            GridSpec::virtual_grid().with_detector(DetectorSpec::Timeout { tolerance: None });
        assert_eq!(
            GridSpec::from_manifest(&timeout.to_manifest()).unwrap(),
            timeout
        );
    }

    #[test]
    fn old_two_field_link_lines_still_parse() {
        let spec = GridSpec::from_manifest("mode virtual\nlink 0.5 0.01\n").unwrap();
        assert_eq!(spec.link, Some(LinkSpec::constant(0.5, 0.01)));
        // ... and specs without the extensions still emit the old form.
        assert!(spec.to_manifest().contains("link 0.5 0.01\n"));
    }

    #[test]
    fn detector_policies_map_to_engine_policies() {
        use grid_wfs::DetectorPolicy;
        assert_eq!(
            GridSpec::virtual_grid().detector_policy(),
            DetectorPolicy::default()
        );
        let phi = GridSpec::virtual_grid()
            .with_detector(DetectorSpec::Phi { threshold: 5.0 })
            .detector_policy();
        match phi {
            DetectorPolicy::PhiAccrual(cfg) => assert_eq!(cfg.threshold, 5.0),
            other => panic!("expected phi policy, got {other:?}"),
        }
    }

    #[test]
    fn manifest_rejects_garbage() {
        assert!(GridSpec::from_manifest("frobnicate x").is_err());
        assert!(GridSpec::from_manifest("host only-two 1.0").is_err());
        assert!(GridSpec::from_manifest("mode paced").is_err());
        assert!(GridSpec::from_manifest("link 1.0").is_err());
        assert!(GridSpec::from_manifest("hostlink h 1.0").is_err());
        assert!(GridSpec::from_manifest("detector phi x").is_err());
        assert!(GridSpec::from_manifest("detector voodoo 1").is_err());
        assert!(GridSpec::from_manifest("scheduler voodoo").is_err());
    }

    #[test]
    fn scheduler_directive_round_trips_and_maps_to_policy() {
        use grid_wfs::SchedulerPolicy;
        // Unset: no manifest line (old state dirs stay byte-stable) and
        // the default (oblivious) engine policy.
        let unset = GridSpec::virtual_grid();
        assert!(!unset.to_manifest().contains("scheduler"));
        assert!(matches!(
            unset.scheduler_policy(),
            SchedulerPolicy::Oblivious
        ));
        for spec in [SchedulerSpec::Oblivious, SchedulerSpec::Resilient] {
            let grid = GridSpec::virtual_grid()
                .with_host("ok.example.org", 1.0)
                .with_unreliable_host("flaky.example.org", 1.0, 50.0, 4.0)
                .with_scheduler(spec);
            let parsed = GridSpec::from_manifest(&grid.to_manifest()).unwrap();
            assert_eq!(grid, parsed);
        }
        let resilient = GridSpec::virtual_grid()
            .with_host("ok.example.org", 1.0)
            .with_unreliable_host("flaky.example.org", 1.0, 50.0, 4.0)
            .with_scheduler(SchedulerSpec::Resilient);
        match resilient.scheduler_policy() {
            SchedulerPolicy::Resilient(cfg) => {
                // Only the unreliable host carries a prior, with λ = 1/MTTF.
                assert_eq!(cfg.priors.len(), 1);
                assert_eq!(cfg.priors[0].host, "flaky.example.org");
                assert!((cfg.priors[0].lambda - 0.02).abs() < 1e-12);
                assert_eq!(cfg.priors[0].downtime, 4.0);
            }
            other => panic!("expected resilient policy, got {other:?}"),
        }
    }

    #[test]
    fn build_sim_has_declared_hosts() {
        let grid = sample().build_sim(7);
        assert!(grid.has_host("fast.example.org"));
        assert!(grid.has_host("flaky.example.org"));
        assert!(!grid.has_host("ghost"));
    }
}
