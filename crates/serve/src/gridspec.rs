//! A data description of the Grid a job runs on.
//!
//! The service must be able to rebuild a job's executor after a restart,
//! so the Grid is described as plain data (hosts, link, behaviour
//! profiles) rather than a live [`SimGrid`] value, and it round-trips
//! through a line-based manifest format that needs no JSON machinery
//! (`to_manifest` / `from_manifest`).
//!
//! Two execution modes:
//!
//! * [`ExecMode::Virtual`] — a discrete-event [`SimGrid`]: virtual time,
//!   failure injection, runs as fast as the CPU allows.  One engine run is
//!   nearly instant regardless of the workflow's simulated makespan.
//! * [`ExecMode::Paced`] — a [`ThreadExecutor`] whose program bodies sleep
//!   `nominal_duration × scale` wall seconds (heartbeating as they go).
//!   This models Grid jobs with real latency, so worker-pool concurrency
//!   is observable in wall-clock time — the mode the load generator uses
//!   to demonstrate throughput.

use grid_wfs::sim_executor::TaskProfile;
use grid_wfs::{SimGrid, TaskResult, ThreadExecutor};
use gridwfs_sim::dist::Dist;
use gridwfs_sim::net::LinkModel;
use gridwfs_sim::resource::ResourceSpec;
use gridwfs_wpdl::ast::Workflow;

/// How jobs on this Grid execute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecMode {
    /// Discrete-event simulation in virtual time.
    Virtual,
    /// Real threads sleeping `nominal_duration × scale` wall seconds.
    Paced {
        /// Wall seconds per nominal time unit.
        scale: f64,
    },
}

/// One simulated host.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpec {
    /// Hostname matched against WPDL `<Option hostname=..>`.
    pub hostname: String,
    /// Relative speed.
    pub speed: f64,
    /// Mean time to failure; `None` = failure-free.
    pub mttf: Option<f64>,
    /// Mean downtime after a crash.
    pub downtime: f64,
}

/// Notification link behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Constant delivery delay.
    pub delay: f64,
    /// Per-message drop probability.
    pub drop_p: f64,
}

/// Behaviour profile of one program's tasks (virtual mode only).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSpec {
    /// Program name the profile applies to.
    pub program: String,
    /// Emit a checkpoint every this many nominal time units.
    pub checkpoint_period: Option<f64>,
    /// Software-crash MTTF (exponential).
    pub soft_crash_mttf: Option<f64>,
    /// Exception injection: (name, checks, per-check probability).
    pub exception: Option<(String, u32, f64)>,
}

/// The full Grid description.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Execution mode.
    pub mode: ExecMode,
    /// Hosts available to workflows.
    pub hosts: Vec<HostSpec>,
    /// Link model (default: perfect).
    pub link: Option<LinkSpec>,
    /// Per-program behaviour profiles.
    pub profiles: Vec<ProfileSpec>,
}

impl GridSpec {
    /// An empty virtual-time Grid.
    pub fn virtual_grid() -> Self {
        GridSpec {
            mode: ExecMode::Virtual,
            hosts: Vec::new(),
            link: None,
            profiles: Vec::new(),
        }
    }

    /// An empty paced Grid (`scale` wall seconds per nominal unit).
    pub fn paced_grid(scale: f64) -> Self {
        assert!(scale > 0.0, "pacing scale must be positive");
        GridSpec {
            mode: ExecMode::Paced { scale },
            ..GridSpec::virtual_grid()
        }
    }

    /// Builder: add a failure-free host.
    pub fn with_host(mut self, hostname: &str, speed: f64) -> Self {
        self.hosts.push(HostSpec {
            hostname: hostname.into(),
            speed,
            mttf: None,
            downtime: 0.0,
        });
        self
    }

    /// Builder: add an unreliable host.
    pub fn with_unreliable_host(
        mut self,
        hostname: &str,
        speed: f64,
        mttf: f64,
        downtime: f64,
    ) -> Self {
        self.hosts.push(HostSpec {
            hostname: hostname.into(),
            speed,
            mttf: Some(mttf),
            downtime,
        });
        self
    }

    /// Builder: set the notification link model.
    pub fn with_link(mut self, delay: f64, drop_p: f64) -> Self {
        self.link = Some(LinkSpec { delay, drop_p });
        self
    }

    /// Builder: attach a behaviour profile.
    pub fn with_profile(mut self, profile: ProfileSpec) -> Self {
        self.profiles.push(profile);
        self
    }

    /// Instantiates the virtual-time simulated Grid.
    pub fn build_sim(&self, seed: u64) -> SimGrid {
        let mut grid = SimGrid::new(seed);
        if let Some(link) = &self.link {
            grid = grid.with_link(LinkModel::lossy(link.delay, link.drop_p));
        }
        for h in &self.hosts {
            let spec = match h.mttf {
                Some(mttf) => ResourceSpec::unreliable(&h.hostname, mttf, h.downtime),
                None => ResourceSpec::reliable(&h.hostname),
            }
            .with_speed(h.speed);
            grid.add_host(spec);
        }
        for p in &self.profiles {
            let mut profile = TaskProfile::reliable();
            if let Some(period) = p.checkpoint_period {
                profile = profile.with_checkpoints(period);
            }
            if let Some(mttf) = p.soft_crash_mttf {
                profile = profile.with_soft_crash(Dist::exponential_mean(mttf));
            }
            if let Some((name, checks, prob)) = &p.exception {
                profile = profile.with_exception(name.clone(), *checks, *prob);
            }
            grid.set_profile(&p.program, profile);
        }
        grid
    }

    /// Instantiates the paced thread executor for `workflow`: every
    /// program becomes a closure that sleeps its scaled nominal duration
    /// (divided by the fastest declared host speed), heartbeating along
    /// the way and returning early when cancelled.
    pub fn build_paced(&self, workflow: &Workflow, scale: f64) -> ThreadExecutor {
        let speedup = self
            .hosts
            .iter()
            .map(|h| h.speed)
            .fold(1.0_f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let mut executor = ThreadExecutor::new();
        for program in &workflow.programs {
            let wall = (program.nominal_duration / speedup * scale).max(0.001);
            executor.register(program.name.clone(), move |ctx| {
                let hb = (wall / 4.0).clamp(0.002, 0.05);
                ctx.work_for(wall, hb);
                TaskResult::Success
            });
        }
        executor
    }

    // ------------------------------------------------------- manifest ---

    /// Serialises the spec to the line-based manifest format.
    pub fn to_manifest(&self) -> String {
        let mut out = String::new();
        match self.mode {
            ExecMode::Virtual => out.push_str("mode virtual\n"),
            ExecMode::Paced { scale } => out.push_str(&format!("mode paced {scale}\n")),
        }
        for h in &self.hosts {
            let mttf = h.mttf.map(|m| m.to_string()).unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "host {} {} {} {}\n",
                h.hostname, h.speed, mttf, h.downtime
            ));
        }
        if let Some(l) = &self.link {
            out.push_str(&format!("link {} {}\n", l.delay, l.drop_p));
        }
        for p in &self.profiles {
            let ck = p
                .checkpoint_period
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into());
            let sc = p
                .soft_crash_mttf
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into());
            out.push_str(&format!("profile {} {} {}", p.program, ck, sc));
            if let Some((name, checks, prob)) = &p.exception {
                out.push_str(&format!(" exception {name} {checks} {prob}"));
            }
            out.push('\n');
        }
        out
    }

    /// Parses the manifest format back into a spec.
    pub fn from_manifest(text: &str) -> Result<GridSpec, String> {
        let mut spec = GridSpec::virtual_grid();
        let opt = |s: &str, what: &str| -> Result<Option<f64>, String> {
            if s == "-" {
                Ok(None)
            } else {
                s.parse().map(Some).map_err(|_| format!("bad {what} '{s}'"))
            }
        };
        for line in text.lines() {
            let mut f = line.split_whitespace();
            match f.next() {
                None => continue,
                Some("mode") => match f.next() {
                    Some("virtual") => spec.mode = ExecMode::Virtual,
                    Some("paced") => {
                        let scale = f
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| "paced mode needs a scale".to_string())?;
                        spec.mode = ExecMode::Paced { scale };
                    }
                    other => return Err(format!("unknown mode {other:?}")),
                },
                Some("host") => {
                    let fields: Vec<&str> = f.collect();
                    let [hostname, speed, mttf, downtime] = fields.as_slice() else {
                        return Err(format!("malformed host line '{line}'"));
                    };
                    spec.hosts.push(HostSpec {
                        hostname: hostname.to_string(),
                        speed: speed.parse().map_err(|_| format!("bad speed '{speed}'"))?,
                        mttf: opt(mttf, "mttf")?,
                        downtime: downtime
                            .parse()
                            .map_err(|_| format!("bad downtime '{downtime}'"))?,
                    });
                }
                Some("link") => {
                    let fields: Vec<&str> = f.collect();
                    let [delay, drop_p] = fields.as_slice() else {
                        return Err(format!("malformed link line '{line}'"));
                    };
                    spec.link = Some(LinkSpec {
                        delay: delay.parse().map_err(|_| format!("bad delay '{delay}'"))?,
                        drop_p: drop_p
                            .parse()
                            .map_err(|_| format!("bad drop_p '{drop_p}'"))?,
                    });
                }
                Some("profile") => {
                    let fields: Vec<&str> = f.collect();
                    if fields.len() != 3 && fields.len() != 7 {
                        return Err(format!("malformed profile line '{line}'"));
                    }
                    let exception = if fields.len() == 7 {
                        if fields[3] != "exception" {
                            return Err(format!("malformed profile line '{line}'"));
                        }
                        Some((
                            fields[4].to_string(),
                            fields[5]
                                .parse()
                                .map_err(|_| format!("bad checks '{}'", fields[5]))?,
                            fields[6]
                                .parse()
                                .map_err(|_| format!("bad prob '{}'", fields[6]))?,
                        ))
                    } else {
                        None
                    };
                    spec.profiles.push(ProfileSpec {
                        program: fields[0].to_string(),
                        checkpoint_period: opt(fields[1], "checkpoint period")?,
                        soft_crash_mttf: opt(fields[2], "soft-crash mttf")?,
                        exception,
                    });
                }
                Some(other) => return Err(format!("unknown manifest directive '{other}'")),
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GridSpec {
        GridSpec::paced_grid(0.01)
            .with_host("fast.example.org", 2.0)
            .with_unreliable_host("flaky.example.org", 1.0, 80.0, 4.0)
            .with_link(0.5, 0.01)
            .with_profile(ProfileSpec {
                program: "solver".into(),
                checkpoint_period: Some(10.0),
                soft_crash_mttf: None,
                exception: Some(("disk_full".into(), 4, 0.05)),
            })
    }

    #[test]
    fn manifest_round_trips() {
        let spec = sample();
        let parsed = GridSpec::from_manifest(&spec.to_manifest()).unwrap();
        assert_eq!(spec, parsed);
    }

    #[test]
    fn manifest_rejects_garbage() {
        assert!(GridSpec::from_manifest("frobnicate x").is_err());
        assert!(GridSpec::from_manifest("host only-two 1.0").is_err());
        assert!(GridSpec::from_manifest("mode paced").is_err());
    }

    #[test]
    fn build_sim_has_declared_hosts() {
        let grid = sample().build_sim(7);
        assert!(grid.has_host("fast.example.org"));
        assert!(grid.has_host("flaky.example.org"));
        assert!(!grid.has_host("ghost"));
    }
}
