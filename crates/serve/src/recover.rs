//! State-directory persistence and crash recovery.
//!
//! An admitted job leaves three kinds of files in the service's state
//! directory:
//!
//! * `job-<id>.wf.xml`   — the submitted WPDL document;
//! * `job-<id>.meta`     — label, seed, deadline, and the Grid manifest
//!   ([`GridSpec::to_manifest`]);
//! * `job-<id>.ckpt.xml` — the engine checkpoint, rewritten after every
//!   task settlement while the job runs;
//! * `job-<id>.result`   — the terminal marker, written exactly once.
//!
//! A restarted service re-admits every job that has a meta file but no
//! result marker.  If a checkpoint exists the worker resumes the engine
//! from it ([`grid_wfs::checkpoint::load`]) instead of starting the
//! workflow from scratch — the paper's §7 engine fault tolerance, lifted
//! to the service level.

use std::fs;
use std::path::{Path, PathBuf};

use crate::gridspec::GridSpec;
use crate::job::{JobId, Submission};

/// Path of the persisted workflow document.
pub fn workflow_path(dir: &Path, id: JobId) -> PathBuf {
    dir.join(format!("{id}.wf.xml"))
}

/// Path of the job metadata manifest.
pub fn meta_path(dir: &Path, id: JobId) -> PathBuf {
    dir.join(format!("{id}.meta"))
}

/// Path of the engine checkpoint.
pub fn checkpoint_path(dir: &Path, id: JobId) -> PathBuf {
    dir.join(format!("{id}.ckpt.xml"))
}

/// Path of the terminal marker.
pub fn result_path(dir: &Path, id: JobId) -> PathBuf {
    dir.join(format!("{id}.result"))
}

/// Persists an admitted submission (workflow + meta).
pub fn write_submission(dir: &Path, id: JobId, sub: &Submission) -> std::io::Result<()> {
    fs::write(workflow_path(dir, id), &sub.workflow_xml)?;
    let mut meta = String::new();
    meta.push_str(&format!("name {}\n", sub.name));
    meta.push_str(&format!("seed {}\n", sub.seed));
    meta.push_str(&format!(
        "deadline {}\n",
        sub.deadline
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".into())
    ));
    meta.push_str(&sub.grid.to_manifest());
    fs::write(meta_path(dir, id), meta)
}

/// Removes the persisted submission (rejected push rollback).
pub fn remove_submission(dir: &Path, id: JobId) {
    let _ = fs::remove_file(workflow_path(dir, id));
    let _ = fs::remove_file(meta_path(dir, id));
}

/// Writes the terminal marker.
pub fn write_result(dir: &Path, id: JobId, state: &str, detail: &str) -> std::io::Result<()> {
    fs::write(
        result_path(dir, id),
        format!("state {state}\ndetail {detail}\n"),
    )
}

fn parse_meta(text: &str, wf_xml: String) -> Result<Submission, String> {
    let mut name = None;
    let mut seed = 0u64;
    let mut deadline = None;
    let mut grid_lines = String::new();
    for line in text.lines() {
        let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
        match key {
            "name" => name = Some(rest.to_string()),
            "seed" => {
                seed = rest
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad seed '{rest}'"))?
            }
            "deadline" => {
                deadline = if rest.trim() == "-" {
                    None
                } else {
                    Some(
                        rest.trim()
                            .parse()
                            .map_err(|_| format!("bad deadline '{rest}'"))?,
                    )
                }
            }
            _ => {
                grid_lines.push_str(line);
                grid_lines.push('\n');
            }
        }
    }
    Ok(Submission {
        name: name.ok_or("meta file missing 'name'")?,
        workflow_xml: wf_xml,
        grid: GridSpec::from_manifest(&grid_lines)?,
        seed,
        deadline,
    })
}

/// Scans a state directory for jobs to re-admit: every `job-<id>.meta`
/// without a matching `job-<id>.result`, ascending by id.  Unreadable
/// entries are reported, not silently skipped.
pub fn scan(dir: &Path) -> Result<Vec<(JobId, Submission)>, String> {
    let mut ids: Vec<u64> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let file_name = entry.file_name();
        let Some(name) = file_name.to_str() else {
            continue;
        };
        if let Some(id) = name
            .strip_prefix("job-")
            .and_then(|r| r.strip_suffix(".meta"))
        {
            ids.push(id.parse().map_err(|_| format!("bad job id in '{name}'"))?);
        }
    }
    ids.sort_unstable();
    let mut out = Vec::new();
    for raw in ids {
        let id = JobId(raw);
        if result_path(dir, id).exists() {
            continue; // terminal before the restart
        }
        let meta = fs::read_to_string(meta_path(dir, id))
            .map_err(|e| format!("{id}: meta unreadable: {e}"))?;
        let wf = fs::read_to_string(workflow_path(dir, id))
            .map_err(|e| format!("{id}: workflow unreadable: {e}"))?;
        out.push((id, parse_meta(&meta, wf).map_err(|e| format!("{id}: {e}"))?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gridwfs-serve-recover-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sub(name: &str) -> Submission {
        Submission {
            name: name.into(),
            workflow_xml: "<Workflow name='w'/>".into(),
            grid: GridSpec::virtual_grid().with_host("h1", 1.0),
            seed: 9,
            deadline: Some(100.0),
        }
    }

    #[test]
    fn submission_round_trips_through_disk() {
        let dir = tmpdir("roundtrip");
        write_submission(&dir, JobId(3), &sub("alpha beta")).unwrap();
        let scanned = scan(&dir).unwrap();
        assert_eq!(scanned.len(), 1);
        let (id, got) = &scanned[0];
        assert_eq!(*id, JobId(3));
        assert_eq!(got.name, "alpha beta", "labels keep their spaces");
        assert_eq!(got.seed, 9);
        assert_eq!(got.deadline, Some(100.0));
        assert_eq!(got.grid, sub("x").grid);
        assert_eq!(got.workflow_xml, sub("x").workflow_xml);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn terminal_jobs_are_not_rescanned() {
        let dir = tmpdir("terminal");
        write_submission(&dir, JobId(1), &sub("a")).unwrap();
        write_submission(&dir, JobId(2), &sub("b")).unwrap();
        write_result(&dir, JobId(1), "done", "Success").unwrap();
        let scanned = scan(&dir).unwrap();
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].0, JobId(2));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn removed_submission_disappears() {
        let dir = tmpdir("remove");
        write_submission(&dir, JobId(7), &sub("a")).unwrap();
        remove_submission(&dir, JobId(7));
        assert!(scan(&dir).unwrap().is_empty());
        fs::remove_dir_all(&dir).ok();
    }
}
