//! State persistence and crash recovery over the [`Storage`] trait.
//!
//! An admitted job leaves a handful of named records in the service's
//! storage backend:
//!
//! * `job-<id>.wf.xml`   — the submitted WPDL document;
//! * `job-<id>.meta`     — label, seed, deadline, and the Grid manifest
//!   ([`GridSpec::to_manifest`]);
//! * `job-<id>.ckpt.xml` — the engine checkpoint, rewritten after every
//!   task settlement while the job runs;
//! * `job-<id>.result`   — the terminal marker, written exactly once.
//!
//! A restarted service re-admits every job that has a meta record but no
//! result marker.  If a checkpoint exists the worker resumes the engine
//! from it ([`grid_wfs::checkpoint::from_xml`]) instead of starting the
//! workflow from scratch — the paper's §7 engine fault tolerance, lifted
//! to the service level.
//!
//! Two more records keep restarts honest:
//!
//! * `job-<id>.elapsed` — executor-clock seconds the job has already
//!   consumed in earlier incarnations, so a resumed job's deadline is the
//!   *remaining* budget, not a fresh one.  It is updated whenever an
//!   aborted engine is requeued; time spent in an incarnation that died
//!   without a clean abort (kill -9) is forfeited from the ledger.
//! * id allocation scans **every** `job-<id>.*` record ([`max_job_id`]),
//!   terminal or not, so a restarted service never reuses the id — and
//!   thereby the checkpoint or result marker — of a finished job.
//!
//! Where the records live is the backend's business: one file each under
//! [`gridwfs_storage::DirStorage`] (the PR-4 layout, every name is a file
//! name), frames in a group-committed log under
//! [`gridwfs_storage::WalStorage`], plain map entries in memory.  Every
//! mutation goes through [`Storage::apply`], whose batch is one crash-
//! atomic group commit — a crash at any point leaves either the old or
//! the new version of each record, never a torn one.
//!
//! Corrupt entries are quarantined (meta renamed to
//! `job-<id>.meta.quarantined`, warning on stderr) rather than failing
//! the whole startup: one bad job must not take the service down.
//!
//! Federated fleets add one more record: `job-<id>.lease` — which replica
//! owns the job (`owner <id> epoch <n>` fencing line + `expires <t>`
//! wall-clock deadline).  The lease is minted in the admission batch,
//! renewed on the owner's heartbeat, CAS-claimed with a bumped epoch by a
//! takeover scanner once expired, and deleted in the same group commit as
//! the terminal result.  See `crate::federate`.

use std::fs;
use std::path::{Path, PathBuf};

use gridwfs_storage::{Op, Storage};

use crate::gridspec::GridSpec;
use crate::job::{JobId, Submission};

/// Record name of the persisted workflow document.
pub fn workflow_name(id: JobId) -> String {
    format!("{id}.wf.xml")
}

/// Record name of the job metadata manifest.
pub fn meta_name(id: JobId) -> String {
    format!("{id}.meta")
}

/// Record name of the engine checkpoint.
pub fn checkpoint_name(id: JobId) -> String {
    format!("{id}.ckpt.xml")
}

/// Record name of the terminal marker.
pub fn result_name(id: JobId) -> String {
    format!("{id}.result")
}

/// Record name of the consumed-deadline ledger.
pub fn elapsed_name(id: JobId) -> String {
    format!("{id}.elapsed")
}

/// Record name of the job's dead-letter queue: the `foreach` items that
/// exhausted their recovery budget in the job's last completed run.
/// Written at settle alongside the result marker, cleared once a
/// `dlq retry` flips the items back to pending.  The checkpoint remains
/// the source of truth for item *states*; this record is the listing the
/// CLI serves without parsing checkpoints.
pub fn dlq_name(id: JobId) -> String {
    format!("{id}.dlq")
}

/// Record name of the job's ownership lease (federated fleets only).
pub fn lease_name(id: JobId) -> String {
    format!("{id}.lease")
}

/// On-disk path of a record under the per-file [`DirStorage`] layout —
/// for tests and operators that inspect the state dir directly.  Other
/// backends have no per-record paths.
///
/// [`DirStorage`]: gridwfs_storage::DirStorage
pub fn meta_path(dir: &Path, id: JobId) -> PathBuf {
    dir.join(meta_name(id))
}

/// See [`meta_path`].
pub fn workflow_path(dir: &Path, id: JobId) -> PathBuf {
    dir.join(workflow_name(id))
}

/// See [`meta_path`].
pub fn checkpoint_path(dir: &Path, id: JobId) -> PathBuf {
    dir.join(checkpoint_name(id))
}

/// See [`meta_path`].
pub fn result_path(dir: &Path, id: JobId) -> PathBuf {
    dir.join(result_name(id))
}

/// See [`meta_path`].
pub fn elapsed_path(dir: &Path, id: JobId) -> PathBuf {
    dir.join(elapsed_name(id))
}

/// Path of the per-job flight-recorder journal (under the service's
/// *trace* directory, which is a plain directory regardless of the state
/// backend).
pub fn trace_path(dir: &Path, id: JobId) -> PathBuf {
    dir.join(format!("{id}.trace.jsonl"))
}

/// Top-level `kind` tag of one journal line, if the line is a well-formed
/// trace event.  The wire format pins `at` (a bare number) first and
/// `kind` second (see `gridwfs_trace`), so the tag sits before any
/// escapable string value in the line — a `"kind":"job_start"` byte
/// sequence buried inside a *value* (an adversarial job label, a line
/// appended by foreign tooling) never reaches this parse.
fn journal_line_kind(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("{\"at\":")?;
    let rest = rest[rest.find(',')?..].strip_prefix(",\"kind\":\"")?;
    Some(&rest[..rest.find('"')?])
}

/// 0-based incarnation number the next `job_start` event in `path` gets:
/// the count of lines whose **top-level** `kind` is `job_start`.  A
/// missing or unreadable journal counts as a fresh one.  (Trace journals
/// live outside the state backend and are append-only diagnostics, so
/// they stay on plain `std::fs`.)
pub fn count_incarnations(path: &Path) -> u32 {
    fs::read_to_string(path)
        .map(|text| {
            text.lines()
                .filter(|line| journal_line_kind(line) == Some("job_start"))
                .count() as u32
        })
        .unwrap_or(0)
}

/// Executor-clock seconds this job consumed in earlier incarnations
/// (0.0 when no ledger exists or it cannot be read/parsed — forfeiting
/// the ledger only widens the deadline budget, never loses the job).
pub fn read_elapsed(st: &dyn Storage, id: JobId) -> f64 {
    st.read_to_string(&elapsed_name(id))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0.0)
}

/// Serialized form of the consumed-deadline ledger — one source of truth
/// for the synchronous writer and the scheduler's group-commit batches.
pub fn elapsed_payload(secs: f64) -> Vec<u8> {
    format!("{secs}\n").into_bytes()
}

/// Records the total executor-clock seconds consumed so far.
pub fn write_elapsed(st: &dyn Storage, id: JobId, secs: f64) -> std::io::Result<()> {
    st.put(&elapsed_name(id), &elapsed_payload(secs))
}

/// The meta record is line-oriented, so the client-chosen label must not
/// be able to inject lines: escape backslashes and CR/LF on write…
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

/// …and undo it on read.
fn unescape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// The ops [`write_submission`] commits, exposed so a federated service
/// can mint the job's lease inside the *same* admission batch.  `lease`
/// of `Some(bytes)` puts `job-<id>.lease`; `None` clears any stale lease
/// at the id (a reassigned id must not inherit one).
pub fn write_submission_ops(id: JobId, sub: &Submission, lease: Option<Vec<u8>>) -> Vec<Op> {
    let mut meta = String::new();
    meta.push_str(&format!("name {}\n", escape_label(&sub.name)));
    meta.push_str(&format!("seed {}\n", sub.seed));
    meta.push_str(&format!(
        "deadline {}\n",
        sub.deadline
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".into())
    ));
    meta.push_str(&sub.grid.to_manifest());
    let mut ops = vec![
        Op::Del(checkpoint_name(id)),
        Op::Del(result_name(id)),
        Op::Del(elapsed_name(id)),
        Op::Del(dlq_name(id)),
    ];
    match lease {
        Some(bytes) => ops.push(Op::Put(lease_name(id), bytes)),
        None => ops.push(Op::Del(lease_name(id))),
    }
    ops.push(Op::Put(
        workflow_name(id),
        sub.workflow_xml.clone().into_bytes(),
    ));
    ops.push(Op::Put(meta_name(id), meta.into_bytes()));
    ops
}

/// Persists an admitted submission (workflow + meta) as **one** group
/// commit.  Any leftover checkpoint, result marker, elapsed ledger, or
/// lease at this id is cleared in the same batch: a freshly assigned id
/// must never inherit another job's state, and admission costs a single
/// durability point, not five.
pub fn write_submission(st: &dyn Storage, id: JobId, sub: &Submission) -> std::io::Result<()> {
    let mut errors = st.apply(write_submission_ops(id, sub, None));
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors.swap_remove(0).1)
    }
}

/// Removes the persisted submission (rejected push rollback).  Deleting a
/// record that does not exist is a no-op on every backend, so any reported
/// error is real — and the caller must treat it as such: a rollback that
/// cannot clear its staged records must not recycle the job id, or the
/// next restart's scan resurrects the rolled-back job under an id the
/// service has since handed to someone else.
pub fn remove_submission(st: &dyn Storage, id: JobId) -> std::io::Result<()> {
    let mut errors = st.apply(vec![
        Op::Del(workflow_name(id)),
        Op::Del(meta_name(id)),
        Op::Del(checkpoint_name(id)),
        Op::Del(result_name(id)),
        Op::Del(elapsed_name(id)),
        Op::Del(dlq_name(id)),
        Op::Del(lease_name(id)),
    ]);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors.swap_remove(0).1)
    }
}

/// Serialized form of the terminal marker — one source of truth for the
/// synchronous writer and the scheduler's group-commit batches.
pub fn result_payload(state: &str, detail: &str) -> Vec<u8> {
    format!("state {state}\ndetail {detail}\n").into_bytes()
}

/// Serialized form of the dead-letter record: line-oriented like the meta
/// record — an `entry <index>` line opens each dead item, followed by its
/// fields.  Client-chosen text (item payload, failure reason) is escaped
/// so it cannot inject lines.
pub fn dlq_payload(entries: &[grid_wfs::DlqEntry]) -> Vec<u8> {
    let mut out = String::new();
    for e in entries {
        out.push_str(&format!("entry {}\n", e.index));
        out.push_str(&format!("activity {}\n", escape_label(&e.activity)));
        out.push_str(&format!("item {}\n", escape_label(&e.item)));
        out.push_str(&format!("attempts {}\n", e.attempts));
        out.push_str(&format!("reason {}\n", escape_label(&e.reason)));
    }
    out.into_bytes()
}

/// Parses [`dlq_payload`].  Unknown keys are skipped (forward
/// compatibility); a field line before the first `entry` is an error.
pub fn parse_dlq(text: &str) -> Result<Vec<grid_wfs::DlqEntry>, String> {
    let mut out: Vec<grid_wfs::DlqEntry> = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let (key, value) = line.split_once(' ').unwrap_or((line, ""));
        if key == "entry" {
            let index = value
                .parse()
                .map_err(|_| format!("dlq record: bad entry index '{value}'"))?;
            out.push(grid_wfs::DlqEntry {
                activity: String::new(),
                index,
                item: String::new(),
                attempts: 0,
                reason: String::new(),
            });
            continue;
        }
        let Some(e) = out.last_mut() else {
            return Err(format!("dlq record: field '{key}' before any entry"));
        };
        match key {
            "activity" => e.activity = unescape_label(value),
            "item" => e.item = unescape_label(value),
            "attempts" => {
                e.attempts = value
                    .parse()
                    .map_err(|_| format!("dlq record: bad attempts '{value}'"))?;
            }
            "reason" => e.reason = unescape_label(value),
            _ => {}
        }
    }
    Ok(out)
}

/// Reads and parses a job's dead-letter record; an absent record is an
/// empty queue.
pub fn read_dlq(st: &dyn Storage, id: JobId) -> Result<Vec<grid_wfs::DlqEntry>, String> {
    match st.read_to_string(&dlq_name(id)) {
        Ok(text) => parse_dlq(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("{}: {e}", dlq_name(id))),
    }
}

/// Writes the terminal marker.
pub fn write_result(st: &dyn Storage, id: JobId, state: &str, detail: &str) -> std::io::Result<()> {
    st.put(&result_name(id), &result_payload(state, detail))
}

/// One job's ownership lease (federated fleets).
///
/// Wire form is two lines: `owner <escaped-id> epoch <n>` — the *fencing
/// line*, stable for as long as the same replica holds the same epoch —
/// followed by `expires <unix-secs>`, rewritten on every heartbeat
/// renewal.  Keeping the volatile expiry out of the first line is what
/// lets every guarded batch carry `Op::Check(lease, fencing-line)`
/// without re-reading the lease after each renewal.
#[derive(Debug, Clone, PartialEq)]
pub struct Lease {
    /// Replica id of the owner.
    pub owner: String,
    /// Fencing epoch, bumped by every ownership transfer.
    pub epoch: u64,
    /// Wall-clock (unix seconds) deadline after which any replica may
    /// claim the job.
    pub expires_at: f64,
}

impl Lease {
    /// The first payload line — the byte prefix a fenced batch checks.
    pub fn fence_prefix(owner: &str, epoch: u64) -> Vec<u8> {
        format!("owner {} epoch {epoch}\n", escape_label(owner)).into_bytes()
    }

    /// Serialized record form.
    pub fn payload(&self) -> Vec<u8> {
        let mut out = Self::fence_prefix(&self.owner, self.epoch);
        out.extend_from_slice(format!("expires {}\n", self.expires_at).as_bytes());
        out
    }

    /// Parses [`Lease::payload`].
    pub fn parse(text: &str) -> Result<Lease, String> {
        let mut lines = text.lines();
        let head = lines.next().ok_or("lease record: empty")?;
        let head = head
            .strip_prefix("owner ")
            .ok_or_else(|| format!("lease record: bad owner line '{head}'"))?;
        // The owner id is escaped, so it cannot contain a newline; split
        // on the *last* " epoch " so an owner containing the literal text
        // still round-trips.
        let (owner, epoch) = head
            .rsplit_once(" epoch ")
            .ok_or_else(|| format!("lease record: missing epoch in '{head}'"))?;
        let epoch = epoch
            .parse()
            .map_err(|_| format!("lease record: bad epoch '{epoch}'"))?;
        let exp = lines.next().ok_or("lease record: missing expires line")?;
        let exp = exp
            .strip_prefix("expires ")
            .ok_or_else(|| format!("lease record: bad expires line '{exp}'"))?;
        let expires_at = exp
            .parse()
            .map_err(|_| format!("lease record: bad expires '{exp}'"))?;
        Ok(Lease {
            owner: unescape_label(owner),
            epoch,
            expires_at,
        })
    }

    /// Has this lease expired at wall-clock `now` (unix seconds)?
    pub fn expired(&self, now: f64) -> bool {
        now >= self.expires_at
    }
}

/// Reads and parses a job's lease.  `Ok(None)` when absent; corrupt
/// records are an error so the caller can quarantine them.
pub fn read_lease(st: &dyn Storage, id: JobId) -> Result<Option<Lease>, String> {
    match st.read_to_string(&lease_name(id)) {
        Ok(text) => Lease::parse(&text).map(Some),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(format!("{}: {e}", lease_name(id))),
    }
}

fn parse_meta(text: &str, wf_xml: String) -> Result<Submission, String> {
    let mut name = None;
    let mut seed = 0u64;
    let mut deadline = None;
    let mut grid_lines = String::new();
    for line in text.lines() {
        let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
        match key {
            "name" => name = Some(unescape_label(rest)),
            "seed" => {
                seed = rest
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad seed '{rest}'"))?
            }
            "deadline" => {
                deadline = if rest.trim() == "-" {
                    None
                } else {
                    Some(
                        rest.trim()
                            .parse()
                            .map_err(|_| format!("bad deadline '{rest}'"))?,
                    )
                }
            }
            _ => {
                grid_lines.push_str(line);
                grid_lines.push('\n');
            }
        }
    }
    Ok(Submission {
        name: name.ok_or("meta file missing 'name'")?,
        workflow_xml: wf_xml,
        grid: GridSpec::from_manifest(&grid_lines)?,
        seed,
        deadline,
    })
}

/// Largest job id any `job-<id>.*` record mentions (0 when there is
/// none).  Unlike [`scan`] this counts terminal jobs, quarantined jobs,
/// and even `.tmp` staging leftovers (DirStorage lists them as records):
/// id allocation must never hand out an id whose checkpoint or result
/// marker is (or was about to be) durable.
pub fn max_job_id(st: &dyn Storage) -> Result<u64, String> {
    let mut max = 0u64;
    let names = st.list().map_err(|e| format!("storage list: {e}"))?;
    for name in names {
        if let Some(rest) = name.strip_prefix("job-") {
            let digits: &str = &rest[..rest.find('.').unwrap_or(rest.len())];
            if let Ok(id) = digits.parse::<u64>() {
                max = max.max(id);
            }
        }
    }
    Ok(max)
}

/// What a storage scan found.
#[derive(Debug)]
pub struct Scan {
    /// Jobs to re-admit, ascending by id.
    pub jobs: Vec<(JobId, Submission)>,
    /// Valid leases found, by job id (terminal jobs excluded).  A
    /// federated service consults these to decide which scanned jobs it
    /// may claim; single-replica services ignore them.
    pub leases: std::collections::HashMap<u64, Lease>,
    /// Corrupt entries moved aside during this scan.
    pub quarantined: u64,
}

/// Moves a corrupt record aside (`<name>.quarantined`) so later scans
/// skip it, keeping it around for post-mortem.  Backends make the rename
/// as robust as they can (DirStorage falls back to copy+remove); if it
/// still fails the record is named in the warning.
pub(crate) fn quarantine_record(st: &dyn Storage, name: &str, why: &str) {
    let aside = format!("{name}.quarantined");
    eprintln!("gridwfs-serve: quarantining {name}: {why}");
    if let Err(e) = st.rename(name, &aside) {
        eprintln!("gridwfs-serve: cannot move {name} aside to {aside}: {e}");
    }
}

/// Quarantines a job's meta record; the scan skips the job for this
/// incarnation (workflow/checkpoint records stay for post-mortem).
fn quarantine(st: &dyn Storage, id: JobId, why: &str) {
    quarantine_record(st, &meta_name(id), why);
}

/// Scans storage for jobs to re-admit: every `job-<id>.meta` without a
/// matching `job-<id>.result`, ascending by id.  Entries that cannot be
/// read or parsed — including corrupt `job-<id>.lease` records — are
/// quarantined with a stderr warning — one corrupt job must not keep the
/// whole service from starting.
pub fn scan(st: &dyn Storage) -> Result<Scan, String> {
    let mut ids: Vec<u64> = Vec::new();
    let mut lease_ids: Vec<u64> = Vec::new();
    let names = st.list().map_err(|e| format!("storage list: {e}"))?;
    for name in names {
        if let Some(id) = name
            .strip_prefix("job-")
            .and_then(|r| r.strip_suffix(".meta"))
        {
            match id.parse() {
                Ok(id) => ids.push(id),
                Err(_) => eprintln!("gridwfs-serve: ignoring bad job id in '{name}'"),
            }
        } else if let Some(id) = name
            .strip_prefix("job-")
            .and_then(|r| r.strip_suffix(".lease"))
        {
            if let Ok(id) = id.parse() {
                lease_ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    let mut out = Scan {
        jobs: Vec::new(),
        leases: std::collections::HashMap::new(),
        quarantined: 0,
    };
    for raw in lease_ids {
        let id = JobId(raw);
        match read_lease(st, id) {
            Ok(Some(lease)) => {
                out.leases.insert(raw, lease);
            }
            Ok(None) => {}
            Err(why) => {
                // A torn or garbled lease must not wedge recovery: move it
                // aside and let ownership be re-established from scratch
                // (the fencing epoch restarts, but so did the owner — any
                // zombie holding the old epoch fails its prefix check
                // against a freshly minted lease anyway).
                quarantine_record(st, &lease_name(id), &why);
                out.quarantined += 1;
            }
        }
    }
    for raw in ids {
        let id = JobId(raw);
        if st.exists(&result_name(id)) {
            continue; // terminal before the restart
        }
        match load_job(st, id) {
            Ok(sub) => out.jobs.push((id, sub)),
            Err(e) => {
                quarantine(st, id, &e);
                out.quarantined += 1;
            }
        }
    }
    Ok(out)
}

/// Reads and parses one job's submission (meta + workflow) from storage —
/// the per-job half of [`scan`], also used by the federated takeover
/// scanner to re-admit a claimed job.
pub fn load_job(st: &dyn Storage, id: JobId) -> Result<Submission, String> {
    let meta = st
        .read_to_string(&meta_name(id))
        .map_err(|e| format!("meta unreadable: {e}"))?;
    let wf = st
        .read_to_string(&workflow_name(id))
        .map_err(|e| format!("workflow unreadable: {e}"))?;
    parse_meta(&meta, wf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwfs_chaos::RealFs;
    use gridwfs_storage::{DirStorage, MemStorage, WalStorage};
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gridwfs-serve-recover-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Every backend must satisfy the recovery invariants.
    fn backends(root: &Path) -> Vec<Arc<dyn Storage>> {
        vec![
            Arc::new(DirStorage::new(Arc::new(RealFs), root.join("dir")).unwrap()),
            Arc::new(WalStorage::open(root.join("wal")).unwrap()),
            Arc::new(MemStorage::new()),
        ]
    }

    fn dir_storage(dir: &Path) -> DirStorage {
        DirStorage::new(Arc::new(RealFs), dir).unwrap()
    }

    fn sub(name: &str) -> Submission {
        Submission {
            name: name.into(),
            workflow_xml: "<Workflow name='w'/>".into(),
            grid: GridSpec::virtual_grid().with_host("h1", 1.0),
            seed: 9,
            deadline: Some(100.0),
        }
    }

    #[test]
    fn submission_round_trips_on_every_backend() {
        let root = tmpdir("roundtrip");
        for st in backends(&root) {
            write_submission(st.as_ref(), JobId(3), &sub("alpha beta")).unwrap();
            let scanned = scan(st.as_ref()).unwrap();
            assert_eq!(scanned.quarantined, 0);
            assert_eq!(scanned.jobs.len(), 1);
            let (id, got) = &scanned.jobs[0];
            assert_eq!(*id, JobId(3));
            assert_eq!(got.name, "alpha beta", "labels keep their spaces");
            assert_eq!(got.seed, 9);
            assert_eq!(got.deadline, Some(100.0));
            assert_eq!(got.grid, sub("x").grid);
            assert_eq!(got.workflow_xml, sub("x").workflow_xml);
        }
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn terminal_jobs_are_not_rescanned() {
        let root = tmpdir("terminal");
        for st in backends(&root) {
            write_submission(st.as_ref(), JobId(1), &sub("a")).unwrap();
            write_submission(st.as_ref(), JobId(2), &sub("b")).unwrap();
            write_result(st.as_ref(), JobId(1), "done", "Success").unwrap();
            let scanned = scan(st.as_ref()).unwrap();
            assert_eq!(scanned.jobs.len(), 1);
            assert_eq!(scanned.jobs[0].0, JobId(2));
        }
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn dlq_record_round_trips_on_every_backend() {
        let entries = vec![
            grid_wfs::DlqEntry {
                activity: "map".into(),
                index: 2,
                item: "shard two\nwith a newline".into(),
                attempts: 3,
                reason: "exception:transient".into(),
            },
            grid_wfs::DlqEntry {
                activity: "map".into(),
                index: 5,
                item: "shard five".into(),
                attempts: 1,
                reason: "heartbeat-loss".into(),
            },
        ];
        let root = tmpdir("dlq");
        for st in backends(&root) {
            // Absent record reads as an empty queue.
            assert_eq!(read_dlq(st.as_ref(), JobId(4)).unwrap(), vec![]);
            st.put(&dlq_name(JobId(4)), &dlq_payload(&entries)).unwrap();
            assert_eq!(read_dlq(st.as_ref(), JobId(4)).unwrap(), entries);
            // Admitting a fresh submission under the id clears the stale
            // record in the same commit.
            write_submission(st.as_ref(), JobId(4), &sub("fresh")).unwrap();
            assert_eq!(read_dlq(st.as_ref(), JobId(4)).unwrap(), vec![]);
        }
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn dlq_parser_rejects_garbage() {
        assert!(parse_dlq("activity orphaned\n").is_err());
        assert!(parse_dlq("entry not-a-number\n").is_err());
        assert!(parse_dlq("entry 1\nattempts many\n").is_err());
        // Unknown keys are skipped for forward compatibility.
        let got = parse_dlq("entry 0\nfuture field\nattempts 2\n").unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].attempts, 2);
    }

    #[test]
    fn removed_submission_disappears() {
        let root = tmpdir("remove");
        for st in backends(&root) {
            write_submission(st.as_ref(), JobId(7), &sub("a")).unwrap();
            remove_submission(st.as_ref(), JobId(7)).unwrap();
            assert!(scan(st.as_ref()).unwrap().jobs.is_empty());
        }
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn labels_with_newlines_cannot_inject_meta_lines() {
        let root = tmpdir("newline");
        let label = "evil\nhost h9 1.0\r";
        for st in backends(&root) {
            write_submission(st.as_ref(), JobId(1), &sub(label)).unwrap();
            let scanned = scan(st.as_ref()).unwrap();
            assert_eq!(scanned.jobs.len(), 1);
            assert_eq!(scanned.jobs[0].1.name, label, "label round-trips verbatim");
            assert_eq!(scanned.jobs[0].1.grid, sub("x").grid, "no host injected");
        }
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn labels_with_backslashes_round_trip() {
        let root = tmpdir("backslash");
        let label = "a\\nb \\ trailing\\";
        for st in backends(&root) {
            write_submission(st.as_ref(), JobId(1), &sub(label)).unwrap();
            assert_eq!(scan(st.as_ref()).unwrap().jobs[0].1.name, label);
        }
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_meta_is_quarantined_not_fatal() {
        let root = tmpdir("quarantine");
        for st in backends(&root) {
            write_submission(st.as_ref(), JobId(1), &sub("good")).unwrap();
            st.put(&meta_name(JobId(2)), b"frobnicate\n").unwrap();
            let scanned = scan(st.as_ref()).unwrap();
            assert_eq!(scanned.jobs.len(), 1, "the good job still recovers");
            assert_eq!(scanned.jobs[0].0, JobId(1));
            assert_eq!(scanned.quarantined, 1);
            assert!(!st.exists(&meta_name(JobId(2))), "bad meta moved aside");
            assert!(st.exists("job-2.meta.quarantined"));
            // Later scans stay clean and the id stays burned.
            let again = scan(st.as_ref()).unwrap();
            assert_eq!(again.jobs.len(), 1);
            assert_eq!(again.quarantined, 0);
            assert_eq!(max_job_id(st.as_ref()).unwrap(), 2);
        }
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn max_job_id_counts_terminal_jobs() {
        let root = tmpdir("maxid");
        for st in backends(&root) {
            assert_eq!(max_job_id(st.as_ref()).unwrap(), 0);
            write_submission(st.as_ref(), JobId(3), &sub("a")).unwrap();
            write_result(st.as_ref(), JobId(3), "done", "Success").unwrap();
            write_submission(st.as_ref(), JobId(2), &sub("b")).unwrap();
            // Job 3 is terminal — scan skips it — but its id stays burned.
            assert_eq!(scan(st.as_ref()).unwrap().jobs.len(), 1);
            assert_eq!(max_job_id(st.as_ref()).unwrap(), 3);
        }
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn tmp_staging_leftovers_burn_ids_but_do_not_scan() {
        let dir = tmpdir("tmpleft");
        // A crash between tmp-write and rename leaves exactly this — a
        // DirStorage-only artifact (the WAL has no per-record tmp files).
        fs::write(dir.join("job-9.meta.tmp"), "name half-written").unwrap();
        let st = dir_storage(&dir);
        assert!(scan(&st).unwrap().jobs.is_empty(), "no meta, no job");
        assert_eq!(max_job_id(&st).unwrap(), 9, "but the id is burned");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reassigned_id_does_not_inherit_stale_state() {
        let root = tmpdir("stale");
        for st in backends(&root) {
            write_result(st.as_ref(), JobId(4), "done", "Success").unwrap();
            st.put(&checkpoint_name(JobId(4)), b"<EngineCheckpoint/>")
                .unwrap();
            write_elapsed(st.as_ref(), JobId(4), 9.0).unwrap();
            write_submission(st.as_ref(), JobId(4), &sub("fresh")).unwrap();
            assert!(!st.exists(&result_name(JobId(4))));
            assert!(!st.exists(&checkpoint_name(JobId(4))));
            assert_eq!(read_elapsed(st.as_ref(), JobId(4)), 0.0);
            assert_eq!(scan(st.as_ref()).unwrap().jobs.len(), 1);
        }
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn incarnation_count_reads_the_top_level_kind_only() {
        let dir = tmpdir("incarnations");
        let path = dir.join("job-1.trace.jsonl");
        // Two genuine incarnations, plus three lines that only *contain*
        // the job_start needle: an event whose string value embeds it
        // verbatim (foreign tooling appends to these journals — nothing
        // guarantees escaped quotes), a line where `kind` is not the
        // second field, and a truncated torn write.  Substring counting
        // reports 5 and the resumed incarnation numbering diverges from
        // the journal forever after.
        let journal = concat!(
            "{\"at\":0,\"kind\":\"job_start\",\"job\":1,\"incarnation\":0}\n",
            "{\"at\":1,\"kind\":\"node_state\",\"activity\":\"a \\\"kind\\\":\\\"job_start\\\" b\",\"state\":\"running\"}\n",
            "{\"at\":2,\"kind\":\"node_state\",\"activity\":\"raw \"kind\":\"job_start\" bytes\",\"state\":\"done\"}\n",
            "{\"at\":3,\"nested\":{\"kind\":\"job_start\"},\"kind\":\"custom\"}\n",
            "{\"at\":4,\"kind\":\"job_start\",\"job\":1,\"incarnation\":1}\n",
            "{\"at\":5,\"kind\":\"job_sta", // torn tail, no newline
        );
        fs::write(&path, journal).unwrap();
        assert_eq!(count_incarnations(&path), 2);
        assert_eq!(count_incarnations(&dir.join("missing.jsonl")), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lease_record_round_trips_on_every_backend() {
        let root = tmpdir("lease");
        let lease = Lease {
            owner: "replica a\\with \n oddities".into(),
            epoch: 7,
            expires_at: 1234.5,
        };
        for st in backends(&root) {
            assert_eq!(read_lease(st.as_ref(), JobId(3)).unwrap(), None);
            st.put(&lease_name(JobId(3)), &lease.payload()).unwrap();
            assert_eq!(
                read_lease(st.as_ref(), JobId(3)).unwrap(),
                Some(lease.clone())
            );
            // The payload starts with the fencing line a guarded batch
            // checks — stable across renewals of the same epoch.
            assert!(lease
                .payload()
                .starts_with(&Lease::fence_prefix(&lease.owner, 7)));
            assert!(!lease
                .payload()
                .starts_with(&Lease::fence_prefix(&lease.owner, 8)));
            // Scan surfaces it; a fresh admission under the id clears it.
            write_submission(st.as_ref(), JobId(3), &sub("fresh")).unwrap();
            assert_eq!(read_lease(st.as_ref(), JobId(3)).unwrap(), None);
            remove_submission(st.as_ref(), JobId(3)).unwrap();
        }
        assert!(lease.expired(1234.5));
        assert!(!lease.expired(1234.4));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn scan_returns_valid_leases_for_live_jobs() {
        let root = tmpdir("lease-scan");
        let lease = Lease {
            owner: "r1".into(),
            epoch: 2,
            expires_at: 50.0,
        };
        for st in backends(&root) {
            write_submission(st.as_ref(), JobId(1), &sub("a")).unwrap();
            st.put(&lease_name(JobId(1)), &lease.payload()).unwrap();
            let scanned = scan(st.as_ref()).unwrap();
            assert_eq!(scanned.jobs.len(), 1);
            assert_eq!(scanned.leases.get(&1), Some(&lease));
            assert_eq!(scanned.quarantined, 0);
        }
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_lease_is_quarantined_not_fatal() {
        let root = tmpdir("lease-corrupt");
        for st in backends(&root) {
            write_submission(st.as_ref(), JobId(1), &sub("good")).unwrap();
            st.put(&lease_name(JobId(1)), b"owner r1 ep").unwrap();
            let scanned = scan(st.as_ref()).unwrap();
            assert_eq!(scanned.jobs.len(), 1, "the job itself still recovers");
            assert_eq!(scanned.quarantined, 1);
            assert!(scanned.leases.is_empty());
            assert!(!st.exists(&lease_name(JobId(1))), "bad lease moved aside");
            assert!(st.exists("job-1.lease.quarantined"));
            // Later scans stay clean.
            assert_eq!(scan(st.as_ref()).unwrap().quarantined, 0);
        }
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn lease_parser_rejects_garbage() {
        assert!(Lease::parse("").is_err());
        assert!(Lease::parse("owner r1\nexpires 1\n").is_err(), "no epoch");
        assert!(Lease::parse("owner r1 epoch x\nexpires 1\n").is_err());
        assert!(Lease::parse("owner r1 epoch 1\n").is_err(), "no expires");
        assert!(Lease::parse("owner r1 epoch 1\nexpires soon\n").is_err());
        // An owner containing the literal " epoch " still round-trips.
        let tricky = Lease {
            owner: "r epoch 9".into(),
            epoch: 3,
            expires_at: 1.0,
        };
        let text = String::from_utf8(tricky.payload()).unwrap();
        assert_eq!(Lease::parse(&text).unwrap(), tricky);
    }

    #[test]
    fn max_job_id_counts_lease_records() {
        // A lease can be the *only* record a job id has left behind
        // mid-takeover (admission batch torn after the lease landed on a
        // faulting backend).  Takeover must never re-mint a live job's id.
        let root = tmpdir("lease-maxid");
        for st in backends(&root) {
            st.put(
                &lease_name(JobId(7)),
                &Lease {
                    owner: "r1".into(),
                    epoch: 1,
                    expires_at: 5.0,
                }
                .payload(),
            )
            .unwrap();
            assert_eq!(max_job_id(st.as_ref()).unwrap(), 7);
            assert!(
                scan(st.as_ref()).unwrap().jobs.is_empty(),
                "no meta, no job"
            );
        }
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn elapsed_ledger_round_trips_and_clears() {
        let root = tmpdir("elapsed");
        for st in backends(&root) {
            assert_eq!(read_elapsed(st.as_ref(), JobId(5)), 0.0);
            write_elapsed(st.as_ref(), JobId(5), 12.5).unwrap();
            assert_eq!(read_elapsed(st.as_ref(), JobId(5)), 12.5);
            remove_submission(st.as_ref(), JobId(5)).unwrap();
            assert_eq!(read_elapsed(st.as_ref(), JobId(5)), 0.0);
        }
        fs::remove_dir_all(&root).ok();
    }
}
