//! State-directory persistence and crash recovery.
//!
//! An admitted job leaves three kinds of files in the service's state
//! directory:
//!
//! * `job-<id>.wf.xml`   — the submitted WPDL document;
//! * `job-<id>.meta`     — label, seed, deadline, and the Grid manifest
//!   ([`GridSpec::to_manifest`]);
//! * `job-<id>.ckpt.xml` — the engine checkpoint, rewritten after every
//!   task settlement while the job runs;
//! * `job-<id>.result`   — the terminal marker, written exactly once.
//!
//! A restarted service re-admits every job that has a meta file but no
//! result marker.  If a checkpoint exists the worker resumes the engine
//! from it ([`grid_wfs::checkpoint::load`]) instead of starting the
//! workflow from scratch — the paper's §7 engine fault tolerance, lifted
//! to the service level.
//!
//! Two more files keep restarts honest:
//!
//! * `job-<id>.elapsed` — executor-clock seconds the job has already
//!   consumed in earlier incarnations, so a resumed job's deadline is the
//!   *remaining* budget, not a fresh one.  It is updated whenever an
//!   aborted engine is requeued; time spent in an incarnation that died
//!   without a clean abort (kill -9) is forfeited from the ledger.
//! * id allocation scans **every** `job-<id>.*` file ([`max_job_id`]),
//!   terminal or not, so a restarted service never reuses the id — and
//!   thereby the checkpoint or result marker — of a finished job.
//!
//! All I/O goes through the [`StateFs`] seam (production: `RealFs`;
//! chaos tests: `ChaosFs`), and every mutation of a state file is a
//! [`write_atomic`] — tmp file, `sync_all`, rename, parent-dir fsync —
//! so a crash at any point leaves either the complete old version or the
//! complete new version of a file, never a torn one.  Leftover `*.tmp`
//! staging files are ignored by [`scan`] but still burn their id in
//! [`max_job_id`].
//!
//! Corrupt state-dir entries are quarantined (meta renamed to
//! `job-<id>.meta.quarantined`, warning on stderr) rather than failing
//! the whole startup: one bad job must not take the service down.

use std::fs;
use std::path::{Path, PathBuf};

use gridwfs_chaos::{write_atomic, StateFs};

use crate::gridspec::GridSpec;
use crate::job::{JobId, Submission};

/// Path of the persisted workflow document.
pub fn workflow_path(dir: &Path, id: JobId) -> PathBuf {
    dir.join(format!("{id}.wf.xml"))
}

/// Path of the job metadata manifest.
pub fn meta_path(dir: &Path, id: JobId) -> PathBuf {
    dir.join(format!("{id}.meta"))
}

/// Path of the engine checkpoint.
pub fn checkpoint_path(dir: &Path, id: JobId) -> PathBuf {
    dir.join(format!("{id}.ckpt.xml"))
}

/// Path of the terminal marker.
pub fn result_path(dir: &Path, id: JobId) -> PathBuf {
    dir.join(format!("{id}.result"))
}

/// Path of the consumed-deadline ledger.
pub fn elapsed_path(dir: &Path, id: JobId) -> PathBuf {
    dir.join(format!("{id}.elapsed"))
}

/// Path of the per-job flight-recorder journal (under the service's
/// *trace* directory, which may differ from the state directory).
pub fn trace_path(dir: &Path, id: JobId) -> PathBuf {
    dir.join(format!("{id}.trace.jsonl"))
}

/// 0-based incarnation number the next `job_start` event in `path` gets:
/// the count of `job_start` lines already in the journal.  A missing or
/// unreadable journal counts as a fresh one.  (Trace journals live outside
/// the state directory and are append-only diagnostics, so they stay on
/// plain `std::fs` rather than the [`StateFs`] seam.)
pub fn count_incarnations(path: &Path) -> u32 {
    fs::read_to_string(path)
        .map(|text| {
            text.lines()
                .filter(|line| line.contains("\"kind\":\"job_start\""))
                .count() as u32
        })
        .unwrap_or(0)
}

/// Executor-clock seconds this job consumed in earlier incarnations
/// (0.0 when no ledger exists or it cannot be read/parsed — forfeiting
/// the ledger only widens the deadline budget, never loses the job).
pub fn read_elapsed(fs: &dyn StateFs, dir: &Path, id: JobId) -> f64 {
    fs.read_to_string(&elapsed_path(dir, id))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0.0)
}

/// Serialized form of the consumed-deadline ledger — one source of truth
/// for the synchronous writer and the scheduler's group-commit batches.
pub fn elapsed_payload(secs: f64) -> Vec<u8> {
    format!("{secs}\n").into_bytes()
}

/// Records the total executor-clock seconds consumed so far.
pub fn write_elapsed(fs: &dyn StateFs, dir: &Path, id: JobId, secs: f64) -> std::io::Result<()> {
    write_atomic(fs, &elapsed_path(dir, id), &elapsed_payload(secs))
}

/// The meta file is line-oriented, so the client-chosen label must not be
/// able to inject lines: escape backslashes and CR/LF on write…
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

/// …and undo it on read.
fn unescape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Persists an admitted submission (workflow + meta).  Any leftover
/// checkpoint, result marker, or elapsed ledger at this id is cleared
/// first: a freshly assigned id must never inherit another job's state.
pub fn write_submission(
    fs: &dyn StateFs,
    dir: &Path,
    id: JobId,
    sub: &Submission,
) -> std::io::Result<()> {
    let _ = fs.remove_file(&checkpoint_path(dir, id));
    let _ = fs.remove_file(&result_path(dir, id));
    let _ = fs.remove_file(&elapsed_path(dir, id));
    write_atomic(fs, &workflow_path(dir, id), sub.workflow_xml.as_bytes())?;
    let mut meta = String::new();
    meta.push_str(&format!("name {}\n", escape_label(&sub.name)));
    meta.push_str(&format!("seed {}\n", sub.seed));
    meta.push_str(&format!(
        "deadline {}\n",
        sub.deadline
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".into())
    ));
    meta.push_str(&sub.grid.to_manifest());
    write_atomic(fs, &meta_path(dir, id), meta.as_bytes())
}

/// Removes the persisted submission (rejected push rollback).
pub fn remove_submission(fs: &dyn StateFs, dir: &Path, id: JobId) {
    let _ = fs.remove_file(&workflow_path(dir, id));
    let _ = fs.remove_file(&meta_path(dir, id));
    let _ = fs.remove_file(&checkpoint_path(dir, id));
    let _ = fs.remove_file(&result_path(dir, id));
    let _ = fs.remove_file(&elapsed_path(dir, id));
}

/// Serialized form of the terminal marker — one source of truth for the
/// synchronous writer and the scheduler's group-commit batches.
pub fn result_payload(state: &str, detail: &str) -> Vec<u8> {
    format!("state {state}\ndetail {detail}\n").into_bytes()
}

/// Writes the terminal marker.
pub fn write_result(
    fs: &dyn StateFs,
    dir: &Path,
    id: JobId,
    state: &str,
    detail: &str,
) -> std::io::Result<()> {
    write_atomic(fs, &result_path(dir, id), &result_payload(state, detail))
}

fn parse_meta(text: &str, wf_xml: String) -> Result<Submission, String> {
    let mut name = None;
    let mut seed = 0u64;
    let mut deadline = None;
    let mut grid_lines = String::new();
    for line in text.lines() {
        let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
        match key {
            "name" => name = Some(unescape_label(rest)),
            "seed" => {
                seed = rest
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad seed '{rest}'"))?
            }
            "deadline" => {
                deadline = if rest.trim() == "-" {
                    None
                } else {
                    Some(
                        rest.trim()
                            .parse()
                            .map_err(|_| format!("bad deadline '{rest}'"))?,
                    )
                }
            }
            _ => {
                grid_lines.push_str(line);
                grid_lines.push('\n');
            }
        }
    }
    Ok(Submission {
        name: name.ok_or("meta file missing 'name'")?,
        workflow_xml: wf_xml,
        grid: GridSpec::from_manifest(&grid_lines)?,
        seed,
        deadline,
    })
}

/// Largest job id any `job-<id>.*` file in the state directory mentions
/// (0 when there is none).  Unlike [`scan`] this counts terminal jobs,
/// quarantined jobs, and even `.tmp` staging leftovers: id allocation must
/// never hand out an id whose checkpoint or result marker is (or was about
/// to be) on disk.
pub fn max_job_id(fs: &dyn StateFs, dir: &Path) -> Result<u64, String> {
    let mut max = 0u64;
    let names = fs
        .read_dir_names(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    for name in names {
        if let Some(rest) = name.strip_prefix("job-") {
            let digits: &str = &rest[..rest.find('.').unwrap_or(rest.len())];
            if let Ok(id) = digits.parse::<u64>() {
                max = max.max(id);
            }
        }
    }
    Ok(max)
}

/// What a state-directory scan found.
#[derive(Debug)]
pub struct Scan {
    /// Jobs to re-admit, ascending by id.
    pub jobs: Vec<(JobId, Submission)>,
    /// Corrupt entries moved aside during this scan.
    pub quarantined: u64,
}

/// Moves a job's meta file aside so later scans skip it, keeping the
/// workflow/checkpoint files around for post-mortem.  A failed rename must
/// not leave the corrupt meta in place (the next restart would trip over
/// it again), so it falls back to copy + remove; if even that fails the
/// paths are named in the warning and the scan still skips the job.
fn quarantine(fs: &dyn StateFs, dir: &Path, id: JobId, why: &str) {
    let meta = meta_path(dir, id);
    let aside = meta.with_extension("meta.quarantined");
    eprintln!("gridwfs-serve: quarantining {id}: {why}");
    if fs.rename(&meta, &aside).is_ok() {
        return;
    }
    let copied = fs
        .read_to_string(&meta)
        .and_then(|text| fs.write_file(&aside, text.as_bytes()))
        .and_then(|()| fs.remove_file(&meta));
    if let Err(e) = copied {
        eprintln!(
            "gridwfs-serve: cannot move {} aside to {}: {e}",
            meta.display(),
            aside.display()
        );
    }
}

/// Scans a state directory for jobs to re-admit: every `job-<id>.meta`
/// without a matching `job-<id>.result`, ascending by id.  Entries that
/// cannot be read or parsed are quarantined with a stderr warning — one
/// corrupt job must not keep the whole service from starting.
pub fn scan(fs: &dyn StateFs, dir: &Path) -> Result<Scan, String> {
    let mut ids: Vec<u64> = Vec::new();
    let names = fs
        .read_dir_names(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    for name in names {
        if let Some(id) = name
            .strip_prefix("job-")
            .and_then(|r| r.strip_suffix(".meta"))
        {
            match id.parse() {
                Ok(id) => ids.push(id),
                Err(_) => eprintln!("gridwfs-serve: ignoring bad job id in '{name}'"),
            }
        }
    }
    ids.sort_unstable();
    let mut out = Scan {
        jobs: Vec::new(),
        quarantined: 0,
    };
    for raw in ids {
        let id = JobId(raw);
        if fs.exists(&result_path(dir, id)) {
            continue; // terminal before the restart
        }
        let meta = match fs.read_to_string(&meta_path(dir, id)) {
            Ok(meta) => meta,
            Err(e) => {
                quarantine(fs, dir, id, &format!("meta unreadable: {e}"));
                out.quarantined += 1;
                continue;
            }
        };
        let wf = match fs.read_to_string(&workflow_path(dir, id)) {
            Ok(wf) => wf,
            Err(e) => {
                quarantine(fs, dir, id, &format!("workflow unreadable: {e}"));
                out.quarantined += 1;
                continue;
            }
        };
        match parse_meta(&meta, wf) {
            Ok(sub) => out.jobs.push((id, sub)),
            Err(e) => {
                quarantine(fs, dir, id, &e);
                out.quarantined += 1;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwfs_chaos::RealFs;

    const FS: RealFs = RealFs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gridwfs-serve-recover-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sub(name: &str) -> Submission {
        Submission {
            name: name.into(),
            workflow_xml: "<Workflow name='w'/>".into(),
            grid: GridSpec::virtual_grid().with_host("h1", 1.0),
            seed: 9,
            deadline: Some(100.0),
        }
    }

    #[test]
    fn submission_round_trips_through_disk() {
        let dir = tmpdir("roundtrip");
        write_submission(&FS, &dir, JobId(3), &sub("alpha beta")).unwrap();
        let scanned = scan(&FS, &dir).unwrap();
        assert_eq!(scanned.quarantined, 0);
        assert_eq!(scanned.jobs.len(), 1);
        let (id, got) = &scanned.jobs[0];
        assert_eq!(*id, JobId(3));
        assert_eq!(got.name, "alpha beta", "labels keep their spaces");
        assert_eq!(got.seed, 9);
        assert_eq!(got.deadline, Some(100.0));
        assert_eq!(got.grid, sub("x").grid);
        assert_eq!(got.workflow_xml, sub("x").workflow_xml);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn terminal_jobs_are_not_rescanned() {
        let dir = tmpdir("terminal");
        write_submission(&FS, &dir, JobId(1), &sub("a")).unwrap();
        write_submission(&FS, &dir, JobId(2), &sub("b")).unwrap();
        write_result(&FS, &dir, JobId(1), "done", "Success").unwrap();
        let scanned = scan(&FS, &dir).unwrap();
        assert_eq!(scanned.jobs.len(), 1);
        assert_eq!(scanned.jobs[0].0, JobId(2));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn removed_submission_disappears() {
        let dir = tmpdir("remove");
        write_submission(&FS, &dir, JobId(7), &sub("a")).unwrap();
        remove_submission(&FS, &dir, JobId(7));
        assert!(scan(&FS, &dir).unwrap().jobs.is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn labels_with_newlines_cannot_inject_meta_lines() {
        let dir = tmpdir("newline");
        let label = "evil\nhost h9 1.0\r";
        write_submission(&FS, &dir, JobId(1), &sub(label)).unwrap();
        let scanned = scan(&FS, &dir).unwrap();
        assert_eq!(scanned.jobs.len(), 1);
        assert_eq!(scanned.jobs[0].1.name, label, "label round-trips verbatim");
        assert_eq!(scanned.jobs[0].1.grid, sub("x").grid, "no host injected");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn labels_with_backslashes_round_trip() {
        let dir = tmpdir("backslash");
        let label = "a\\nb \\ trailing\\";
        write_submission(&FS, &dir, JobId(1), &sub(label)).unwrap();
        assert_eq!(scan(&FS, &dir).unwrap().jobs[0].1.name, label);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_meta_is_quarantined_not_fatal() {
        let dir = tmpdir("quarantine");
        write_submission(&FS, &dir, JobId(1), &sub("good")).unwrap();
        fs::write(dir.join("job-2.meta"), "frobnicate\n").unwrap();
        let scanned = scan(&FS, &dir).unwrap();
        assert_eq!(scanned.jobs.len(), 1, "the good job still recovers");
        assert_eq!(scanned.jobs[0].0, JobId(1));
        assert_eq!(scanned.quarantined, 1);
        assert!(!meta_path(&dir, JobId(2)).exists(), "bad meta moved aside");
        assert!(dir.join("job-2.meta.quarantined").exists());
        // Later scans stay clean and the id stays burned.
        let again = scan(&FS, &dir).unwrap();
        assert_eq!(again.jobs.len(), 1);
        assert_eq!(again.quarantined, 0);
        assert_eq!(max_job_id(&FS, &dir).unwrap(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_falls_back_to_copy_when_rename_fails() {
        /// A filesystem whose renames always fail — the seam the
        /// quarantine fallback exists for (e.g. cross-device link errors).
        struct NoRename;
        impl StateFs for NoRename {
            fn read_to_string(&self, path: &Path) -> std::io::Result<String> {
                RealFs.read_to_string(path)
            }
            fn write_file(&self, path: &Path, data: &[u8]) -> std::io::Result<()> {
                RealFs.write_file(path, data)
            }
            fn rename(&self, _from: &Path, _to: &Path) -> std::io::Result<()> {
                Err(std::io::Error::other("rename refused"))
            }
            fn remove_file(&self, path: &Path) -> std::io::Result<()> {
                RealFs.remove_file(path)
            }
            fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
                RealFs.sync_dir(dir)
            }
            fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
                RealFs.create_dir_all(dir)
            }
            fn read_dir_names(&self, dir: &Path) -> std::io::Result<Vec<String>> {
                RealFs.read_dir_names(dir)
            }
            fn exists(&self, path: &Path) -> bool {
                RealFs.exists(path)
            }
        }
        let dir = tmpdir("quarantine-norename");
        fs::write(dir.join("job-5.meta"), "frobnicate\n").unwrap();
        let scanned = scan(&NoRename, &dir).unwrap();
        assert_eq!(scanned.quarantined, 1);
        assert!(
            !meta_path(&dir, JobId(5)).exists(),
            "copy+remove fallback still moves the corrupt meta aside"
        );
        assert_eq!(
            fs::read_to_string(dir.join("job-5.meta.quarantined")).unwrap(),
            "frobnicate\n"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn max_job_id_counts_terminal_jobs() {
        let dir = tmpdir("maxid");
        assert_eq!(max_job_id(&FS, &dir).unwrap(), 0);
        write_submission(&FS, &dir, JobId(3), &sub("a")).unwrap();
        write_result(&FS, &dir, JobId(3), "done", "Success").unwrap();
        write_submission(&FS, &dir, JobId(2), &sub("b")).unwrap();
        // Job 3 is terminal — scan skips it — but its id stays burned.
        assert_eq!(scan(&FS, &dir).unwrap().jobs.len(), 1);
        assert_eq!(max_job_id(&FS, &dir).unwrap(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tmp_staging_leftovers_burn_ids_but_do_not_scan() {
        let dir = tmpdir("tmpleft");
        // A crash between tmp-write and rename leaves exactly this.
        fs::write(dir.join("job-9.meta.tmp"), "name half-written").unwrap();
        assert!(scan(&FS, &dir).unwrap().jobs.is_empty(), "no meta, no job");
        assert_eq!(max_job_id(&FS, &dir).unwrap(), 9, "but the id is burned");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reassigned_id_does_not_inherit_stale_state() {
        let dir = tmpdir("stale");
        write_result(&FS, &dir, JobId(4), "done", "Success").unwrap();
        fs::write(checkpoint_path(&dir, JobId(4)), "<EngineCheckpoint/>").unwrap();
        write_elapsed(&FS, &dir, JobId(4), 9.0).unwrap();
        write_submission(&FS, &dir, JobId(4), &sub("fresh")).unwrap();
        assert!(!result_path(&dir, JobId(4)).exists());
        assert!(!checkpoint_path(&dir, JobId(4)).exists());
        assert_eq!(read_elapsed(&FS, &dir, JobId(4)), 0.0);
        assert_eq!(scan(&FS, &dir).unwrap().jobs.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn elapsed_ledger_round_trips_and_clears() {
        let dir = tmpdir("elapsed");
        assert_eq!(read_elapsed(&FS, &dir, JobId(5)), 0.0);
        write_elapsed(&FS, &dir, JobId(5), 12.5).unwrap();
        assert_eq!(read_elapsed(&FS, &dir, JobId(5)), 12.5);
        remove_submission(&FS, &dir, JobId(5));
        assert_eq!(read_elapsed(&FS, &dir, JobId(5)), 0.0);
        fs::remove_dir_all(&dir).ok();
    }
}
