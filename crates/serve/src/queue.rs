//! The bounded admission queue.
//!
//! Backpressure is explicit: [`BoundedQueue::try_push`] rejects when the
//! queue is at capacity instead of blocking or silently dropping, so the
//! submission layer can report the rejection to the client (the service's
//! contract: a submission is either admitted and eventually reaches a
//! terminal state, or it is rejected at the door).
//!
//! Built on `Mutex` + `Condvar` rather than a channel because the consumer
//! side is a multi-worker pool (any worker may pop) and the producer side
//! needs a non-blocking capacity check — both awkward to express on the
//! workspace's channel primitives, trivial on a guarded deque.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// At capacity — backpressure; the caller gets the item back.
    Full(T),
    /// The queue was closed (service shutting down).
    Closed(T),
}

/// Result of a timed pop.
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// Timed out with the queue open but empty.
    Empty,
    /// The queue is closed and fully drained — the consumer should exit.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A multi-producer multi-consumer FIFO with a hard capacity.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue admitting at most `capacity` items at a time.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity,
        }
    }

    /// Admits `item`, or rejects it when at capacity ([`PushError::Full`])
    /// or closed ([`PushError::Closed`]).  Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        g.items.push_back(item);
        drop(g);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Pushes past the capacity limit.  Used only for crash-recovery
    /// re-admission, where refusing previously-accepted work would break
    /// the admission contract; still refuses on a closed queue.
    pub fn force_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return Err(PushError::Closed(item));
        }
        g.items.push_back(item);
        drop(g);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, waiting up to `timeout` for one to
    /// appear.  A closed queue still drains its remaining items (graceful
    /// shutdown); [`Pop::Closed`] only once it is closed *and* empty.
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if let Some(item) = g.items.pop_front() {
                return Pop::Item(item);
            }
            if g.closed {
                return Pop::Closed;
            }
            let (guard, result) = self.nonempty.wait_timeout(g, timeout).unwrap();
            g = guard;
            if result.timed_out() {
                return match g.items.pop_front() {
                    Some(item) => Pop::Item(item),
                    None if g.closed => Pop::Closed,
                    None => Pop::Empty,
                };
            }
        }
    }

    /// Closes the queue: future pushes fail, consumers drain what remains
    /// and then observe [`Pop::Closed`].
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.nonempty.notify_all();
    }

    /// Current depth (the queue-depth gauge).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_then_admits_after_pop() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn force_push_ignores_capacity_but_not_close() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        q.force_push(2).unwrap();
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.force_push(3), Err(PushError::Closed(3)));
    }

    #[test]
    fn closed_queue_drains_then_reports_closed() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert_eq!(q.try_push("b"), Err(PushError::Closed("b")));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item("a"));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Closed);
    }

    #[test]
    fn empty_open_queue_times_out() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Pop::Empty);
    }

    #[test]
    fn cross_thread_handoff() {
        let q = Arc::new(BoundedQueue::new(8));
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                match q2.pop_timeout(Duration::from_millis(50)) {
                    Pop::Item(v) => got.push(v),
                    Pop::Empty => continue,
                    Pop::Closed => break,
                }
            }
            got
        });
        for i in 0..20 {
            loop {
                match q.try_push(i) {
                    Ok(()) => break,
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => panic!("not closed"),
                }
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..20).collect::<Vec<_>>(), "FIFO, nothing lost");
    }
}
