//! The bounded admission queue.
//!
//! Backpressure is explicit: [`BoundedQueue::try_push`] rejects when the
//! queue is at capacity instead of blocking or silently dropping, so the
//! submission layer can report the rejection to the client (the service's
//! contract: a submission is either admitted and eventually reaches a
//! terminal state, or it is rejected at the door).
//!
//! Built on `Mutex` + `Condvar` rather than a channel because the consumer
//! side is a multi-worker pool (any worker may pop) and the producer side
//! needs a non-blocking capacity check — both awkward to express on the
//! workspace's channel primitives, trivial on a guarded deque.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use gridwfs_chaos::{relock, wait_timeout_relock};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// At capacity — backpressure; the caller gets the item back.
    Full(T),
    /// The queue was closed (service shutting down).
    Closed(T),
}

/// Result of a timed pop.
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// Timed out with the queue open but empty.
    Empty,
    /// The queue is closed and fully drained — the consumer should exit.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A multi-producer multi-consumer FIFO with a hard capacity.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue admitting at most `capacity` items at a time.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity,
        }
    }

    /// Admits `item`, or rejects it when at capacity ([`PushError::Full`])
    /// or closed ([`PushError::Closed`]).  Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = relock(&self.inner);
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        g.items.push_back(item);
        drop(g);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Pushes past the capacity limit.  Used only for crash-recovery
    /// re-admission, where refusing previously-accepted work would break
    /// the admission contract; still refuses on a closed queue.
    pub fn force_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = relock(&self.inner);
        if g.closed {
            return Err(PushError::Closed(item));
        }
        g.items.push_back(item);
        drop(g);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, waiting up to `timeout` for one to
    /// appear.  A closed queue still drains its remaining items (graceful
    /// shutdown); [`Pop::Closed`] only once it is closed *and* empty.
    ///
    /// The wait tracks an absolute deadline: a wakeup that finds no item
    /// (another consumer won the race, or the platform woke us spuriously)
    /// sleeps again only for the *remaining* slice, so the total wait is
    /// bounded by `timeout` plus scheduling slack no matter how many
    /// itemless wakeups occur.
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let deadline = std::time::Instant::now().checked_add(timeout);
        let mut g = relock(&self.inner);
        loop {
            if let Some(item) = g.items.pop_front() {
                return Pop::Item(item);
            }
            if g.closed {
                return Pop::Closed;
            }
            // `None` deadline means `timeout` overflowed the clock — wait
            // in day-long slices, which is indistinguishable from forever.
            let remaining = match deadline {
                Some(d) => d.saturating_duration_since(std::time::Instant::now()),
                None => Duration::from_secs(86_400),
            };
            if remaining.is_zero() {
                return Pop::Empty;
            }
            let (guard, _) = wait_timeout_relock(&self.nonempty, g, remaining);
            g = guard;
        }
    }

    /// Closes the queue: future pushes fail, consumers drain what remains
    /// and then observe [`Pop::Closed`].
    pub fn close(&self) {
        relock(&self.inner).closed = true;
        self.nonempty.notify_all();
    }

    /// Current depth (the queue-depth gauge).
    pub fn len(&self) -> usize {
        relock(&self.inner).items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_then_admits_after_pop() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn force_push_ignores_capacity_but_not_close() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        q.force_push(2).unwrap();
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.force_push(3), Err(PushError::Closed(3)));
    }

    #[test]
    fn closed_queue_drains_then_reports_closed() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert_eq!(q.try_push("b"), Err(PushError::Closed("b")));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item("a"));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Closed);
    }

    #[test]
    fn empty_open_queue_times_out() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Pop::Empty);
    }

    #[test]
    fn pop_timeout_overshoot_is_bounded_when_losing_item_races() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::time::Instant;

        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let done = Arc::new(AtomicBool::new(false));
        let timeout = Duration::from_millis(300);

        // Traffic thread: push an item and steal it back *inside one
        // critical section*, notifying in between.  The victim is woken by
        // every notify but can never win the item — the deterministic
        // version of a pool mate always winning the race.  Each itemless
        // wakeup must consume the victim's remaining budget, not re-arm
        // the full timeout.
        let q2 = q.clone();
        let done2 = done.clone();
        let traffic = std::thread::spawn(move || {
            let t0 = Instant::now();
            while !done2.load(Ordering::Relaxed) && t0.elapsed() < Duration::from_secs(5) {
                {
                    let mut g = relock(&q2.inner);
                    g.items.push_back(1);
                    q2.nonempty.notify_one();
                    g.items.pop_front();
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });

        let t0 = Instant::now();
        let result = q.pop_timeout(timeout);
        let elapsed = t0.elapsed();
        done.store(true, Ordering::Relaxed);
        traffic.join().unwrap();
        assert_eq!(result, Pop::Empty, "itemless wakeups must still time out");
        assert!(
            elapsed < Duration::from_millis(700),
            "pop_timeout({timeout:?}) overshot to {elapsed:?}: each wakeup \
             must wait only the remaining slice, not re-arm the full timeout"
        );
        assert!(
            elapsed >= Duration::from_millis(250),
            "timed out implausibly early: {elapsed:?}"
        );
    }

    #[test]
    fn cross_thread_handoff() {
        let q = Arc::new(BoundedQueue::new(8));
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                match q2.pop_timeout(Duration::from_millis(50)) {
                    Pop::Item(v) => got.push(v),
                    Pop::Empty => continue,
                    Pop::Closed => break,
                }
            }
            got
        });
        for i in 0..20 {
            loop {
                match q.try_push(i) {
                    Ok(()) => break,
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => panic!("not closed"),
                }
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..20).collect::<Vec<_>>(), "FIFO, nothing lost");
    }

    #[test]
    fn queue_survives_a_poisoned_mutex() {
        crate::test_support::quiet_expected_panics();
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        q.try_push(1).unwrap();
        let q2 = q.clone();
        let _ = std::thread::spawn(move || {
            let _guard = relock(&q2.inner);
            panic!("chaos: poison the queue mutex");
        })
        .join();
        // Every operation still works on the recovered lock.
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Pop::Item(1));
        q.close();
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Pop::Item(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Pop::Closed);
    }
}
