//! Federated serve: lease-owned job shards with replica takeover.
//!
//! A federated fleet is M in-process services sharing one storage
//! backend.  Each admitted job is *owned* by exactly one replica through
//! an expiring lease record (`job-<id>.lease`: owner id, fencing epoch,
//! expiry) committed in the same group commit as the admission batch.
//! Ownership is the whole protocol:
//!
//! * **Renewal** — a heartbeat thread re-stamps every owned lease's
//!   expiry in one group commit per tick (the fencing line — owner +
//!   epoch — never changes on renewal, so staged preconditions stay
//!   valid across renewals).
//! * **Fencing** — every state batch a replica flushes for a job is
//!   prefixed with [`Op::Check`] on the job's lease carrying the owner's
//!   fencing line.  The storage backend evaluates the precondition
//!   atomically with the commit: a paused old owner that wakes up after
//!   losing its lease has the *whole* batch rejected — it can never
//!   double-settle a job a peer already owns.  This is the PR-5 zombie
//!   epoch discipline, moved down into the storage layer.
//! * **Takeover** — a slower sweep on the same heartbeat thread (once
//!   per TTL, not every renewal tick: the sweep is O(records) while
//!   renewal must land within the TTL, so renewal never queues behind
//!   it) scans for unfinished jobs whose lease has expired (or is
//!   missing/corrupt) and claims them by compare-and-swap: `Check` the
//!   old fencing line (or `CheckAbsent`), `Put` a fresh lease with the
//!   epoch bumped.  Exactly one racing replica wins; the winner drives
//!   the orphan through the ordinary crash-recovery path — checkpoint
//!   resume, elapsed-ledger deadline budget, incarnation-tagged journal
//!   append.  A claim the winner then cannot admit locally is walked
//!   back (lease deleted under its own fence) so any replica's next
//!   sweep retries it, rather than this one renewing a job it will
//!   never run.
//!
//! ## Clock assumptions
//!
//! Lease expiry compares a wall-clock deadline stamped by the owner
//! against the observer's wall clock, so the protocol assumes fleet
//! clocks agree to well within one TTL: configure `lease_ttl` ≫ the
//! expected cross-replica skew (and NTP step size).  Skew or a forward
//! clock step larger than that margin can expire a *live* owner's lease
//! early.  Safety still holds — the epoch-bumped CAS fences the old
//! owner's writes, so the job settles exactly once — but the fleet pays
//! for it with a duplicated execution and a `write_fenced`/cancel on the
//! deposed owner.  A clock before the unix epoch reads as 0 and would
//! make every lease look permanently expired; don't run a fleet there.
//!
//! Lease traffic never reaches the per-job journals except for the two
//! deterministic events (`lease_takeover`, `write_fenced`, both at
//! t=0.0 with job + epoch only): renewals and expiry observations are
//! wall-clock-paced and land in the service ring and the counters, so
//! paired chaos runs still produce byte-identical journals.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, SystemTime};

use gridwfs_chaos::relock;
use gridwfs_storage::{is_fence_conflict, Op};
use gridwfs_trace::{JsonlSink, TraceEvent, TraceKind, TraceSink};

use crate::job::{JobId, JobRecord, JobState};
use crate::metrics::Metrics;
use crate::recover::{self, Lease};
use crate::service::Shared;

/// Wall-clock seconds since the unix epoch: the one clock every replica
/// of a fleet (and every restart of a replica) shares.
pub(crate) fn now_unix() -> f64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

/// Per-replica federation state: which jobs this replica owns (and at
/// which fencing epoch), plus the heartbeat thread's shutdown latch.
pub(crate) struct Federation {
    /// This replica's stable identity (the lease owner string).
    pub(crate) replica: String,
    /// Lease validity window; renewals run every `ttl / 4`.
    pub(crate) ttl: f64,
    /// Jobs this replica currently owns → the fencing epoch its lease
    /// carries.  The source of truth is storage; this mirror is what
    /// lets a flush stage its `Check` ops without re-reading leases.
    owned: Mutex<HashMap<u64, u64>>,
    /// Serializes this replica's lease-affecting commits (flushes,
    /// renewals, claims) so `owned` never disagrees with storage about
    /// the replica's *own* actions — a fence conflict therefore always
    /// means a peer interfered, which is exactly when fencing events
    /// should fire.
    commit: Mutex<()>,
    /// Test/maintenance hook: a paused federation stops renewing and
    /// scanning, so its leases expire on schedule (the zombie drill).
    paused: AtomicBool,
    stop: Mutex<bool>,
    wake: Condvar,
}

impl Federation {
    pub(crate) fn new(replica: String, ttl: Duration) -> Federation {
        Federation {
            replica,
            ttl: ttl.as_secs_f64().max(0.05),
            owned: Mutex::new(HashMap::new()),
            commit: Mutex::new(()),
            paused: AtomicBool::new(false),
            stop: Mutex::new(false),
            wake: Condvar::new(),
        }
    }

    /// A fresh lease payload owned by this replica at `epoch`.
    pub(crate) fn lease_payload(&self, epoch: u64) -> Vec<u8> {
        Lease {
            owner: self.replica.clone(),
            epoch,
            expires_at: now_unix() + self.ttl,
        }
        .payload()
    }

    /// The stable fencing line guarded batches check for.
    fn fence(&self, epoch: u64) -> Vec<u8> {
        Lease::fence_prefix(&self.replica, epoch)
    }

    pub(crate) fn adopt(&self, job: u64, epoch: u64) {
        relock(&self.owned).insert(job, epoch);
    }

    pub(crate) fn disown(&self, job: u64) {
        relock(&self.owned).remove(&job);
    }

    pub(crate) fn owns(&self, job: u64) -> bool {
        relock(&self.owned).contains_key(&job)
    }

    pub(crate) fn set_paused(&self, paused: bool) {
        self.paused.store(paused, Ordering::Relaxed);
    }

    pub(crate) fn request_stop(&self) {
        *relock(&self.stop) = true;
        self.wake.notify_all();
    }

    /// Sleeps the heartbeat interval; true once shutdown was requested.
    fn wait_tick(&self, tick: Duration) -> bool {
        let mut stop = relock(&self.stop);
        if !*stop {
            let (guard, _) = self
                .wake
                .wait_timeout(stop, tick)
                .unwrap_or_else(|e| e.into_inner());
            stop = guard;
        }
        *stop
    }
}

/// Appends a deterministic lease event (takeover / fenced write) to the
/// job's journal, if the service keeps journals.  Always at t=0.0: these
/// mark incarnation boundaries, not engine time.
fn journal_event(shared: &Shared, id: JobId, kind: TraceKind) {
    let Some(dir) = &shared.cfg.trace_dir else {
        return;
    };
    if let Ok(sink) = JsonlSink::append(recover::trace_path(dir, id)) {
        sink.record(&TraceEvent { at: 0.0, kind });
        sink.flush();
    }
}

/// The job has been fenced: a peer holds (or replaced) its lease.  Drop
/// local claims to it — journal the fenced write, bump the counter, stop
/// any running engine, and settle the local record without touching
/// storage (the new owner's records are authoritative).
fn note_fenced(shared: &Shared, fed: &Federation, job: u64, epoch: u64) {
    fed.disown(job);
    Metrics::incr(&shared.metrics.counters.fenced_writes);
    let kind = TraceKind::WriteFenced { job, epoch };
    journal_event(shared, JobId(job), kind.clone());
    shared.trace(kind);
    let mut shard = shared.table.shard(job);
    if let Some(rec) = shard.jobs.get_mut(&job) {
        match rec.state {
            JobState::Queued => {
                rec.cancel_requested = true;
                rec.state = JobState::Cancelled;
                rec.finished_at = Some(shared.now());
                rec.detail = Some("lease lost: job taken over by a peer replica".into());
            }
            JobState::Running => {
                // Abort the engine through the ordinary cancel path; its
                // terminal write will be dropped (no longer owned).
                rec.cancel_requested = true;
                if let Some(stop) = shard.stops.get(&job) {
                    stop.store(true, Ordering::Relaxed);
                }
            }
            _ => {}
        }
    }
}

/// Job id of a state record name (`job-<id>.<kind>`), if it is one.
fn record_job(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("job-")?;
    rest.split('.').next()?.parse().ok()
}

/// The federated replacement for the scheduler's plain group commit:
/// every staged write is grouped by job and prefixed with a `Check` on
/// the job's lease, so the whole tick commits if and only if this
/// replica still owns everything it is writing.  On a fence conflict the
/// batch is split per job and retried, so one lost lease never vetoes
/// the other jobs' progress.
pub(crate) fn flush_fenced(
    shared: &Shared,
    fed: &Federation,
    writes: Vec<(String, Option<Vec<u8>>)>,
) {
    let Some(st) = &shared.storage else {
        return;
    };
    let _commit = relock(&fed.commit);
    // Group by job, preserving staging order inside each group.
    let mut jobs: Vec<(u64, Vec<Op>)> = Vec::new();
    let mut stray: Vec<Op> = Vec::new();
    for (name, data) in writes {
        let op = match data {
            Some(data) => Op::Put(name.clone(), data),
            None => Op::Del(name.clone()),
        };
        match record_job(&name) {
            Some(job) => match jobs.iter_mut().find(|(j, _)| *j == job) {
                Some((_, ops)) => ops.push(op),
                None => jobs.push((job, vec![op])),
            },
            None => stray.push(op),
        }
    }
    if !stray.is_empty() {
        for (name, e) in st.apply(stray) {
            eprintln!("gridwfs-serve: batched state write failed for {name}: {e}");
        }
    }
    // Fast path: one guarded batch for the whole tick.
    let epochs: Vec<Option<u64>> = {
        let owned = relock(&fed.owned);
        jobs.iter()
            .map(|(job, _)| owned.get(job).copied())
            .collect()
    };
    // Jobs with no owned epoch were already fenced: their writes are void.
    let mut guarded: Vec<(u64, u64, Vec<Op>)> = Vec::new();
    for ((job, ops), epoch) in jobs.into_iter().zip(epochs) {
        if let Some(epoch) = epoch {
            guarded.push((job, epoch, ops));
        }
    }
    if guarded.is_empty() {
        return;
    }
    let settled: Vec<u64> = guarded
        .iter()
        .filter(|(job, _, ops)| {
            ops.iter()
                .any(|op| matches!(op, Op::Del(n) if *n == recover::lease_name(JobId(*job))))
        })
        .map(|(job, _, _)| *job)
        .collect();
    let combined: Vec<Op> = guarded
        .iter()
        .flat_map(|(job, epoch, ops)| {
            std::iter::once(Op::Check(
                recover::lease_name(JobId(*job)),
                fed.fence(*epoch),
            ))
            .chain(ops.iter().cloned())
        })
        .collect();
    let errors = st.apply(combined);
    if errors.is_empty() {
        for job in settled {
            fed.disown(job);
        }
        return;
    }
    if !errors.iter().any(|(_, e)| is_fence_conflict(e)) {
        // Preconditions held; these are ordinary storage errors.
        for (name, e) in errors {
            eprintln!("gridwfs-serve: batched state write failed for {name}: {e}");
        }
        for job in settled {
            fed.disown(job);
        }
        return;
    }
    // Some job's lease is gone (a fence conflict rejects the whole
    // combined batch before any mutation).  Retry one job at a time so
    // only the fenced jobs lose their writes.
    for (job, epoch, ops) in guarded {
        let mut batch = vec![Op::Check(recover::lease_name(JobId(job)), fed.fence(epoch))];
        batch.extend(ops);
        let errors = st.apply(batch);
        if errors.iter().any(|(_, e)| is_fence_conflict(e)) {
            note_fenced(shared, fed, job, epoch);
            continue;
        }
        for (name, e) in errors {
            eprintln!("gridwfs-serve: batched state write failed for {name}: {e}");
        }
        if settled.contains(&job) {
            fed.disown(job);
        }
    }
}

/// A fenced direct terminal write (cancel-while-queued and friends):
/// result marker and lease removal in one guarded commit.
pub(crate) fn write_result_fenced(
    shared: &Shared,
    fed: &Federation,
    id: JobId,
    state: &str,
    detail: &str,
) {
    let Some(st) = &shared.storage else {
        return;
    };
    let _commit = relock(&fed.commit);
    let Some(epoch) = relock(&fed.owned).get(&id.0).copied() else {
        return;
    };
    let errors = st.apply(vec![
        Op::Check(recover::lease_name(id), fed.fence(epoch)),
        Op::Put(
            recover::result_name(id),
            recover::result_payload(state, detail),
        ),
        Op::Del(recover::lease_name(id)),
    ]);
    if errors.iter().any(|(_, e)| is_fence_conflict(e)) {
        note_fenced(shared, fed, id.0, epoch);
        return;
    }
    for (name, e) in errors {
        eprintln!("gridwfs-serve: terminal write failed for {name}: {e}");
    }
    fed.disown(id.0);
}

/// Renews every owned lease in one group commit.  A renewal keeps the
/// fencing line (owner + epoch) and only pushes the expiry out, so the
/// `Check` each job's in-flight batches carry stays valid.
fn renew_leases(shared: &Shared, fed: &Federation) {
    let Some(st) = &shared.storage else {
        return;
    };
    let _commit = relock(&fed.commit);
    let snapshot: Vec<(u64, u64)> = relock(&fed.owned)
        .iter()
        .map(|(&job, &epoch)| (job, epoch))
        .collect();
    if snapshot.is_empty() {
        return;
    }
    let ops: Vec<Op> = snapshot
        .iter()
        .flat_map(|&(job, epoch)| {
            let name = recover::lease_name(JobId(job));
            [
                Op::Check(name.clone(), fed.fence(epoch)),
                Op::Put(name, fed.lease_payload(epoch)),
            ]
        })
        .collect();
    let renew_ok = |n: usize| {
        for _ in 0..n {
            Metrics::incr(&shared.metrics.counters.leases_renewed);
        }
    };
    let errors = st.apply(ops);
    if errors.is_empty() {
        renew_ok(snapshot.len());
        return;
    }
    if !errors.iter().any(|(_, e)| is_fence_conflict(e)) {
        return; // storage trouble; the next tick retries
    }
    // At least one lease was claimed by a peer: renew the rest one at a
    // time and fence the losses.
    for (job, epoch) in snapshot {
        let name = recover::lease_name(JobId(job));
        let errors = st.apply(vec![
            Op::Check(name.clone(), fed.fence(epoch)),
            Op::Put(name, fed.lease_payload(epoch)),
        ]);
        if errors.iter().any(|(_, e)| is_fence_conflict(e)) {
            note_fenced(shared, fed, job, epoch);
        } else if errors.is_empty() {
            renew_ok(1);
        }
    }
}

/// Walks back a lease this replica minted but cannot serve: disown the
/// job and delete the lease, guarded by its own fence so only *our*
/// lease is ever removed.  The job is then immediately claimable by any
/// replica's next sweep, instead of this replica renewing a lease for a
/// job it will never run.
fn release_claim(shared: &Shared, fed: &Federation, id: JobId, epoch: u64) {
    fed.disown(id.0);
    let Some(st) = &shared.storage else {
        return;
    };
    let _commit = relock(&fed.commit);
    let name = recover::lease_name(id);
    let _ = st.apply(vec![
        Op::Check(name.clone(), fed.fence(epoch)),
        Op::Del(name),
    ]);
}

/// Tries to claim `id`'s lease with `claim` ops (a CAS: check the old
/// fencing line or absence, put the new lease).  True if this replica
/// won the race.
fn try_claim(
    shared: &Shared,
    fed: &Federation,
    id: JobId,
    prior: Option<&Lease>,
    epoch: u64,
) -> bool {
    let Some(st) = &shared.storage else {
        return false;
    };
    {
        let _commit = relock(&fed.commit);
        let name = recover::lease_name(id);
        let precondition = match prior {
            Some(l) => Op::Check(name.clone(), Lease::fence_prefix(&l.owner, l.epoch)),
            None => Op::CheckAbsent(name.clone()),
        };
        let errors = st.apply(vec![precondition, Op::Put(name, fed.lease_payload(epoch))]);
        if !errors.is_empty() {
            return false; // a peer won, or storage trouble — either way, skip
        }
    }
    // The old owner may have settled the job between our scan and the
    // claim on a backend snapshot where the lease was already gone
    // (CheckAbsent path).  A terminal job must stay terminal: release
    // the lease we just minted and walk away.
    if st.exists(&recover::result_name(id)) {
        release_claim(shared, fed, id, epoch);
        return false;
    }
    fed.adopt(id.0, epoch);
    true
}

/// Admits a claimed orphan into the local table and queue, riding the
/// same re-admission path a restart recovery uses.
fn admit_takeover(
    shared: &Arc<Shared>,
    id: JobId,
    epoch: u64,
    takeover: bool,
) -> Result<(), String> {
    let Some(st) = &shared.storage else {
        return Ok(());
    };
    let sub = recover::load_job(st.as_ref(), id)?;
    // Journal the takeover *before* the job becomes poppable: once it is
    // pushed, a worker may immediately append the next incarnation's
    // `job_start` header, and the journal's event order must not depend
    // on that race.
    if takeover {
        Metrics::incr(&shared.metrics.counters.takeovers);
        let kind = TraceKind::LeaseTakeover { job: id.0, epoch };
        journal_event(shared, id, kind.clone());
        shared.trace(kind);
    }
    let mut record = JobRecord::new(id, sub.name.clone(), shared.now(), true);
    record.recovered = true;
    {
        let mut shard = shared.table.shard(id.0);
        shard.jobs.insert(id.0, record);
        shard.subs.insert(id.0, sub);
    }
    if shared.queue.force_push(id).is_err() {
        // Undo the table insert: a job that can never be popped must not
        // linger as a phantom `Queued` record.
        let mut shard = shared.table.shard(id.0);
        shard.jobs.remove(&id.0);
        shard.subs.remove(&id.0);
        return Err("queue closed during takeover".to_string());
    }
    Metrics::incr(&shared.metrics.counters.recovered);
    Metrics::incr(&shared.metrics.counters.submitted);
    shared.trace(TraceKind::JobRecovered { job: id.0 });
    Ok(())
}

/// One takeover sweep: find unfinished jobs this replica does not own,
/// and claim the ones whose lease is expired, missing, or corrupt.
fn scan_for_takeovers(shared: &Arc<Shared>, fed: &Federation) {
    let Some(st) = &shared.storage else {
        return;
    };
    let Ok(names) = st.list() else {
        return;
    };
    let mut metas: Vec<u64> = Vec::new();
    let mut results: HashSet<u64> = HashSet::new();
    for name in &names {
        if let Some(job) = record_job(name) {
            if name.ends_with(".meta") {
                metas.push(job);
            } else if name.ends_with(".result") {
                results.insert(job);
            }
        }
    }
    metas.sort_unstable();
    let now = now_unix();
    for job in metas {
        if results.contains(&job) || fed.owns(job) {
            continue;
        }
        let id = JobId(job);
        let (prior, epoch) = match recover::read_lease(st.as_ref(), id) {
            Ok(Some(lease)) => {
                if !lease.expired(now) {
                    continue; // a peer is live and owns it
                }
                Metrics::incr(&shared.metrics.counters.lease_expirations);
                shared.trace(TraceKind::LeaseExpired {
                    job,
                    epoch: lease.epoch,
                });
                let epoch = lease.epoch + 1;
                (Some(lease), epoch)
            }
            // A torn admission left a job with no lease at all: first
            // claimer owns it at epoch 1.
            Ok(None) => (None, 1),
            Err(why) => {
                // A corrupt lease must not wedge the fleet.  Move it
                // aside and mint epoch 1: the zombie's staged prefix
                // checks can never match a freshly minted lease.
                recover::quarantine_record(st.as_ref(), &recover::lease_name(id), &why);
                Metrics::incr(&shared.metrics.counters.quarantined);
                (None, 1)
            }
        };
        if try_claim(shared, fed, id, prior.as_ref(), epoch) {
            if let Err(e) = admit_takeover(shared, id, epoch, true) {
                // We hold a lease for a job we could not admit (e.g. a
                // transient read fault loading its records).  Holding on
                // would renew that lease forever while the job never
                // runs anywhere: walk the claim back so the next sweep —
                // ours or a peer's — retries the takeover.
                eprintln!("gridwfs-serve: takeover of {id} failed: {e}");
                release_claim(shared, fed, id, epoch);
            }
        }
    }
}

/// Renewal ticks between takeover sweeps: renewals run every `ttl / 4`,
/// the sweep once per TTL.  Renewal is a group commit over this
/// replica's own leases and *must* land within the TTL; the sweep is
/// `st.list()` plus a lease read per unfinished job — O(total records)
/// — and merely bounds takeover latency (an orphan waits at most one
/// extra sweep period on top of its lease expiry), so it runs on the
/// slower cadence and never starves renewal at large job counts.
const TICKS_PER_SCAN: u32 = 4;

/// The federation heartbeat: renew owned leases every tick and sweep
/// for expired peers every [`TICKS_PER_SCAN`] ticks until shutdown.
/// One thread per live replica.
pub(crate) fn heartbeat_loop(shared: Arc<Shared>) {
    let Some(fed) = shared.federate.clone() else {
        return;
    };
    let tick = Duration::from_secs_f64((fed.ttl / 4.0).max(0.01));
    let mut ticks = 0u32;
    loop {
        if fed.wait_tick(tick) {
            return;
        }
        if fed.paused.load(Ordering::Relaxed) {
            continue;
        }
        renew_leases(&shared, &fed);
        ticks = ticks.wrapping_add(1);
        // A draining replica keeps renewing what it already runs but
        // stops adopting orphans — they are the surviving fleet's work.
        if ticks.is_multiple_of(TICKS_PER_SCAN) && shared.accepting.load(Ordering::Relaxed) {
            scan_for_takeovers(&shared, &fed);
        }
    }
}

/// Federated restart admission: re-admit scanned jobs under the lease
/// discipline instead of unconditionally.  Our own jobs are reclaimed at
/// a bumped epoch (fencing any batch our previous incarnation left in
/// flight); expired peers are taken over; live peers are skipped.
pub(crate) fn admit_scanned(shared: &Arc<Shared>, scanned: recover::Scan) -> Result<(), String> {
    let fed = shared.federate.clone().expect("federated admission");
    let now = now_unix();
    for (id, _sub) in scanned.jobs {
        let (prior, epoch, takeover) = match scanned.leases.get(&id.0) {
            None => (None, 1, false),
            Some(lease) if lease.owner == fed.replica => {
                (Some(lease.clone()), lease.epoch + 1, false)
            }
            Some(lease) if lease.expired(now) => {
                Metrics::incr(&shared.metrics.counters.lease_expirations);
                shared.trace(TraceKind::LeaseExpired {
                    job: id.0,
                    epoch: lease.epoch,
                });
                (Some(lease.clone()), lease.epoch + 1, true)
            }
            Some(_) => continue, // a live peer owns it
        };
        if try_claim(shared, &fed, id, prior.as_ref(), epoch) {
            if let Err(e) = admit_takeover(shared, id, epoch, takeover) {
                // Startup is about to fail: release the claim so the job
                // is immediately up for grabs instead of waiting out a
                // lease nobody will renew.
                release_claim(shared, &fed, id, epoch);
                return Err(e);
            }
        }
    }
    Ok(())
}
