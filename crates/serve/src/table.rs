//! The sharded job table.
//!
//! The service used to keep jobs, submissions, and stop flags in three
//! global `Mutex<HashMap>`s — every submit, cancel, status query, pickup,
//! and settle serialised on one lock.  At M=200 that is invisible; at the
//! 100k-job loadgen scale the jobs lock is the hottest line in the
//! service.  This table shards the maps by `id % SHARDS` with one mutex
//! per shard, so operations on different jobs contend only when they hash
//! to the same shard (1/16th of the time), and full-table snapshots lock
//! one shard at a time instead of stopping the world.
//!
//! Invariant preserved from the single-lock design: a job's record, its
//! submission, and its stop flag live in the *same* shard, so the
//! pickup-time "Queued → Running + register stop flag" transition and the
//! cancel-time "observe Running → find stop flag" lookup are still one
//! critical section each, on the same lock.

use std::collections::HashMap;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex, MutexGuard};

use gridwfs_chaos::relock;

use crate::job::{JobRecord, Submission};

/// Shard count.  Power of two so `id % SHARDS` is a mask; 16 is plenty of
/// spread for the worker counts this service runs with while keeping a
/// full-table sweep (16 short lock acquisitions) cheap.
pub(crate) const SHARDS: usize = 16;

/// One shard: the slice of every per-job map whose ids hash here.
#[derive(Default)]
pub(crate) struct Shard {
    /// Job records (the public status surface).
    pub(crate) jobs: HashMap<u64, JobRecord>,
    /// Submissions (what a worker needs to run the job).
    pub(crate) subs: HashMap<u64, Submission>,
    /// Stop flags of currently-running engines.
    pub(crate) stops: HashMap<u64, Arc<AtomicBool>>,
}

/// All shards.  Lock discipline: never hold two shard locks at once —
/// every cross-shard operation (snapshots, stop-all) iterates one shard
/// at a time.
pub(crate) struct JobTable {
    pub(crate) shards: Vec<Mutex<Shard>>,
}

impl JobTable {
    pub(crate) fn new() -> Self {
        JobTable {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    /// Locks the shard owning `id`.  Poison-tolerant: a worker that
    /// panicked mid-update cannot take the status API down with it.
    pub(crate) fn shard(&self, id: u64) -> MutexGuard<'_, Shard> {
        relock(&self.shards[(id as usize) % SHARDS])
    }

    /// Runs `f` under every shard lock in turn (one at a time).
    pub(crate) fn for_each_shard(&self, mut f: impl FnMut(&mut Shard)) {
        for shard in &self.shards {
            f(&mut relock(shard));
        }
    }

    /// Snapshot of every job record, ascending by id.
    pub(crate) fn all_jobs(&self) -> Vec<JobRecord> {
        let mut all = Vec::new();
        self.for_each_shard(|s| all.extend(s.jobs.values().cloned()));
        all.sort_by_key(|r| r.id);
        all
    }

    /// True when every known job is in a terminal state.  Shard-at-a-time:
    /// exact enough for the polling callers (a job settling concurrently
    /// is indistinguishable from it settling a microsecond later).
    pub(crate) fn all_terminal(&self) -> bool {
        self.shards
            .iter()
            .all(|shard| relock(shard).jobs.values().all(|r| r.state.is_terminal()))
    }

    /// Sets every registered stop flag (hard shutdown).
    pub(crate) fn stop_all(&self) {
        self.for_each_shard(|s| {
            for stop in s.stops.values() {
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, JobState};

    fn record(id: u64) -> JobRecord {
        JobRecord::new(JobId(id), format!("j{id}"), 0.0, false)
    }

    #[test]
    fn ids_route_to_stable_shards_and_snapshots_sort() {
        let table = JobTable::new();
        // Ids chosen to land in several distinct shards, inserted out of
        // order.
        for id in [33, 2, 17, 48, 5, 16] {
            table.shard(id).jobs.insert(id, record(id));
        }
        // Same id, same shard, every time.
        for id in [33, 2, 17, 48, 5, 16] {
            assert!(table.shard(id).jobs.contains_key(&id));
        }
        let all = table.all_jobs();
        let ids: Vec<u64> = all.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![2, 5, 16, 17, 33, 48]);
    }

    #[test]
    fn all_terminal_scans_every_shard() {
        let table = JobTable::new();
        table.shard(1).jobs.insert(1, record(1));
        table.shard(18).jobs.insert(18, record(18));
        assert!(!table.all_terminal());
        table.shard(1).jobs.get_mut(&1).unwrap().state = JobState::Done;
        assert!(!table.all_terminal(), "job 18 still queued");
        table.shard(18).jobs.get_mut(&18).unwrap().state = JobState::Failed;
        assert!(table.all_terminal());
    }

    #[test]
    fn stop_all_reaches_flags_in_every_shard() {
        use std::sync::atomic::Ordering;
        let table = JobTable::new();
        let a = Arc::new(AtomicBool::new(false));
        let b = Arc::new(AtomicBool::new(false));
        table.shard(3).stops.insert(3, a.clone());
        table.shard(19).stops.insert(19, b.clone());
        table.stop_all();
        assert!(a.load(Ordering::Relaxed));
        assert!(b.load(Ordering::Relaxed));
    }

    #[test]
    fn a_poisoned_shard_recovers() {
        crate::test_support::quiet_expected_panics();
        let table = Arc::new(JobTable::new());
        table.shard(7).jobs.insert(7, record(7));
        let t2 = table.clone();
        let _ = std::thread::spawn(move || {
            let _guard = t2.shard(7);
            panic!("chaos: poison shard 7");
        })
        .join();
        // The shard's data is still served through the recovered lock.
        assert!(table.shard(7).jobs.contains_key(&7));
        assert_eq!(table.all_jobs().len(), 1);
    }
}
