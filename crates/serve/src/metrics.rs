//! The service metrics registry.
//!
//! Counters are monotonic over the service's lifetime; gauges are sampled
//! at snapshot time; the latency histogram is a fixed-memory log-bucketed
//! sketch ([`LatencyHisto`]): lock-free to record into from every
//! scheduler thread at once, a few KiB however many jobs pass through,
//! exact count/mean/min/max, and percentiles within one bucket's
//! resolution (±3.5%).  The old `Mutex<Vec<f64>>` kept every sample —
//! unbounded memory and a lock on the settle path, both of which the
//! 100k-job loadgen runs straight into.
//!
//! [`Metrics::snapshot_json`] renders the whole registry as a JSON
//! document — the machine-readable face of the service (`gridwfs serve
//! --metrics`, the load generator, the CI smoke job).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gridwfs_chaos::relock;
use gridwfs_trace::{TaskOutcome, TraceEvent, TraceKind, TraceSink};

use crate::json::{json_number, json_string};

/// Monotonic event counters.
#[derive(Debug, Default)]
pub struct Counters {
    /// Submissions accepted into the queue (includes re-admissions).
    pub submitted: AtomicU64,
    /// Submissions rejected at the door (queue full / shutting down).
    pub rejected: AtomicU64,
    /// Jobs that reached `Done`.
    pub completed: AtomicU64,
    /// Jobs that reached `Failed` (including deadline expiry).
    pub failed: AtomicU64,
    /// Jobs that reached `Cancelled`.
    pub cancelled: AtomicU64,
    /// `Failed` jobs whose failure was deadline expiry.
    pub deadline_exceeded: AtomicU64,
    /// Jobs re-admitted from a state directory at service start.
    pub recovered: AtomicU64,
    /// Task-level retries scheduled by any engine (derived from the
    /// trace stream by [`TraceMetricsSink`]).
    pub task_retries: AtomicU64,
    /// Task attempts presumed dead by heartbeat loss (derived from the
    /// trace stream by [`TraceMetricsSink`]).
    pub tasks_presumed_dead: AtomicU64,
    /// Presumed-dead attempts that later produced post-mortem evidence —
    /// a zombie completion or a late heartbeat — proving the suspicion
    /// false.  Counted once per attempt (derived from the trace stream by
    /// [`TraceMetricsSink`]).
    pub false_suspicions: AtomicU64,
    /// Completion-class messages (`Done` / `Exception`) that arrived from
    /// attempts already presumed dead and were discarded by fencing
    /// (derived from the trace stream by [`TraceMetricsSink`]).
    pub zombie_completions: AtomicU64,
    /// `foreach` items settled to a terminal state other than the
    /// dead-letter queue (derived from the trace stream by
    /// [`TraceMetricsSink`]).
    pub items_settled: AtomicU64,
    /// `foreach` items parked in a job's dead-letter queue after
    /// exhausting their recovery budget (derived from the trace stream
    /// by [`TraceMetricsSink`]).
    pub items_dead_lettered: AtomicU64,
    /// Previously dead-lettered items re-run after a `dlq retry`
    /// (derived from the trace stream by [`TraceMetricsSink`]).
    pub items_reprocessed: AtomicU64,
    /// Workflow closures that panicked inside a worker (the worker
    /// survived; the job settled as `Failed`).
    pub jobs_panicked: AtomicU64,
    /// Corrupt state-dir entries moved aside by recovery scans.
    pub quarantined: AtomicU64,
    /// Successful lease heartbeat renewals by this replica (federated
    /// serve only; derived from the trace stream by [`TraceMetricsSink`]).
    pub leases_renewed: AtomicU64,
    /// Expired peer leases this replica claimed, driving the orphaned job
    /// through the recovery path (derived from the trace stream).
    pub takeovers: AtomicU64,
    /// Storage batches rejected by lease fencing — a zombie owner tried
    /// to write a job it no longer leases (derived from the trace stream).
    pub fenced_writes: AtomicU64,
    /// Expired leases observed by the takeover scanner before claiming
    /// (derived from the trace stream by [`TraceMetricsSink`]).
    pub lease_expirations: AtomicU64,
    /// Live attempts pre-emptively moved off a suspected host by the
    /// resilient scheduler (derived from the trace stream by
    /// [`TraceMetricsSink`]).
    pub rereplications: AtomicU64,
    /// Retry placements the scorer routed away from the oblivious cycling
    /// choice (derived from the trace stream by [`TraceMetricsSink`]).
    pub steered_retries: AtomicU64,
    /// Per-host checkpoint-interval adaptations journalled by the
    /// resilient scheduler (derived from the trace stream).
    pub adaptive_ckpt_updates: AtomicU64,
}

/// The registry: counters + the running-jobs gauge + the latency sketch.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Event counters.
    pub counters: Counters,
    /// Jobs currently held by a worker (gauge).
    pub running: AtomicU64,
    latency: LatencyHisto,
}

/// Smallest resolvable latency; everything at or below lands in bucket 0.
const HISTO_FLOOR: f64 = 1e-4;
/// Geometric bucket width: each bucket's upper edge is 7% above the last,
/// bounding the percentile error at half a bucket (±3.5%).
const HISTO_GROWTH: f64 = 1.07;
/// Covers `(HISTO_FLOOR, HISTO_FLOOR * GROWTH^273]` ≈ 1e-4 s .. 1.1e4 s;
/// the top bucket absorbs anything larger.
const HISTO_BUCKETS: usize = 274;

/// Lock-free log-bucketed latency histogram.
///
/// Writes are one relaxed `fetch_add` per sample plus CAS loops for the
/// float accumulators — no lock on the settle path, and the footprint is
/// `HISTO_BUCKETS` words no matter how many samples arrive.  Count, mean,
/// min, and max are exact; percentiles are read from the bucket midpoints
/// (geometric), clamped into `[min, max]` so a one-sample histogram
/// reports that sample, not its bucket's midpoint.
#[derive(Debug)]
pub struct LatencyHisto {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    /// `f64` bit patterns maintained by CAS — plain atomic adds would
    /// need `AtomicF64`, which std does not have.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for LatencyHisto {
    fn default() -> Self {
        LatencyHisto {
            counts: (0..HISTO_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

fn bucket_index(v: f64) -> usize {
    if v <= HISTO_FLOOR {
        return 0;
    }
    let i = ((v / HISTO_FLOOR).ln() / HISTO_GROWTH.ln()).floor() as usize + 1;
    i.min(HISTO_BUCKETS - 1)
}

/// Representative value reported for bucket `i`: its geometric midpoint.
fn bucket_mid(i: usize) -> f64 {
    if i == 0 {
        HISTO_FLOOR
    } else {
        HISTO_FLOOR * HISTO_GROWTH.powf(i as f64 - 0.5)
    }
}

/// CAS-update a float cell with `op` (add, min, max).
fn update_f64(cell: &AtomicU64, op: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = op(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl LatencyHisto {
    fn observe(&self, v: f64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        update_f64(&self.sum_bits, |s| s + v);
        update_f64(&self.min_bits, |m| m.min(v));
        update_f64(&self.max_bits, |m| m.max(v));
    }

    /// Nearest-rank percentile walk over the buckets.  A racing `observe`
    /// can make the rank run past the bucket counts; the walk then falls
    /// back to `max`, which is where the freshest sample class lives.
    fn value_at_rank(&self, rank: u64, min: f64, max: f64) -> f64 {
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            if cum > rank {
                return bucket_mid(i).clamp(min, max);
            }
        }
        max
    }

    fn summary(&self) -> LatencySummary {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return LatencySummary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        let rank = |q: f64| ((count - 1) as f64 * q).round() as u64;
        LatencySummary {
            count: count as usize,
            mean: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)) / count as f64,
            min,
            p50: self.value_at_rank(rank(0.50), min, max),
            p90: self.value_at_rank(rank(0.90), min, max),
            p99: self.value_at_rank(rank(0.99), min, max),
            max,
        }
    }
}

/// Summary of the latency samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Medians and tails.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

/// Nearest-rank percentile of an ascending-sorted slice.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Bumps a counter by one.
    pub(crate) fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one admission-to-terminal latency sample (seconds).
    /// Lock-free; safe to call from every scheduler thread at once.
    pub fn observe_latency(&self, seconds: f64) {
        self.latency.observe(seconds);
    }

    /// Summarises the latency histogram so far: exact count/mean/min/max,
    /// percentiles within one bucket's resolution.
    pub fn latency_summary(&self) -> LatencySummary {
        self.latency.summary()
    }

    /// Renders the registry as JSON.  `queue_depth` is sampled by the
    /// caller (the queue lives next to the registry, not inside it).
    pub fn snapshot_json(&self, queue_depth: usize) -> String {
        self.snapshot_json_with_storage(queue_depth, None)
    }

    /// Renders the registry as JSON with an optional `storage` section —
    /// the backend label plus the [`gridwfs_storage::Storage::counters`]
    /// snapshot the service samples at the same instant as the gauges.
    /// Schema 1 is the storage-less document; schema 2 adds the section.
    pub fn snapshot_json_with_storage(
        &self,
        queue_depth: usize,
        storage: Option<(&'static str, gridwfs_storage::CountersSnapshot)>,
    ) -> String {
        let c = &self.counters;
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let l = self.latency_summary();
        let mut out = String::from("{\n");
        let schema = if storage.is_some() { 2 } else { 1 };
        out.push_str(&format!("  \"schema\": {schema},\n"));
        out.push_str("  \"counters\": {\n");
        let counters = [
            ("submitted", get(&c.submitted)),
            ("rejected", get(&c.rejected)),
            ("completed", get(&c.completed)),
            ("failed", get(&c.failed)),
            ("cancelled", get(&c.cancelled)),
            ("deadline_exceeded", get(&c.deadline_exceeded)),
            ("recovered", get(&c.recovered)),
            ("task_retries", get(&c.task_retries)),
            ("tasks_presumed_dead", get(&c.tasks_presumed_dead)),
            ("false_suspicions", get(&c.false_suspicions)),
            ("zombie_completions", get(&c.zombie_completions)),
            ("items_settled", get(&c.items_settled)),
            ("items_dead_lettered", get(&c.items_dead_lettered)),
            ("items_reprocessed", get(&c.items_reprocessed)),
            ("jobs_panicked", get(&c.jobs_panicked)),
            ("quarantined", get(&c.quarantined)),
            ("leases_renewed", get(&c.leases_renewed)),
            ("takeovers", get(&c.takeovers)),
            ("fenced_writes", get(&c.fenced_writes)),
            ("lease_expirations", get(&c.lease_expirations)),
            ("rereplications", get(&c.rereplications)),
            ("steered_retries", get(&c.steered_retries)),
            ("adaptive_ckpt_updates", get(&c.adaptive_ckpt_updates)),
        ];
        for (i, (name, v)) in counters.iter().enumerate() {
            let comma = if i + 1 < counters.len() { "," } else { "" };
            out.push_str(&format!("    {}: {v}{comma}\n", json_string(name)));
        }
        out.push_str("  },\n");
        out.push_str("  \"gauges\": {\n");
        out.push_str(&format!("    \"queue_depth\": {queue_depth},\n"));
        out.push_str(&format!(
            "    \"running\": {}\n",
            self.running.load(Ordering::Relaxed)
        ));
        out.push_str("  },\n");
        if let Some((backend, s)) = storage {
            out.push_str("  \"storage\": {\n");
            out.push_str(&format!("    \"backend\": {},\n", json_string(backend)));
            let fields = [
                ("wal_appends", s.wal_appends),
                ("group_commits", s.group_commits),
                ("compactions", s.compactions),
                ("bytes_logged", s.bytes_logged),
                ("recovery_replayed_records", s.recovery_replayed_records),
            ];
            for (i, (name, v)) in fields.iter().enumerate() {
                let comma = if i + 1 < fields.len() { "," } else { "" };
                out.push_str(&format!("    {}: {v}{comma}\n", json_string(name)));
            }
            out.push_str("  },\n");
        }
        out.push_str("  \"latency_seconds\": {\n");
        out.push_str(&format!("    \"count\": {},\n", l.count));
        for (name, v) in [
            ("mean", l.mean),
            ("min", l.min),
            ("p50", l.p50),
            ("p90", l.p90),
            ("p99", l.p99),
        ] {
            out.push_str(&format!("    {}: {},\n", json_string(name), json_number(v)));
        }
        out.push_str(&format!("    \"max\": {}\n", json_number(l.max)));
        out.push_str("  }\n}\n");
        out
    }
}

/// A [`TraceSink`] that turns the engines' flight-recorder stream into
/// service counters: retries scheduled and heartbeat presumptions are
/// recovery activity the per-job records do not surface, and counting
/// them here keeps the registry consistent with the journals by
/// construction — both are views of the same event stream.
pub struct TraceMetricsSink {
    metrics: Arc<Metrics>,
    /// Presumed-dead attempts already counted as false suspicions — a
    /// zombie sends many post-mortem messages (late heartbeats, then a
    /// completion) but proves the suspicion false only once.  Sinks are
    /// created per job, so attempt ids cannot collide across engines.
    refuted: Mutex<std::collections::HashSet<u64>>,
}

impl TraceMetricsSink {
    /// A sink bumping counters in `metrics`.
    pub fn new(metrics: Arc<Metrics>) -> Self {
        TraceMetricsSink {
            metrics,
            refuted: Mutex::new(std::collections::HashSet::new()),
        }
    }

    fn false_suspicion(&self, task: u64) {
        if relock(&self.refuted).insert(task) {
            Metrics::incr(&self.metrics.counters.false_suspicions);
        }
    }
}

impl TraceSink for TraceMetricsSink {
    fn record(&self, event: &TraceEvent) {
        match &event.kind {
            TraceKind::RetryScheduled { .. } => {
                Metrics::incr(&self.metrics.counters.task_retries);
            }
            TraceKind::TaskSettled {
                outcome: TaskOutcome::Crashed,
                reason,
                ..
            } if reason == "heartbeat-loss" => {
                Metrics::incr(&self.metrics.counters.tasks_presumed_dead);
            }
            TraceKind::ZombieCompletion { task, .. } => {
                Metrics::incr(&self.metrics.counters.zombie_completions);
                self.false_suspicion(*task);
            }
            TraceKind::LateHeartbeat { task, .. } => {
                self.false_suspicion(*task);
            }
            TraceKind::ItemSettled { .. } => {
                Metrics::incr(&self.metrics.counters.items_settled);
            }
            TraceKind::ItemDeadLettered { .. } => {
                Metrics::incr(&self.metrics.counters.items_dead_lettered);
            }
            TraceKind::ItemReprocessed { .. } => {
                Metrics::incr(&self.metrics.counters.items_reprocessed);
            }
            TraceKind::LeaseRenewed { .. } => {
                Metrics::incr(&self.metrics.counters.leases_renewed);
            }
            TraceKind::LeaseExpired { .. } => {
                Metrics::incr(&self.metrics.counters.lease_expirations);
            }
            TraceKind::LeaseTakeover { .. } => {
                Metrics::incr(&self.metrics.counters.takeovers);
            }
            TraceKind::WriteFenced { .. } => {
                Metrics::incr(&self.metrics.counters.fenced_writes);
            }
            TraceKind::Rereplicate { .. } => {
                Metrics::incr(&self.metrics.counters.rereplications);
            }
            TraceKind::PlacementScored {
                steered: true,
                attempt,
                ..
            } if *attempt > 1 => {
                Metrics::incr(&self.metrics.counters.steered_retries);
            }
            TraceKind::CkptIntervalAdapted { .. } => {
                Metrics::incr(&self.metrics.counters.adaptive_ckpt_updates);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 0.5), 51.0);
        assert_eq!(percentile(&s, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn snapshot_contains_all_sections() {
        let m = Metrics::new();
        Metrics::incr(&m.counters.submitted);
        Metrics::incr(&m.counters.submitted);
        Metrics::incr(&m.counters.completed);
        m.observe_latency(0.5);
        m.observe_latency(1.5);
        let json = m.snapshot_json(3);
        assert!(json.contains("\"submitted\": 2"), "{json}");
        assert!(json.contains("\"completed\": 1"), "{json}");
        assert!(json.contains("\"queue_depth\": 3"), "{json}");
        assert!(json.contains("\"count\": 2"), "{json}");
        assert!(json.contains("\"mean\": 1"), "{json}");
        // Well-formedness without a JSON parser: balanced braces, no
        // trailing comma before a closer.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(!json.contains(",\n  }"), "{json}");
        assert!(!json.contains(",\n}"), "{json}");
    }

    #[test]
    fn snapshot_with_storage_adds_section_and_bumps_schema() {
        let m = Metrics::new();
        let counters = gridwfs_storage::CountersSnapshot {
            wal_appends: 12,
            group_commits: 3,
            compactions: 1,
            bytes_logged: 4096,
            recovery_replayed_records: 7,
        };
        let json = m.snapshot_json_with_storage(0, Some(("wal", counters)));
        assert!(json.contains("\"schema\": 2"), "{json}");
        assert!(json.contains("\"backend\": \"wal\""), "{json}");
        assert!(json.contains("\"wal_appends\": 12"), "{json}");
        assert!(json.contains("\"group_commits\": 3"), "{json}");
        assert!(json.contains("\"recovery_replayed_records\": 7"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n  }"), "{json}");
        // The storage-less snapshot keeps the original schema.
        assert!(m.snapshot_json(0).contains("\"schema\": 1"));
    }

    #[test]
    fn trace_sink_derives_recovery_counters() {
        let metrics = Arc::new(Metrics::new());
        let sink = TraceMetricsSink::new(metrics.clone());
        let ev = |kind| TraceEvent { at: 1.0, kind };
        sink.record(&ev(TraceKind::RetryScheduled {
            activity: "a".into(),
            slot: 0,
            attempt: 2,
            fire_at: 5.0,
        }));
        sink.record(&ev(TraceKind::TaskSettled {
            activity: "a".into(),
            task: 1,
            outcome: TaskOutcome::Crashed,
            reason: "heartbeat-loss".into(),
        }));
        // A crash that was *reported* (not presumed) must not count.
        sink.record(&ev(TraceKind::TaskSettled {
            activity: "a".into(),
            task: 2,
            outcome: TaskOutcome::Crashed,
            reason: "done-without-task-end".into(),
        }));
        sink.record(&ev(TraceKind::EngineCheckpoint { ok: true }));
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        assert_eq!(get(&metrics.counters.task_retries), 1);
        assert_eq!(get(&metrics.counters.tasks_presumed_dead), 1);
        let json = metrics.snapshot_json(0);
        assert!(json.contains("\"task_retries\": 1"), "{json}");
        assert!(json.contains("\"tasks_presumed_dead\": 1"), "{json}");
    }

    #[test]
    fn trace_sink_derives_foreach_item_counters() {
        let metrics = Arc::new(Metrics::new());
        let sink = TraceMetricsSink::new(metrics.clone());
        let ev = |kind| TraceEvent { at: 1.0, kind };
        for (item, outcome) in [(0, "done"), (1, "skipped"), (2, "cancelled")] {
            sink.record(&ev(TraceKind::ItemSettled {
                activity: "map".into(),
                item,
                outcome: outcome.into(),
                attempts: 1,
            }));
        }
        sink.record(&ev(TraceKind::ItemDeadLettered {
            activity: "map".into(),
            item: 3,
            attempts: 2,
            reason: "crash".into(),
        }));
        sink.record(&ev(TraceKind::ItemReprocessed {
            activity: "map".into(),
            item: 3,
        }));
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        assert_eq!(get(&metrics.counters.items_settled), 3);
        assert_eq!(get(&metrics.counters.items_dead_lettered), 1);
        assert_eq!(get(&metrics.counters.items_reprocessed), 1);
        let json = metrics.snapshot_json(0);
        assert!(json.contains("\"items_settled\": 3"), "{json}");
        assert!(json.contains("\"items_dead_lettered\": 1"), "{json}");
        assert!(json.contains("\"items_reprocessed\": 1"), "{json}");
    }

    #[test]
    fn trace_sink_derives_resilient_scheduling_counters() {
        let metrics = Arc::new(Metrics::new());
        let sink = TraceMetricsSink::new(metrics.clone());
        let ev = |kind| TraceEvent { at: 1.0, kind };
        sink.record(&ev(TraceKind::Rereplicate {
            activity: "a".into(),
            slot: 0,
            from: "h1".into(),
            to: "h2".into(),
            phi: 5.0,
        }));
        // A steered retry counts; an initial placement (attempt 1) and an
        // unsteered retry do not.
        sink.record(&ev(TraceKind::PlacementScored {
            activity: "a".into(),
            slot: 0,
            attempt: 2,
            host: "h2".into(),
            score: 0.5,
            steered: true,
        }));
        sink.record(&ev(TraceKind::PlacementScored {
            activity: "a".into(),
            slot: 0,
            attempt: 1,
            host: "h1".into(),
            score: 0.0,
            steered: true,
        }));
        sink.record(&ev(TraceKind::PlacementScored {
            activity: "a".into(),
            slot: 0,
            attempt: 3,
            host: "h1".into(),
            score: 0.0,
            steered: false,
        }));
        sink.record(&ev(TraceKind::CkptIntervalAdapted {
            host: "h2".into(),
            interval: 6.3,
            mttf: 20.0,
        }));
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        assert_eq!(get(&metrics.counters.rereplications), 1);
        assert_eq!(get(&metrics.counters.steered_retries), 1);
        assert_eq!(get(&metrics.counters.adaptive_ckpt_updates), 1);
        let json = metrics.snapshot_json(0);
        assert!(json.contains("\"rereplications\": 1"), "{json}");
        assert!(json.contains("\"steered_retries\": 1"), "{json}");
        assert!(json.contains("\"adaptive_ckpt_updates\": 1"), "{json}");
    }

    #[test]
    fn false_suspicions_dedupe_per_attempt_but_zombies_count_each() {
        let metrics = Arc::new(Metrics::new());
        let sink = TraceMetricsSink::new(metrics.clone());
        let ev = |kind| TraceEvent { at: 1.0, kind };
        // Attempt 7 sends three late heartbeats then its zombie Done; it
        // refuted its suspicion exactly once.
        for seq in 0..3 {
            sink.record(&ev(TraceKind::LateHeartbeat {
                activity: "a".into(),
                task: 7,
                seq,
            }));
        }
        sink.record(&ev(TraceKind::ZombieCompletion {
            activity: "a".into(),
            task: 7,
            body: "done".into(),
        }));
        // Attempt 9's only evidence is a zombie completion.
        sink.record(&ev(TraceKind::ZombieCompletion {
            activity: "b".into(),
            task: 9,
            body: "exception".into(),
        }));
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        assert_eq!(get(&metrics.counters.false_suspicions), 2);
        assert_eq!(get(&metrics.counters.zombie_completions), 2);
        let json = metrics.snapshot_json(0);
        assert!(json.contains("\"false_suspicions\": 2"), "{json}");
        assert!(json.contains("\"zombie_completions\": 2"), "{json}");
    }

    #[test]
    fn latency_summary_of_empty_registry_is_zero() {
        let m = Metrics::new();
        let l = m.latency_summary();
        assert_eq!(l.count, 0);
        assert_eq!(l.max, 0.0);
    }

    #[test]
    fn histogram_percentiles_track_exact_within_bucket_resolution() {
        let m = Metrics::new();
        // Deterministic spread over four decades (0.5ms .. ~5s), the range
        // real admission-to-terminal latencies live in.
        let mut samples: Vec<f64> = Vec::new();
        let mut z = 1u64;
        for _ in 0..10_000 {
            z = gridwfs_chaos::splitmix64(z);
            let frac = (z >> 11) as f64 / (1u64 << 53) as f64;
            samples.push(5e-4 * 10f64.powf(4.0 * frac));
        }
        for &v in &samples {
            m.observe_latency(v);
        }
        samples.sort_by(f64::total_cmp);
        let l = m.latency_summary();
        assert_eq!(l.count, 10_000);
        assert_eq!(l.min, samples[0], "min is exact");
        assert_eq!(l.max, samples[samples.len() - 1], "max is exact");
        let exact_mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((l.mean / exact_mean - 1.0).abs() < 1e-9, "mean is exact");
        for (got, q) in [(l.p50, 0.50), (l.p90, 0.90), (l.p99, 0.99)] {
            let want = percentile(&samples, q);
            let rel = (got / want - 1.0).abs();
            assert!(
                rel < 0.07,
                "p{} off by {:.1}% (histogram {got}, exact {want})",
                (q * 100.0) as u32,
                rel * 100.0
            );
        }
    }

    #[test]
    fn histogram_memory_is_fixed_and_extremes_clamp() {
        let m = Metrics::new();
        // A million samples is far past any Vec-backed design's comfort
        // zone; the histogram stays at HISTO_BUCKETS words regardless.
        for i in 0..1_000_000u64 {
            m.observe_latency((i % 1000) as f64 * 1e-3);
        }
        m.observe_latency(0.0); // below the floor bucket
        m.observe_latency(1e9); // beyond the top bucket
        let l = m.latency_summary();
        assert_eq!(l.count, 1_000_002);
        assert_eq!(l.min, 0.0);
        assert_eq!(l.max, 1e9);
        assert!(l.p50 > 0.0 && l.p50 <= l.max);
        assert!(l.p99 >= l.p50 && l.p99 <= l.max);
    }

    #[test]
    fn histogram_is_lock_free_across_threads() {
        let m = Arc::new(Metrics::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        m.observe_latency((t * 1000 + i) as f64 * 1e-4);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let l = m.latency_summary();
        assert_eq!(l.count, 4000, "no sample lost to a race");
        assert_eq!(l.min, 0.0);
        assert!(m.snapshot_json(0).contains("\"count\": 4000"));
    }

    #[test]
    fn one_sample_summary_reports_the_sample_not_the_bucket() {
        let m = Metrics::new();
        m.observe_latency(0.0123);
        let l = m.latency_summary();
        assert_eq!(l.min, 0.0123);
        assert_eq!(l.max, 0.0123);
        // The midpoint of 0.0123's bucket is not 0.0123, but clamping to
        // [min, max] collapses every percentile onto the only sample.
        assert_eq!(l.p50, 0.0123);
        assert_eq!(l.p99, 0.0123);
    }
}
