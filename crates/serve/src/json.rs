//! Minimal hand-rolled JSON emission.
//!
//! The service's metrics snapshots and the load generator's summaries are
//! flat, fully-known shapes, so — like the bench crate's `--json` reports —
//! they are rendered by hand instead of pulling the workspace's serde
//! stack into this crate.

/// JSON string literal with the required escaping (quotes, backslash,
/// control characters).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number; non-finite values become `null`.
pub fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_handle_non_finite() {
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(f64::INFINITY), "null");
        assert_eq!(json_number(f64::NAN), "null");
    }
}
