//! The multi-tenant workflow service.
//!
//! [`Service::start`] spawns a pool of worker threads that drain a bounded
//! admission queue and drive one [`grid_wfs::Engine`] instance per job.
//! The service owns:
//!
//! * **admission** — [`Service::submit`] either admits a job (it will
//!   reach a terminal state) or rejects it loudly (queue full / shutting
//!   down); nothing is ever dropped silently;
//! * **per-job fault isolation** — each job gets its own engine, executor
//!   and RNG stream; a failing workflow is just a `Failed` record;
//! * **deadlines & cancellation** — the engine's cooperative stop flag and
//!   executor-clock deadline (`EngineConfig::{stop, deadline}`);
//! * **crash recovery** — with a state directory, admitted jobs persist
//!   their submission and engine checkpoints; a restarted service
//!   re-admits unfinished jobs and their engines resume from checkpoint;
//! * **metrics** — a [`Metrics`] registry snapshot-able as JSON.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gridwfs_chaos::{relock, FaultPlan, RealFs, StateFs};
use gridwfs_storage::{
    is_fence_conflict, Backend, ChaosStorage, DirStorage, MemStorage, Op, Storage, WalStorage,
};
use gridwfs_trace::{JsonlSink, RingSink, TraceEvent, TraceKind, TraceSink};

use crate::job::{JobId, JobRecord, JobState, Submission};
use crate::metrics::Metrics;
use crate::queue::{BoundedQueue, PushError};
use crate::recover;
use crate::sched::SchedState;
use crate::table::JobTable;

/// Capacity of the service-level trace ring (admissions, rejections,
/// recoveries — the events that happen outside any one job's journal).
const SERVICE_RING: usize = 1024;

/// Service tuning knobs.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Worker threads (concurrent engine instances).
    pub workers: usize,
    /// Admission-queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Persistence root for crash recovery; `None` = in-memory only.
    pub state_dir: Option<PathBuf>,
    /// Which storage engine backs the state dir: the group-committed
    /// write-ahead log (the durable default), the per-file directory
    /// layout, or a process-local in-memory table.
    pub backend: Backend,
    /// Pre-built storage override: tests and benches inject a backend
    /// directly (e.g. one shared `MemStorage` across restarts).  When
    /// set, `state_dir`/`backend` only label the configuration — the
    /// override is used as-is (chaos wrapping still applies).
    pub storage: Option<Arc<dyn Storage>>,
    /// Deadline applied to submissions that do not carry their own.
    pub default_deadline: Option<f64>,
    /// Flight-recorder root: every job writes `job-<id>.trace.jsonl`
    /// here; recovered incarnations append to the same journal.  `None`
    /// keeps tracing in-memory only (the service ring).
    pub trace_dir: Option<PathBuf>,
    /// Filesystem the per-file [`DirStorage`] backend goes through (the
    /// other backends manage their own I/O).  Production keeps the
    /// default passthrough; tests can script exact crash points.
    pub fs: Arc<dyn StateFs>,
    /// Fault-injection plan.  `None` (the default) disables chaos
    /// entirely; with a plan, storage is wrapped in [`ChaosStorage`]
    /// (record-level fault injection, identical decisions on every
    /// backend) and workers inject the plan's panics and stalls.
    pub chaos: Option<FaultPlan>,
    /// Engine instances one worker thread multiplexes concurrently.  The
    /// default of 1 reproduces the classic one-job-per-worker behaviour;
    /// raising it lets each worker interleave that many paused engines
    /// (paced jobs spend most of their life waiting, so tens per worker
    /// is cheap — this is the knob behind the loadgen headline).
    pub max_in_flight: usize,
    /// Federated serve: this replica's stable identity.  `Some` turns on
    /// the lease discipline — every job this replica admits or recovers
    /// is owned through an expiring `job-<id>.lease` record, every state
    /// batch is fenced on the lease epoch, and a heartbeat thread renews
    /// owned leases and takes over expired peers.  `None` (the default)
    /// is the classic single-owner service.
    pub replica_id: Option<String>,
    /// Lease validity window for federated serve; a replica silent for
    /// this long loses its jobs to the surviving fleet.
    pub lease_ttl: Duration,
    /// This replica's position in the fleet (`0..fleet_size`); with
    /// `fleet_size`, it strides job-id allocation so replicas sharing a
    /// backend can never mint the same id.
    pub replica_index: usize,
    /// Number of replicas sharing the backend (id-allocation stride).
    pub fleet_size: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            state_dir: None,
            backend: Backend::default(),
            storage: None,
            default_deadline: None,
            trace_dir: None,
            fs: Arc::new(RealFs),
            chaos: None,
            max_in_flight: 1,
            replica_id: None,
            lease_ttl: Duration::from_secs(2),
            replica_index: 0,
            fleet_size: 1,
        }
    }
}

impl std::fmt::Debug for ServiceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("state_dir", &self.state_dir)
            .field("backend", &self.backend)
            .field("default_deadline", &self.default_deadline)
            .field("trace_dir", &self.trace_dir)
            .field("chaos", &self.chaos)
            .field("max_in_flight", &self.max_in_flight)
            .field("replica_id", &self.replica_id)
            .field("lease_ttl", &self.lease_ttl)
            .field("replica_index", &self.replica_index)
            .field("fleet_size", &self.fleet_size)
            .finish_non_exhaustive()
    }
}

/// Why a submission was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Backpressure: the admission queue is at capacity.  Retry later.
    QueueFull,
    /// The service is draining or shut down.
    ShuttingDown,
    /// The submission could not be persisted to the state directory.
    Io(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => f.write_str("admission queue full"),
            SubmitError::ShuttingDown => f.write_str("service is shutting down"),
            SubmitError::Io(e) => write!(f, "state directory: {e}"),
        }
    }
}
impl std::error::Error for SubmitError {}

/// State shared between the service handle and its workers.
pub(crate) struct Shared {
    pub(crate) cfg: ServiceConfig,
    /// The *effective* storage: the configured backend, wrapped in
    /// [`ChaosStorage`] when the chaos plan injects state faults.
    /// `None` = no persistence (no state dir, no override).
    pub(crate) storage: Option<Arc<dyn Storage>>,
    /// The chaos plan workers consult for panic/stall injection.
    pub(crate) chaos: Option<Arc<FaultPlan>>,
    pub(crate) queue: BoundedQueue<JobId>,
    /// The sharded job table: records, submissions, and stop flags keyed
    /// by `id % SHARDS`, one lock per shard.
    pub(crate) table: JobTable,
    /// Work-stealing scheduler state: one run-queue slot per worker.
    pub(crate) sched: SchedState,
    pub(crate) metrics: Arc<Metrics>,
    /// Service-level flight recorder: admissions, rejections, recoveries.
    /// Wall-clock timestamps — the per-job journals carry the
    /// deterministic ones.
    pub(crate) trace_ring: RingSink,
    pub(crate) accepting: AtomicBool,
    /// Hard-shutdown latch: workers drop popped jobs back into `Queued`
    /// (their manifests survive for the next incarnation) instead of
    /// running them.
    pub(crate) aborting: AtomicBool,
    /// Federated-serve state (lease ownership, fencing epochs) when the
    /// config names a replica; `None` is the classic single owner.
    pub(crate) federate: Option<Arc<crate::federate::Federation>>,
    epoch: Instant,
    next_id: AtomicU64,
    /// Job-id allocation stride: 1 standalone, `fleet_size` federated,
    /// so replicas sharing a backend mint disjoint id residues.
    id_stride: u64,
    /// Ids whose submission was rolled back before becoming observable
    /// (queue full / IO error).  Reused by the next submit so the
    /// submission→id mapping — and with it the per-job journal file names
    /// — stays independent of backpressure timing.
    free_ids: Mutex<Vec<u64>>,
}

impl Shared {
    /// Seconds on the service clock.
    pub(crate) fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Records a service-level event in the trace ring at service time.
    pub(crate) fn trace(&self, kind: TraceKind) {
        self.trace_ring.record(&TraceEvent {
            at: self.now(),
            kind,
        });
    }
}

/// A running workflow service.  Dropping the handle aborts the workers
/// (prefer [`Service::drain`] for a graceful stop).
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// The federation heartbeat (lease renewal + takeover scanning);
    /// joined after the workers so leases stay live through a drain.
    federation: Option<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Starts the service: recovers unfinished jobs from the state
    /// directory (if configured), then spawns the worker pool.
    pub fn start(cfg: ServiceConfig) -> Result<Service, String> {
        assert!(cfg.workers > 0, "need at least one worker");
        let chaos = cfg.chaos.clone().map(Arc::new);
        let base: Option<Arc<dyn Storage>> = if let Some(st) = cfg.storage.clone() {
            Some(st)
        } else if let Some(dir) = &cfg.state_dir {
            Some(match cfg.backend {
                Backend::Wal => {
                    Arc::new(WalStorage::open(dir).map_err(|e| format!("{}: {e}", dir.display()))?)
                }
                Backend::Dir => Arc::new(
                    DirStorage::new(cfg.fs.clone(), dir)
                        .map_err(|e| format!("{}: {e}", dir.display()))?,
                ),
                Backend::Memory => Arc::new(MemStorage::new()),
            })
        } else {
            None
        };
        let storage = base.map(|st| match &cfg.chaos {
            Some(plan) if plan.has_fs_faults() => {
                Arc::new(ChaosStorage::new(st, plan.clone())) as Arc<dyn Storage>
            }
            _ => st,
        });
        let federate = cfg
            .replica_id
            .clone()
            .map(|r| Arc::new(crate::federate::Federation::new(r, cfg.lease_ttl)));
        // A chaos-killed replica models a box that wedged right after
        // accepting work: admission (and its lease minting) still runs,
        // but no worker ever picks a job up and no heartbeat ever renews
        // — its leases expire and the surviving fleet takes over.
        let killed = match (&chaos, &cfg.replica_id) {
            (Some(plan), Some(r)) => plan.replica_killed(r),
            _ => false,
        };
        let id_stride = cfg.fleet_size.max(1) as u64;
        let shared = Arc::new(Shared {
            storage,
            chaos,
            queue: BoundedQueue::new(cfg.queue_capacity),
            table: JobTable::new(),
            sched: SchedState::new(cfg.workers),
            metrics: Arc::new(Metrics::new()),
            trace_ring: RingSink::new(SERVICE_RING),
            accepting: AtomicBool::new(true),
            aborting: AtomicBool::new(false),
            federate,
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            id_stride,
            free_ids: Mutex::new(Vec::new()),
            cfg,
        });
        if let Some(dir) = &shared.cfg.trace_dir {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
        let mut max_id = 0;
        if let Some(st) = shared.storage.clone() {
            let scanned = recover::scan(st.as_ref())?;
            shared
                .metrics
                .counters
                .quarantined
                .fetch_add(scanned.quarantined, Ordering::Relaxed);
            // Seed id allocation from every persisted job record —
            // terminal jobs included — so a reused id can never pick up
            // a stale checkpoint or result marker.
            max_id = recover::max_job_id(st.as_ref())?;
            if shared.federate.is_some() {
                // Federated restarts re-admit under the lease discipline:
                // reclaim our own jobs (epoch bumped, fencing our previous
                // incarnation), take over expired peers, skip live ones.
                // A chaos-killed replica adopts nothing.
                if !killed {
                    crate::federate::admit_scanned(&shared, scanned)?;
                }
            } else {
                for (id, sub) in scanned.jobs {
                    let mut record = JobRecord::new(id, sub.name.clone(), shared.now(), true);
                    record.recovered = true;
                    let mut shard = shared.table.shard(id.0);
                    shard.jobs.insert(id.0, record);
                    shard.subs.insert(id.0, sub);
                    drop(shard);
                    // Refusing previously-admitted work would break the
                    // admission contract, so recovery bypasses the capacity
                    // check.
                    shared
                        .queue
                        .force_push(id)
                        .map_err(|_| "queue closed during recovery".to_string())?;
                    Metrics::incr(&shared.metrics.counters.recovered);
                    Metrics::incr(&shared.metrics.counters.submitted);
                    shared.trace(TraceKind::JobRecovered { job: id.0 });
                }
            }
        }
        // First free id at or above `max_id + 1` in this replica's
        // residue class (`(id - 1) % stride == replica_index`).
        let k = (shared.cfg.replica_index as u64) % id_stride;
        let mut first = max_id + 1;
        first += (k + id_stride - ((first - 1) % id_stride)) % id_stride;
        shared.next_id.store(first, Ordering::Relaxed);
        let workers = if killed {
            Vec::new()
        } else {
            (0..shared.cfg.workers)
                .map(|i| {
                    let shared = shared.clone();
                    std::thread::Builder::new()
                        .name(format!("gridwfs-serve-worker-{i}"))
                        .spawn(move || crate::sched::worker_loop(shared, i))
                        .expect("spawn worker")
                })
                .collect()
        };
        let federation = (!killed && shared.federate.is_some()).then(|| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("gridwfs-serve-lease".into())
                .spawn(move || crate::federate::heartbeat_loop(shared))
                .expect("spawn federation heartbeat")
        });
        Ok(Service {
            shared,
            workers,
            federation,
        })
    }

    /// Submits a workflow.  On `Ok` the job is admitted and will reach a
    /// terminal state; on `Err` nothing of it remains in the service.
    pub fn submit(&self, sub: Submission) -> Result<JobId, SubmitError> {
        if !self.shared.accepting.load(Ordering::Relaxed) {
            self.reject(&sub.name, "shutting-down");
            return Err(SubmitError::ShuttingDown);
        }
        let id = match relock(&self.shared.free_ids).pop() {
            Some(freed) => JobId(freed),
            None => JobId(
                self.shared
                    .next_id
                    .fetch_add(self.shared.id_stride, Ordering::Relaxed),
            ),
        };
        let record = JobRecord::new(id, sub.name.clone(), self.shared.now(), false);
        {
            let mut shard = self.shared.table.shard(id.0);
            shard.jobs.insert(id.0, record);
            shard.subs.insert(id.0, sub.clone());
        }
        if let Some(st) = &self.shared.storage {
            // Federated admission mints the job's lease (epoch 1) in the
            // same group commit as the submission records: the job is
            // never durable without an owner.
            let lease = self
                .shared
                .federate
                .as_ref()
                .map(|fed| fed.lease_payload(1));
            let mut ops = recover::write_submission_ops(id, &sub, lease);
            if self.shared.federate.is_some() {
                // A correctly strided fleet (`replica_index`/`fleet_size`)
                // never mints the same id twice — but the id allocator is
                // per-process configuration, and a misconfigured fleet
                // (two replicas with the same index, or stride 1) would
                // otherwise *silently overwrite* a peer's live job: the
                // submission batch commits Dels+Puts over the peer's
                // lease, meta, and workflow.  Guard the batch so a
                // collision rejects atomically instead of clobbering.
                ops.insert(0, Op::CheckAbsent(recover::lease_name(id)));
                ops.insert(0, Op::CheckAbsent(recover::meta_name(id)));
            }
            let errors = st.apply(ops);
            if errors.iter().any(|(_, e)| is_fence_conflict(e)) {
                // The records at this id belong to another job (a peer's
                // admission, live or settled).  The batch was rejected
                // before any mutation, so there is nothing of ours in
                // storage to roll back — and `remove_submission` would
                // delete the *peer's* records.  Drop the in-memory entry
                // and burn the id: recycling it would collide again.
                {
                    let mut shard = self.shared.table.shard(id.0);
                    shard.jobs.remove(&id.0);
                    shard.subs.remove(&id.0);
                }
                self.reject(&sub.name, "id-collision");
                return Err(SubmitError::Io(format!(
                    "{id}: id already in use in shared storage — fleet \
                     misconfigured? (every replica needs a distinct \
                     --replica-index and the common --fleet-size)"
                )));
            }
            if let Some((name, e)) = errors.into_iter().next() {
                self.rollback(id);
                self.reject(&sub.name, "io");
                return Err(SubmitError::Io(format!("{name}: {e}")));
            }
            if let Some(fed) = &self.shared.federate {
                fed.adopt(id.0, 1);
            }
        }
        // Open the job's journal before it becomes poppable, so a worker's
        // `append` can never race the truncating `create`.  The admission
        // anchor is t=0.0: per-job journals carry the deterministic
        // executor clock, not the service's wall clock.
        if let Some(dir) = &self.shared.cfg.trace_dir {
            let created = JsonlSink::create(recover::trace_path(dir, id))
                .map_err(|e| e.to_string())
                .and_then(|sink| {
                    sink.record(&TraceEvent {
                        at: 0.0,
                        kind: TraceKind::JobAdmitted {
                            job: id.0,
                            name: sub.name.clone(),
                        },
                    });
                    sink.flush();
                    sink.error().map_or(Ok(()), Err)
                });
            if let Err(e) = created {
                self.rollback(id);
                self.reject(&sub.name, "io");
                return Err(SubmitError::Io(e));
            }
        }
        match self.shared.queue.try_push(id) {
            Ok(()) => {
                Metrics::incr(&self.shared.metrics.counters.submitted);
                self.shared.trace(TraceKind::JobAdmitted {
                    job: id.0,
                    name: sub.name.clone(),
                });
                Ok(id)
            }
            Err(e) => {
                self.rollback(id);
                let (err, reason) = match e {
                    PushError::Full(_) => (SubmitError::QueueFull, "queue-full"),
                    PushError::Closed(_) => (SubmitError::ShuttingDown, "shutting-down"),
                };
                self.reject(&sub.name, reason);
                Err(err)
            }
        }
    }

    fn reject(&self, name: &str, reason: &str) {
        Metrics::incr(&self.shared.metrics.counters.rejected);
        self.shared.trace(TraceKind::JobRejected {
            name: name.to_string(),
            reason: reason.to_string(),
        });
    }

    fn rollback(&self, id: JobId) {
        if let Some(fed) = &self.shared.federate {
            fed.disown(id.0);
        }
        {
            let mut shard = self.shared.table.shard(id.0);
            shard.jobs.remove(&id.0);
            shard.subs.remove(&id.0);
        }
        if let Some(st) = &self.shared.storage {
            if let Err(e) = recover::remove_submission(st.as_ref(), id) {
                // The staged workflow/meta records may still be durable.
                // Recycling the id now would hand a future submission an id
                // whose storage slot a restart will resurrect as *this*
                // rolled-back job.  Burn the id instead, and tombstone the
                // slot with a terminal marker so the restart scan skips it
                // (best-effort: if the tombstone also fails, the burned id
                // still keeps live state and stale records disjoint).
                eprintln!("gridwfs-serve: rollback of {id} left staged records: {e}");
                let _ = recover::write_result(st.as_ref(), id, "failed", "rolled-back");
                return;
            }
        }
        if let Some(dir) = &self.shared.cfg.trace_dir {
            let _ = std::fs::remove_file(recover::trace_path(dir, id));
        }
        relock(&self.shared.free_ids).push(id.0);
    }

    /// Snapshot of one job's record.
    pub fn status(&self, id: JobId) -> Option<JobRecord> {
        self.shared.table.shard(id.0).jobs.get(&id.0).cloned()
    }

    /// Snapshot of every job, ascending by id.
    pub fn jobs(&self) -> Vec<JobRecord> {
        self.shared.table.all_jobs()
    }

    /// Requests cancellation.  Queued jobs become `Cancelled` immediately;
    /// running jobs get their engine's stop flag set and settle as
    /// `Cancelled` shortly after.  Returns false for unknown or already
    /// terminal jobs.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut shard = self.shared.table.shard(id.0);
        let Some(rec) = shard.jobs.get_mut(&id.0) else {
            return false;
        };
        match rec.state {
            JobState::Queued => {
                rec.cancel_requested = true;
                rec.state = JobState::Cancelled;
                rec.finished_at = Some(self.shared.now());
                rec.detail = Some("cancelled while queued".into());
                drop(shard);
                Metrics::incr(&self.shared.metrics.counters.cancelled);
                if let Some(st) = &self.shared.storage {
                    match &self.shared.federate {
                        // Fenced: the terminal marker and the lease
                        // removal commit together, gated on ownership.
                        Some(fed) => crate::federate::write_result_fenced(
                            &self.shared,
                            fed,
                            id,
                            "cancelled",
                            "cancelled while queued",
                        ),
                        None => {
                            let _ = recover::write_result(
                                st.as_ref(),
                                id,
                                "cancelled",
                                "cancelled while queued",
                            );
                        }
                    }
                }
                true
            }
            JobState::Running => {
                rec.cancel_requested = true;
                // The stop flag lives in the same shard, registered in the
                // same critical section that made the job `Running` — if
                // we saw `Running`, the flag is here.
                if let Some(stop) = shard.stops.get(&id.0) {
                    stop.store(true, Ordering::Relaxed);
                }
                true
            }
            _ => false,
        }
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// JSON snapshot of the metrics registry, including the storage
    /// engine's counters when the service persists state.
    pub fn metrics_json(&self) -> String {
        let storage = self
            .shared
            .storage
            .as_ref()
            .map(|st| (st.backend_name(), st.counters()));
        self.shared
            .metrics
            .snapshot_json_with_storage(self.queue_depth(), storage)
    }

    /// Snapshot of the service-level flight recorder: admissions,
    /// rejections, and recoveries, oldest first, wall-clock timestamps.
    /// (Per-job engine events go to the job's journal in the trace
    /// directory, not here.)
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.shared.trace_ring.events()
    }

    /// Polls until every known job is terminal (true) or `timeout`
    /// elapses (false).
    pub fn wait_all_terminal(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.shared.table.all_terminal() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Test/maintenance hook for federated serve: a paused replica stops
    /// renewing its leases and scanning for takeovers, so a peer claims
    /// its jobs once the TTL lapses — the zombie drill.  No-op for a
    /// standalone service.
    pub fn pause_federation(&self, paused: bool) {
        if let Some(fed) = &self.shared.federate {
            fed.set_paused(paused);
        }
    }

    fn halt(&mut self, abort: bool) {
        self.shared.accepting.store(false, Ordering::Relaxed);
        if abort {
            self.shared.aborting.store(true, Ordering::Relaxed);
            self.shared.table.stop_all();
        }
        self.shared.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Stop the heartbeat only after the workers are done: a graceful
        // drain needs the leases renewed until the last job settles.
        if let Some(fed) = &self.shared.federate {
            fed.request_stop();
        }
        if let Some(h) = self.federation.take() {
            let _ = h.join();
        }
    }

    /// Graceful shutdown: stop accepting, drain the queue, wait for every
    /// worker to finish, return the final records.
    pub fn drain(mut self) -> Vec<JobRecord> {
        self.halt(false);
        self.jobs()
    }

    /// Hard shutdown: stop accepting, abort running engines (their
    /// checkpoints persist), leave queued jobs queued on disk, and return
    /// the records as they stood.  With a state directory, a later
    /// [`Service::start`] re-admits everything non-terminal.
    pub fn shutdown_now(mut self) -> Vec<JobRecord> {
        self.halt(true);
        self.jobs()
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.halt(true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gridspec::GridSpec;

    #[test]
    fn queries_survive_a_poisoned_jobs_mutex() {
        crate::test_support::quiet_expected_panics();
        let svc = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        })
        .unwrap();
        let id = svc
            .submit(Submission {
                name: "poison-probe".into(),
                workflow_xml: "<Workflow name='w'>\
                   <Activity name='a'><Implement>p</Implement></Activity>\
                   <Program name='p' duration='5'><Option hostname='h1'/></Program>\
                 </Workflow>"
                    .into(),
                grid: GridSpec::virtual_grid().with_host("h1", 1.0),
                seed: 1,
                deadline: None,
            })
            .unwrap();
        assert!(svc.wait_all_terminal(Duration::from_secs(10)));
        let shared = svc.shared.clone();
        let poisoned_id = id;
        let _ = std::thread::spawn(move || {
            let _guard = shared.table.shard(poisoned_id.0);
            panic!("chaos: poison the job's shard");
        })
        .join();
        // Queries, cancellation, and snapshots all answer from the
        // recovered shard lock instead of propagating the poison.
        assert_eq!(svc.status(id).unwrap().state, JobState::Done);
        assert_eq!(svc.jobs().len(), 1);
        assert!(!svc.cancel(id), "terminal job: cancel refused, no panic");
        assert!(svc.metrics_json().contains("\"completed\": 1"));
        let records = svc.drain();
        assert_eq!(records.len(), 1);
    }
}
