//! The cooperative work-stealing scheduler.
//!
//! The old worker loop parked an OS thread inside `Engine::run()` for the
//! whole life of a job — a paced workflow spent most of that time asleep
//! between notifications, and throughput was hard-capped at one job per
//! worker thread.  This scheduler multiplexes many paused engines over
//! the same pool instead, built on `Engine::step()`:
//!
//! * each worker owns a **run queue** of runnable engine instances and
//!   steps them in slices of [`SLICE_STEPS`] engine turns, so one huge
//!   virtual workflow cannot monopolise a thread;
//! * an engine that reports `Idle { wake_at }` moves to the worker's
//!   **timer heap** keyed by the wall instant its executor clock says to
//!   re-poll; it costs nothing until it is due;
//! * an idle worker **steals** half of a sibling's run queue (the classic
//!   deque split) before parking, so load imbalance self-corrects;
//! * a worker below its in-flight cap parks on the admission queue —
//!   bounded by its next timer so wakes never slip — and otherwise
//!   sleeps until the next timer;
//! * terminal markers, elapsed ledgers, and engine checkpoints are
//!   staged on a per-worker [`StateBatch`] and group-committed once per
//!   scheduler tick through [`gridwfs_storage::Storage::apply`]: one
//!   durability point (one WAL fsync, or one directory fsync under the
//!   per-file backend) amortised over the whole tick instead of one per
//!   settlement.
//!
//! Concurrency is opt-in: [`crate::ServiceConfig::max_in_flight`]
//! defaults to 1, which reproduces the old one-job-per-worker admission
//! behaviour exactly (stealing still lets an idle worker pick up a
//! sibling's runnable backlog).  The loadgen headline runs with
//! `max_in_flight` in the tens.
//!
//! Every engine slice and every engine build runs under `catch_unwind`:
//! a panicking workflow settles as `Failed` and the scheduler thread
//! survives (see [`crate::worker::note_panic`]).

use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use grid_wfs::engine::{Report, StepOutcome};
use gridwfs_chaos::relock;
use gridwfs_storage::Op;
use gridwfs_trace::JsonlSink;

use crate::job::{JobId, JobState};
use crate::queue::Pop;
use crate::service::Shared;
use crate::worker::{self, AnyEngine};

/// Engine turns per slice before a runnable engine yields the thread.
pub(crate) const SLICE_STEPS: usize = 256;

/// Re-poll period for an engine that is waiting on in-flight work with no
/// deadline of its own (`Idle { wake_at: None }`).
const IDLE_TICK: Duration = Duration::from_millis(1);

/// Admission-queue park bound; also the steal re-check period for a
/// worker at capacity.
const POLL: Duration = Duration::from_millis(25);

/// Staged state-dir writes that force a group commit mid-tick.
const BATCH_MAX: usize = 256;

/// One paused (or runnable) engine instance and its per-job plumbing.
pub(crate) struct Run {
    pub(crate) id: JobId,
    pub(crate) engine: AnyEngine,
    pub(crate) journal: Option<Arc<JsonlSink>>,
    /// Latest checkpoint XML the engine staged via its
    /// [`grid_wfs::CheckpointSink`] and the record it commits to.  The
    /// worker drains the cell into its [`StateBatch`] after every slice,
    /// so only the newest checkpoint of a tick pays for serialization to
    /// storage.
    pub(crate) checkpoint: Option<(String, worker::CheckpointCell)>,
    /// Pickup instant; `run_wall` on the record is pickup-to-settle.
    pub(crate) started: Instant,
}

/// A run waiting for its wall-clock wake time, in a worker's timer heap.
struct Sleeper {
    wake: Instant,
    /// Tie-break so same-instant sleepers wake in insertion order.
    seq: u64,
    run: Run,
}

impl PartialEq for Sleeper {
    fn eq(&self, other: &Self) -> bool {
        self.wake == other.wake && self.seq == other.seq
    }
}
impl Eq for Sleeper {}
impl PartialOrd for Sleeper {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Sleeper {
    // Reversed: BinaryHeap is a max-heap, we want the earliest wake on top.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .wake
            .cmp(&self.wake)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Per-worker staged state writes, group-committed per tick.  `stage`
/// replaces any pending write to the same record, so a batch holds at
/// most one (the latest) version of each record — same end state a
/// sequence of synchronous single-record puts leaves.
#[derive(Default)]
pub(crate) struct StateBatch {
    /// `Some(data)` stages a put, `None` stages a delete; either way the
    /// latest staging for a record name wins.
    writes: Vec<(String, Option<Vec<u8>>)>,
}

impl StateBatch {
    pub(crate) fn stage(&mut self, name: String, data: Vec<u8>) {
        self.entry(name, Some(data));
    }

    /// Stages a delete so record removal rides the same group commit as
    /// the tick's puts (backends apply dels before puts, but a batch
    /// never holds both ops for one name — latest staging wins).
    pub(crate) fn stage_del(&mut self, name: String) {
        self.entry(name, None);
    }

    fn entry(&mut self, name: String, data: Option<Vec<u8>>) {
        if let Some(slot) = self.writes.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = data;
        } else {
            self.writes.push((name, data));
        }
    }

    fn len(&self) -> usize {
        self.writes.len()
    }

    /// Group commit: every staged record lands crash-atomically with one
    /// durability point for the whole batch ([`Storage::apply`]).
    ///
    /// [`Storage::apply`]: gridwfs_storage::Storage::apply
    fn flush(&mut self, shared: &Shared) {
        if self.writes.is_empty() {
            return;
        }
        let Some(st) = &shared.storage else {
            self.writes.clear();
            return;
        };
        if let Some(fed) = &shared.federate {
            // Federated: every job's writes are fenced on its lease
            // epoch; a batch from a replica that lost a lease is
            // rejected at the storage layer, never double-settling.
            crate::federate::flush_fenced(shared, fed, std::mem::take(&mut self.writes));
            return;
        }
        let ops = self
            .writes
            .drain(..)
            .map(|(name, data)| match data {
                Some(data) => Op::Put(name, data),
                None => Op::Del(name),
            })
            .collect();
        for (name, e) in st.apply(ops) {
            eprintln!("gridwfs-serve: batched state write failed for {name}: {e}");
        }
    }
}

/// One worker's stealable state.  The timer heap is deliberately *not*
/// here: sleeping runs wake on their owner, only runnable ones migrate.
#[derive(Default)]
struct WorkerSlot {
    runnable: Mutex<VecDeque<Run>>,
    /// Runs this worker currently owns: its run queue, its timer heap,
    /// and the one being stepped.  Admission control compares this to
    /// `max_in_flight`; stealing transfers the count with the run.
    in_flight: AtomicUsize,
}

/// The shared scheduler state: one slot per worker.
pub(crate) struct SchedState {
    slots: Vec<WorkerSlot>,
}

impl SchedState {
    pub(crate) fn new(workers: usize) -> SchedState {
        SchedState {
            slots: (0..workers.max(1)).map(|_| WorkerSlot::default()).collect(),
        }
    }

    fn push_runnable(&self, me: usize, run: Run) {
        relock(&self.slots[me].runnable).push_back(run);
    }

    fn pop_runnable(&self, me: usize) -> Option<Run> {
        relock(&self.slots[me].runnable).pop_front()
    }

    fn in_flight(&self, me: usize) -> usize {
        self.slots[me].in_flight.load(Ordering::Relaxed)
    }

    fn inc_in_flight(&self, me: usize) {
        self.slots[me].in_flight.fetch_add(1, Ordering::Relaxed);
    }

    fn dec_in_flight(&self, me: usize) {
        self.slots[me].in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Steals half of the first sibling run queue that has work (from the
    /// back — owners pop the front).  `try_lock` only: a busy victim is a
    /// reason to try the next one, not to wait.  Never holds two locks.
    fn steal_into(&self, me: usize) {
        let n = self.slots.len();
        if n <= 1 {
            return;
        }
        for step in 1..n {
            let victim = (me + step) % n;
            let mut moved: VecDeque<Run> = VecDeque::new();
            {
                let Ok(mut deque) = self.slots[victim].runnable.try_lock() else {
                    continue;
                };
                let take = deque.len().div_ceil(2);
                for _ in 0..take {
                    if let Some(run) = deque.pop_back() {
                        moved.push_front(run);
                    }
                }
            }
            if moved.is_empty() {
                continue;
            }
            self.slots[victim]
                .in_flight
                .fetch_sub(moved.len(), Ordering::Relaxed);
            self.slots[me]
                .in_flight
                .fetch_add(moved.len(), Ordering::Relaxed);
            relock(&self.slots[me].runnable).extend(moved);
            return;
        }
    }
}

/// What one scheduler slice of a run produced.
enum Slice {
    /// Slice budget exhausted with work remaining: back of the run queue.
    Yield,
    /// Nothing deliverable until (about) this instant: timer heap.
    Sleep(Instant),
    /// The run is over (report, failure, or panic): settle it.
    Done(Result<Report, String>),
}

/// Steps `run` for at most [`SLICE_STEPS`] engine turns.
fn step_slice(shared: &Shared, run: &mut Run) -> Slice {
    enum Inner {
        Yield,
        Idle(Option<f64>),
        Finished(Box<Report>),
    }
    let caught = catch_unwind(AssertUnwindSafe(|| {
        for _ in 0..SLICE_STEPS {
            match run.engine.step() {
                StepOutcome::Progressed => {}
                StepOutcome::Idle { wake_at } => return Inner::Idle(wake_at),
                StepOutcome::Finished(report) => return Inner::Finished(report),
            }
        }
        Inner::Yield
    }));
    match caught {
        Ok(Inner::Yield) => Slice::Yield,
        Ok(Inner::Finished(report)) => Slice::Done(Ok(*report)),
        Ok(Inner::Idle(wake_at)) => {
            let wake = match wake_at {
                // `wake_at` is on the executor clock; `Idle` guarantees it
                // is in the future, but clamp anyway — a negative duration
                // would panic.
                Some(t) => {
                    let rel = (t - run.engine.now()).max(0.0);
                    Instant::now() + Duration::from_secs_f64(rel)
                }
                None => Instant::now() + IDLE_TICK,
            };
            Slice::Sleep(wake)
        }
        Err(payload) => {
            let msg = worker::panic_message(payload);
            worker::note_panic(shared, run.id, run.journal.as_ref(), &msg);
            Slice::Done(Err(format!("workflow panicked: {msg}")))
        }
    }
}

/// Claims a popped job: the Queued→Running transition, stop-flag
/// registration, journal header, and engine construction.  Returns `None`
/// when there is nothing to run — the job was cancelled while queued, or
/// its engine could not be built (in which case it settles as `Failed`
/// right here).
fn pickup(shared: &Arc<Shared>, id: JobId, batch: &mut StateBatch) -> Option<Run> {
    let stop = Arc::new(AtomicBool::new(false));
    let sub = {
        let mut shard = shared.table.shard(id.0);
        let sub = shard.subs.get(&id.0).cloned()?;
        let rec = shard.jobs.get_mut(&id.0)?;
        if rec.state != JobState::Queued {
            return None; // cancelled while queued
        }
        rec.state = JobState::Running;
        rec.started_at = Some(shared.now());
        // Register the stop flag in the same critical section as the
        // state change: any cancel() that observes `Running` is then
        // guaranteed to find the flag (it takes the same shard lock).
        shard.stops.insert(id.0, stop.clone());
        sub
    };
    shared.metrics.running.fetch_add(1, Ordering::Relaxed);
    let journal = worker::open_journal(shared, id, &sub);
    let started = Instant::now();
    let built = catch_unwind(AssertUnwindSafe(|| {
        worker::build_engine(shared, id, &sub, stop, journal.clone())
    }));
    let failure = match built {
        Ok(Ok((engine, checkpoint))) => {
            return Some(Run {
                id,
                engine,
                journal,
                checkpoint,
                started,
            });
        }
        Ok(Err(msg)) => msg,
        Err(payload) => {
            let msg = worker::panic_message(payload);
            worker::note_panic(shared, id, journal.as_ref(), &msg);
            format!("workflow panicked: {msg}")
        }
    };
    shared.table.shard(id.0).stops.remove(&id.0);
    shared.metrics.running.fetch_sub(1, Ordering::Relaxed);
    worker::settle(
        shared,
        id,
        Err(failure),
        started.elapsed().as_secs_f64(),
        journal,
        batch,
    );
    None
}

/// Settles a finished run and releases its bookkeeping.
fn finish_run(shared: &Shared, run: Run, result: Result<Report, String>, batch: &mut StateBatch) {
    let run_wall = run.started.elapsed().as_secs_f64();
    shared.table.shard(run.id.0).stops.remove(&run.id.0);
    shared.metrics.running.fetch_sub(1, Ordering::Relaxed);
    worker::settle(shared, run.id, result, run_wall, run.journal, batch);
}

/// How long to park given the next timer expiry.
fn park_time(next_wake: Option<Instant>) -> Duration {
    match next_wake {
        Some(w) => w.saturating_duration_since(Instant::now()).min(POLL),
        None => POLL,
    }
}

/// The scheduler loop for worker `me`.  Exits once the admission queue is
/// closed and drained and every run this worker owns has settled.
pub(crate) fn worker_loop(shared: Arc<Shared>, me: usize) {
    let cap = shared.cfg.max_in_flight.max(1);
    let sched = &shared.sched;
    let mut sleepers: BinaryHeap<Sleeper> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let mut batch = StateBatch::default();
    let mut closed = false;
    loop {
        // Timers first: move every due sleeper back to the run queue.
        let now = Instant::now();
        while sleepers.peek().is_some_and(|s| s.wake <= now) {
            let sleeper = sleepers.pop().expect("peeked");
            sched.push_runnable(me, sleeper.run);
        }
        // Step one slice of runnable work — own queue first, then steal.
        let next = sched.pop_runnable(me).or_else(|| {
            sched.steal_into(me);
            sched.pop_runnable(me)
        });
        if let Some(mut run) = next {
            let slice = step_slice(&shared, &mut run);
            // Drain the engine's staged checkpoint (if any) into the
            // batch: at most the newest checkpoint per record per tick
            // reaches storage.
            if let Some((name, cell)) = &run.checkpoint {
                if let Some(xml) = relock(cell).take() {
                    batch.stage(name.clone(), xml);
                }
            }
            match slice {
                Slice::Yield => sched.push_runnable(me, run),
                Slice::Sleep(wake) => {
                    seq += 1;
                    sleepers.push(Sleeper { wake, seq, run });
                }
                Slice::Done(result) => {
                    finish_run(&shared, run, result, &mut batch);
                    sched.dec_in_flight(me);
                }
            }
            if batch.len() >= BATCH_MAX {
                batch.flush(&shared);
            }
            continue;
        }
        // Nothing runnable: a tick boundary.  Group-commit staged state,
        // then either admit new work or sleep until the next timer.
        batch.flush(&shared);
        if closed && sched.in_flight(me) == 0 {
            return;
        }
        let next_wake = sleepers.peek().map(|s| s.wake);
        if !closed && sched.in_flight(me) < cap {
            match shared.queue.pop_timeout(park_time(next_wake)) {
                Pop::Closed => closed = true,
                Pop::Empty => {}
                Pop::Item(id) => {
                    if shared.aborting.load(Ordering::Relaxed) {
                        // Hard shutdown: leave the job `Queued`; its
                        // manifest survives for the next incarnation's
                        // recovery scan.
                        continue;
                    }
                    if let Some(run) = pickup(&shared, id, &mut batch) {
                        sched.inc_in_flight(me);
                        sched.push_runnable(me, run);
                    }
                }
            }
        } else {
            // At capacity, or draining after close: sleep until the next
            // timer (or a poll tick, to re-check for stealable work).
            let nap = park_time(next_wake);
            if !nap.is_zero() {
                std::thread::sleep(nap);
            }
        }
    }
}
