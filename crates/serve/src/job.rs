//! Job identities, submissions, and per-job records.

use crate::gridspec::GridSpec;

/// Service-assigned submission identifier, unique across restarts of the
/// same state directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Lifecycle of an admitted submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// An engine instance is navigating it.
    Running,
    /// Terminal: the workflow succeeded.
    Done,
    /// Terminal: the workflow failed (including deadline expiry).
    Failed,
    /// Terminal: cancelled by the client.
    Cancelled,
}

impl JobState {
    /// True for states a job never leaves.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Lower-case label (metrics, result files, CLI tables).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// One workflow submission: everything a worker needs to run it, and
/// everything recovery needs to re-admit it after a service restart.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Client-chosen label (shown in status output; need not be unique).
    pub name: String,
    /// The WPDL document to execute.
    pub workflow_xml: String,
    /// The Grid to execute it on.
    pub grid: GridSpec,
    /// RNG seed for the simulated Grid.
    pub seed: u64,
    /// Executor-clock budget; `None` falls back to the service default.
    pub deadline: Option<f64>,
}

/// Everything the service knows about one job.  Timestamps are seconds on
/// the service clock (wall time since service start).
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Assigned id.
    pub id: JobId,
    /// Client label.
    pub name: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// True if this job was re-admitted from a state directory after a
    /// service restart.
    pub recovered: bool,
    /// True once a client asked for cancellation.
    pub cancel_requested: bool,
    /// When the submission was admitted.
    pub enqueued_at: f64,
    /// When a worker picked it up.
    pub started_at: Option<f64>,
    /// When it reached a terminal state.
    pub finished_at: Option<f64>,
    /// Engine makespan (executor clock), once finished.
    pub makespan: Option<f64>,
    /// Wall seconds the worker spent running the engine.
    pub run_wall: Option<f64>,
    /// Final engine outcome / failure detail.
    pub detail: Option<String>,
    /// Task attempts the engine submitted.
    pub task_submissions: u64,
}

impl JobRecord {
    pub(crate) fn new(id: JobId, name: String, enqueued_at: f64, recovered: bool) -> Self {
        JobRecord {
            id,
            name,
            state: JobState::Queued,
            recovered,
            cancel_requested: false,
            enqueued_at,
            started_at: None,
            finished_at: None,
            makespan: None,
            run_wall: None,
            detail: None,
            task_submissions: 0,
        }
    }

    /// Admission-to-terminal latency in service-clock seconds, once
    /// terminal.
    pub fn latency(&self) -> Option<f64> {
        self.finished_at.map(|f| f - self.enqueued_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_states() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
    }

    #[test]
    fn latency_needs_terminal() {
        let mut r = JobRecord::new(JobId(1), "x".into(), 2.0, false);
        assert_eq!(r.latency(), None);
        r.finished_at = Some(5.0);
        assert_eq!(r.latency(), Some(3.0));
        assert_eq!(format!("{}", r.id), "job-1");
    }
}
