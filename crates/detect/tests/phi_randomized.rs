//! Randomized (but fully seeded) properties of the φ-accrual detector.
//!
//! These are plain `#[test]`s over a deterministic splitmix64 stream, not
//! proptest cases: every run sees the same heartbeat histories, so a
//! failure reproduces byte-for-byte from the test name alone.
//!
//! * Raising the threshold can only *remove* false suspicions — the
//!   presumption margin `mean + std·z(threshold)` is monotone in the
//!   threshold, so for a fixed arrival history the suspected set shrinks.
//! * A sender that really crashes is always presumed eventually, whatever
//!   the link did to its heartbeats beforehand.

use gridwfs_detect::notify::TaskId;
use gridwfs_detect::phi::PhiConfig;
use gridwfs_detect::{BeatOutcome, PhiAccrualDetector};

/// Tiny deterministic generator (splitmix64) so this test file needs no
/// extra dependencies.
struct Stream(u64);

impl Stream {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Heartbeat arrival times for one trial: beats every interval, each
/// dropped with probability `drop_p`, survivors delayed by `U[0, jitter)`.
fn arrivals(seed: u64, beats: usize, drop_p: f64, jitter: f64) -> Vec<f64> {
    let mut rng = Stream(seed);
    let mut out: Vec<f64> = (1..=beats)
        .filter_map(|k| {
            let dropped = rng.next_f64() < drop_p;
            let delay = rng.next_f64() * jitter;
            (!dropped).then_some(k as f64 + delay)
        })
        .collect();
    out.sort_by(f64::total_cmp);
    out
}

/// Runs one live-sender trial and reports whether the detector falsely
/// suspected it before the horizon.
fn falsely_suspects(threshold: f64, history: &[f64], horizon: f64) -> bool {
    let task = TaskId(1);
    let mut det = PhiAccrualDetector::new(PhiConfig {
        threshold,
        window: 32,
        min_samples: 8,
    });
    det.watch(task, 1.0, 8.0, 0.0);
    for (seq, &at) in history.iter().enumerate() {
        if det.deadline(task).is_some_and(|d| d < at && d < horizon) {
            return true;
        }
        det.beat(task, seq as u64 + 1, at);
    }
    det.deadline(task).is_some_and(|d| d < horizon)
}

#[test]
fn false_suspicion_rate_is_monotone_non_increasing_in_threshold() {
    let thresholds = [1.0, 2.0, 4.0, 6.0, 8.0, 12.0];
    let trials = 200;
    // Generate each trial's history once so every threshold judges the
    // exact same lossy, jittery stream.
    let histories: Vec<Vec<f64>> = (0..trials)
        .map(|i| arrivals(0xBEA7 + i, 140, 0.15, 0.6))
        .collect();
    let rates: Vec<usize> = thresholds
        .iter()
        .map(|&th| {
            histories
                .iter()
                .filter(|h| falsely_suspects(th, h, 120.0))
                .count()
        })
        .collect();
    for pair in rates.windows(2) {
        assert!(
            pair[0] >= pair[1],
            "raising the threshold must not add suspicions: {rates:?}"
        );
    }
    // The sweep is not degenerate: the tightest threshold suspects
    // someone, the loosest almost nobody.
    assert!(rates[0] > rates[rates.len() - 1], "{rates:?}");
}

#[test]
fn every_trial_is_monotone_not_just_the_aggregate() {
    // Stronger than the rate check: on each individual history, a tighter
    // threshold suspecting nobody implies the looser one does not either.
    for i in 0..100 {
        let history = arrivals(0xCAFE + i, 100, 0.2, 0.8);
        let mut prior = true;
        for th in [1.0, 3.0, 6.0, 9.0, 12.0] {
            let now = falsely_suspects(th, &history, 90.0);
            assert!(
                prior || !now,
                "history {i}: threshold {th} suspects where a tighter one did not"
            );
            prior = now;
        }
    }
}

#[test]
fn a_real_crash_is_always_detected() {
    for i in 0..200 {
        let mut rng = Stream(0xDEAD + i);
        let drop_p = rng.next_f64() * 0.4;
        let jitter = rng.next_f64() * 1.5;
        let crash_at = 20.0 + rng.next_f64() * 40.0;
        let beats = crash_at.floor() as usize;
        let history = arrivals(0xF00D + i, beats, drop_p, jitter);

        let task = TaskId(9);
        let mut det = PhiAccrualDetector::new(PhiConfig::with_threshold(8.0));
        det.watch(task, 1.0, 8.0, 0.0);
        for (seq, &at) in history.iter().enumerate() {
            det.beat(task, seq as u64 + 1, at);
        }
        let deadline = det
            .deadline(task)
            .expect("a watched task always has a deadline");
        assert!(
            deadline.is_finite(),
            "trial {i} (drop {drop_p:.2}, jitter {jitter:.2}): infinite deadline"
        );
        assert_eq!(det.expired(deadline - 1e-9), vec![], "trial {i}: too early");
        assert_eq!(det.expired(deadline), vec![task], "trial {i}");
        assert!(!det.is_live(task), "trial {i}: still live after expiry");
        // Presumption is sticky: a wandering zombie beat is Late, and the
        // task is never reported expired twice.
        assert_eq!(
            det.beat(task, 10_000, deadline + 1.0),
            BeatOutcome::Late,
            "trial {i}"
        );
        assert_eq!(det.expired(deadline + 2.0), vec![], "trial {i}");
    }
}

#[test]
fn a_task_that_never_beats_falls_back_to_the_fixed_budget() {
    let task = TaskId(3);
    let mut det = PhiAccrualDetector::new(PhiConfig::with_threshold(8.0));
    det.watch(task, 2.0, 3.0, 10.0);
    // Cold window: the deadline is exactly interval × tolerance away.
    assert_eq!(det.deadline(task), Some(16.0));
    assert_eq!(det.expired(16.0), vec![task]);
}
