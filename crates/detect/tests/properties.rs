//! Property tests for the failure detection service.

use gridwfs_detect::detector::{Detection, Detector};
use gridwfs_detect::heartbeat::HeartbeatMonitor;
use gridwfs_detect::notify::{Envelope, Notification, TaskId};
use gridwfs_detect::state::{TaskState, TaskStateMachine};
use gridwfs_detect::transport::ReorderBuffer;
use proptest::prelude::*;

fn arb_state() -> impl Strategy<Value = TaskState> {
    prop_oneof![
        Just(TaskState::Inactive),
        Just(TaskState::Active),
        Just(TaskState::Done),
        Just(TaskState::Failed),
        Just(TaskState::Exception),
    ]
}

fn arb_notification() -> impl Strategy<Value = Notification> {
    prop_oneof![
        (any::<u64>()).prop_map(|seq| Notification::Heartbeat { seq }),
        Just(Notification::TaskStart),
        Just(Notification::TaskEnd),
        "[a-z]{1,8}".prop_map(|name| Notification::Exception {
            name,
            detail: String::new()
        }),
        "[a-z0-9:]{1,12}".prop_map(|flag| Notification::Checkpoint { flag }),
        Just(Notification::Done),
    ]
}

proptest! {
    /// Random transition walks: the machine never enters an illegal state,
    /// history always starts Inactive and replaying it is legal.
    #[test]
    fn state_machine_history_is_always_legal(walk in proptest::collection::vec(arb_state(), 0..20)) {
        let mut m = TaskStateMachine::new();
        for target in walk {
            let before = m.current();
            match m.transition(target) {
                Ok(()) => prop_assert!(TaskStateMachine::is_legal(before, target)),
                Err(e) => {
                    prop_assert_eq!(e.from, before);
                    prop_assert_eq!(m.current(), before, "failed transition is a no-op");
                }
            }
        }
        // Replay the recorded history through a fresh machine.
        let mut replay = TaskStateMachine::new();
        for &s in m.history().iter().skip(1) {
            replay.transition(s).expect("recorded history is legal");
        }
        prop_assert_eq!(replay.current(), m.current());
    }

    /// Arbitrary notification sequences produce at most one terminal
    /// detection, and the final state is consistent with it.
    #[test]
    fn detector_classification_is_single_and_consistent(
        bodies in proptest::collection::vec(arb_notification(), 0..30),
    ) {
        let mut det = Detector::new();
        det.register_task(TaskId(1), 0.0, 1.0, 0.0);
        let mut terminal: Option<Detection> = None;
        for (i, body) in bodies.into_iter().enumerate() {
            let t = i as f64;
            for d in det.observe(&Envelope::new(TaskId(1), "h", t, body.clone()), t) {
                if d.is_terminal() {
                    prop_assert!(terminal.is_none(), "second terminal {d:?}");
                    terminal = Some(d);
                }
            }
        }
        let state = det.state(TaskId(1)).unwrap();
        match &terminal {
            Some(Detection::Completed { .. }) => prop_assert_eq!(state, TaskState::Done),
            Some(Detection::Crashed { .. }) => prop_assert_eq!(state, TaskState::Failed),
            Some(Detection::ExceptionRaised { .. }) => prop_assert_eq!(state, TaskState::Exception),
            Some(Detection::CheckpointRecorded { .. }) => unreachable!("not terminal"),
            None => prop_assert!(!state.is_terminal()),
        }
    }

    /// Heartbeat monitor: a task that beats at least every
    /// `interval * tolerance` is never presumed dead; one that stops is
    /// presumed dead exactly once.
    #[test]
    fn heartbeat_presumption_boundary(
        interval in 0.1f64..5.0,
        tolerance in 1.0f64..5.0,
        beats in 1usize..30,
        stop_after in 0usize..30,
    ) {
        let mut m = HeartbeatMonitor::new();
        m.watch(TaskId(1), interval, tolerance, 0.0);
        let window = interval * tolerance;
        let mut now = 0.0;
        let mut dead_reports = 0;
        for i in 0..beats {
            now = (i + 1) as f64 * window * 0.9; // always inside the window
            if i < stop_after {
                m.beat(TaskId(1), i as u64, now);
            }
            dead_reports += m.expired(now).len();
        }
        if stop_after >= beats {
            prop_assert_eq!(dead_reports, 0, "never silent long enough");
        }
        // Silence forever: exactly one report, ever.
        dead_reports += m.expired(now + window * 10.0).len();
        dead_reports += m.expired(now + window * 20.0).len();
        prop_assert!(dead_reports <= 1);
        if stop_after < beats || beats > 0 {
            prop_assert_eq!(dead_reports, 1, "eventual silence is always detected");
        }
    }

    /// Reorder buffer: releases exactly the accepted messages (no loss, no
    /// duplication) in send order, whatever the arrival order.
    #[test]
    fn reorder_buffer_is_a_permutation_sorter(
        sent_times in proptest::collection::vec(0.0f64..100.0, 1..30),
        delay in 0.0f64..5.0,
    ) {
        let mut buf = ReorderBuffer::new(delay);
        // Arrive in shuffled order: reverse is the worst case.
        let mut arrival = 100.0;
        for (i, &sent) in sent_times.iter().enumerate().rev() {
            arrival += 0.1;
            let accepted = buf.accept(
                Envelope::new(TaskId(1), "h", sent, Notification::Heartbeat { seq: i as u64 }),
                arrival,
            );
            prop_assert!(accepted, "distinct messages are never suppressed");
        }
        let out = buf.release(arrival + delay + 1.0);
        prop_assert_eq!(out.len(), sent_times.len());
        for w in out.windows(2) {
            prop_assert!(w[0].sent_at <= w[1].sent_at, "send order restored");
        }
        prop_assert!(buf.is_empty());
    }

    /// Wire format: every envelope round-trips through JSON.
    #[test]
    fn envelope_wire_roundtrip(
        body in arb_notification(),
        task in any::<u64>(),
        host in "[a-z.]{1,20}",
        at in 0.0f64..1e6,
    ) {
        let env = Envelope::new(TaskId(task), host, at, body);
        let back = Envelope::from_wire(&env.to_wire()).unwrap();
        prop_assert_eq!(back, env);
    }
}
