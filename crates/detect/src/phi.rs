//! Adaptive φ-accrual failure detection (Hayashibara et al., SRDS 2004).
//!
//! The fixed-timeout monitor presumes a crash after `tolerance × interval`
//! of silence, no matter what the network is doing.  Over a lossy or
//! jittery link that constant is always wrong in one direction: too tight
//! and every delay spike becomes a false suspicion, too loose and real
//! crashes take ages to detect.  The accrual detector instead keeps a
//! sliding window of observed heartbeat *inter-arrival* times per task and
//! expresses suspicion as a continuous level
//!
//! ```text
//! φ(t) = -log10( P(next heartbeat arrives later than t) )
//! ```
//!
//! under a normal approximation of the windowed inter-arrival distribution.
//! φ = 1 means the silence would be exceeded by chance one time in ten,
//! φ = 8 one time in 10⁸.  Crossing a configurable threshold presumes the
//! crash.  Because the window tracks what the link actually delivers, the
//! deadline automatically stretches under jitter and drop-induced gaps and
//! tightens on quiet links — the adaptivity the paper's generic failure
//! detection service (§3) leaves to the transport.
//!
//! While the window is *cold* (fewer than `min_samples` observed
//! intervals) the detector falls back to the fixed-timeout semantics of
//! [`HeartbeatMonitor`](crate::heartbeat::HeartbeatMonitor), so a task
//! that dies before ever heartbeating is still detected promptly.
//!
//! The detector is deliberately API-compatible with the fixed monitor
//! (`watch`/`beat`/`deadline`/`expired`), with the presumption instant
//! computed *analytically* — the time at which φ reaches the threshold is
//! `last_seen + mean + std · z(threshold)` with `z` the standard-normal
//! quantile — so the engine's deadline-driven sweep scheduling works
//! unchanged and stays deterministic.

use std::collections::{HashMap, VecDeque};

use crate::heartbeat::{BeatOutcome, Liveness};
use crate::notify::TaskId;

/// Tuning knobs for the φ-accrual detector.
#[derive(Debug, Clone, PartialEq)]
pub struct PhiConfig {
    /// Suspicion threshold: presume a crash once φ ≥ `threshold`.
    pub threshold: f64,
    /// Sliding-window capacity (number of inter-arrival samples kept).
    pub window: usize,
    /// Below this many samples the window is cold and the detector uses
    /// the fixed `tolerance × interval` timeout instead.
    pub min_samples: usize,
}

impl Default for PhiConfig {
    fn default() -> Self {
        PhiConfig {
            threshold: 8.0,
            window: 32,
            min_samples: 8,
        }
    }
}

impl PhiConfig {
    /// A config with the given threshold and default window sizing.
    ///
    /// # Panics
    /// Panics unless `threshold` is finite and positive.
    pub fn with_threshold(threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "phi threshold must be finite and > 0"
        );
        PhiConfig {
            threshold,
            ..PhiConfig::default()
        }
    }
}

/// Per-task state: the inter-arrival window plus the fixed-fallback terms.
#[derive(Debug, Clone)]
struct PhiWatch {
    interval: f64,
    tolerance: f64,
    window: VecDeque<f64>,
    last_seen: f64,
    last_seq: Option<u64>,
    presumed_dead: bool,
}

impl PhiWatch {
    /// Windowed mean and standard deviation, with the deviation floored at
    /// a tenth of the expected interval so a perfectly regular stream does
    /// not collapse the distribution to a point (and one delayed beat to a
    /// certain crash).
    fn stats(&self) -> (f64, f64) {
        let n = self.window.len() as f64;
        let mean = self.window.iter().sum::<f64>() / n;
        let var = self.window.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt().max(self.interval * 0.1);
        (mean, std)
    }
}

/// The adaptive accrual detector.  Same shape as
/// [`HeartbeatMonitor`](crate::heartbeat::HeartbeatMonitor); see the
/// module docs for the semantics of the φ threshold.
#[derive(Debug, Clone, Default)]
pub struct PhiAccrualDetector {
    config: PhiConfig,
    watches: HashMap<TaskId, PhiWatch>,
    late_beats: u64,
}

impl PhiAccrualDetector {
    /// A detector with the given config.
    pub fn new(config: PhiConfig) -> Self {
        PhiAccrualDetector {
            config,
            watches: HashMap::new(),
            late_beats: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PhiConfig {
        &self.config
    }

    /// Starts watching a task.  `interval`/`tolerance` parameterise the
    /// cold-window fixed-timeout fallback; once the window warms up they
    /// only set the deviation floor.  Semantics of re-registration match
    /// [`HeartbeatMonitor::watch`](crate::heartbeat::HeartbeatMonitor::watch).
    ///
    /// # Panics
    /// Panics unless `interval > 0` and `tolerance >= 1`.
    pub fn watch(
        &mut self,
        task: TaskId,
        interval: f64,
        tolerance: f64,
        now: f64,
    ) -> Option<Liveness> {
        assert!(interval > 0.0, "heartbeat interval must be positive");
        assert!(tolerance >= 1.0, "tolerance below one interval is nonsense");
        self.watches
            .insert(
                task,
                PhiWatch {
                    interval,
                    tolerance,
                    window: VecDeque::with_capacity(self.config.window),
                    last_seen: now,
                    last_seq: None,
                    presumed_dead: false,
                },
            )
            .map(|prior| {
                if prior.presumed_dead {
                    Liveness::PresumedDead
                } else {
                    Liveness::Live
                }
            })
    }

    /// Stops watching.
    pub fn unwatch(&mut self, task: TaskId) {
        self.watches.remove(&task);
    }

    /// Records a heartbeat, feeding the inter-arrival window.  Outcomes
    /// match [`HeartbeatMonitor::beat`](crate::heartbeat::HeartbeatMonitor::beat).
    pub fn beat(&mut self, task: TaskId, seq: u64, now: f64) -> BeatOutcome {
        let cap = self.config.window;
        match self.watches.get_mut(&task) {
            Some(w) if !w.presumed_dead => {
                if w.last_seq.is_none_or(|s| seq >= s) {
                    w.last_seq = Some(seq);
                }
                if now > w.last_seen {
                    if w.window.len() == cap {
                        w.window.pop_front();
                    }
                    w.window.push_back(now - w.last_seen);
                    w.last_seen = now;
                }
                BeatOutcome::Accepted
            }
            Some(_) => {
                self.late_beats += 1;
                BeatOutcome::Late
            }
            None => BeatOutcome::Unwatched,
        }
    }

    /// Number of late beats seen (cf.
    /// [`HeartbeatMonitor::late_beats`](crate::heartbeat::HeartbeatMonitor::late_beats)).
    pub fn late_beats(&self) -> u64 {
        self.late_beats
    }

    /// Current suspicion level for a task: φ of the silence `now -
    /// last_seen`.  Cold windows scale the fixed timeout onto the φ axis
    /// (φ = threshold exactly when the fixed deadline is reached) so the
    /// reported level is comparable across both regimes.  `None` if the
    /// task is unwatched.
    pub fn phi(&self, task: TaskId, now: f64) -> Option<f64> {
        let w = self.watches.get(&task)?;
        let elapsed = (now - w.last_seen).max(0.0);
        if w.window.len() < self.config.min_samples {
            let fixed = w.interval * w.tolerance;
            return Some(self.config.threshold * elapsed / fixed);
        }
        let (mean, std) = w.stats();
        let p_later = 1.0 - normal_cdf((elapsed - mean) / std);
        Some(-(p_later.max(1e-15)).log10())
    }

    /// Deadline at which φ will cross the threshold absent further beats:
    /// `last_seen + mean + std·z(threshold)` (warm window), or the fixed
    /// `last_seen + interval × tolerance` (cold window).  `None` if
    /// unwatched or already presumed dead.
    pub fn deadline(&self, task: TaskId) -> Option<f64> {
        self.watches
            .get(&task)
            .filter(|w| !w.presumed_dead)
            .map(|w| w.last_seen + self.margin(w))
    }

    /// Silence budget from the last beat to presumption.
    fn margin(&self, w: &PhiWatch) -> f64 {
        if w.window.len() < self.config.min_samples {
            return w.interval * w.tolerance;
        }
        let (mean, std) = w.stats();
        // z such that P(silence ≥ mean + z·std) = 10^-threshold.
        let z = -normal_quantile(10f64.powf(-self.config.threshold));
        // Never presume before one full expected interval has passed.
        (mean + std * z).max(w.interval)
    }

    /// Sweeps all watches at `now`, returning tasks newly presumed crashed
    /// (sorted; each reported once).
    pub fn expired(&mut self, now: f64) -> Vec<TaskId> {
        let min_samples = self.config.min_samples;
        let threshold = self.config.threshold;
        let mut out: Vec<TaskId> = self
            .watches
            .iter_mut()
            .filter_map(|(task, w)| {
                let margin = if w.window.len() < min_samples {
                    w.interval * w.tolerance
                } else {
                    let n = w.window.len() as f64;
                    let mean = w.window.iter().sum::<f64>() / n;
                    let var = w.window.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
                    let std = var.sqrt().max(w.interval * 0.1);
                    let z = -normal_quantile(10f64.powf(-threshold));
                    (mean + std * z).max(w.interval)
                };
                if !w.presumed_dead && now >= w.last_seen + margin {
                    w.presumed_dead = true;
                    Some(*task)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// True if watched and not presumed dead.
    pub fn is_live(&self, task: TaskId) -> bool {
        self.watches
            .get(&task)
            .map(|w| !w.presumed_dead)
            .unwrap_or(false)
    }

    /// Time of the last beat (or watch start), surviving presumption.
    pub fn last_seen(&self, task: TaskId) -> Option<f64> {
        self.watches.get(&task).map(|w| w.last_seen)
    }

    /// Highest sequence number seen.
    pub fn last_seq(&self, task: TaskId) -> Option<u64> {
        self.watches.get(&task).and_then(|w| w.last_seq)
    }

    /// Number of inter-arrival samples currently windowed for a task.
    pub fn samples(&self, task: TaskId) -> usize {
        self.watches.get(&task).map(|w| w.window.len()).unwrap_or(0)
    }

    /// Windowed inter-arrival standard deviation for a task — the
    /// heartbeat *jitter*, an early-warning signal (a host whose beats
    /// grow erratic is often about to miss them entirely).  `None` until
    /// the window has at least one sample.
    pub fn jitter(&self, task: TaskId) -> Option<f64> {
        self.watches
            .get(&task)
            .filter(|w| !w.window.is_empty())
            .map(|w| w.stats().1)
    }
}

/// Standard normal CDF via the Abramowitz & Stegun 7.1.26 erf
/// approximation (|ε| < 1.5·10⁻⁷) — pure arithmetic, fully deterministic.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal quantile (inverse CDF) via Acklam's rational
/// approximation (relative error < 1.15·10⁻⁹ over (0,1)).
///
/// # Panics
/// Panics unless `0 < p < 1`.
#[allow(clippy::excessive_precision)] // Acklam's published coefficients, verbatim
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: TaskId = TaskId(1);

    fn warm(det: &mut PhiAccrualDetector, interval: f64, beats: usize) -> f64 {
        det.watch(T1, interval, 3.0, 0.0);
        let mut t = 0.0;
        for k in 0..beats {
            t = (k + 1) as f64 * interval;
            assert!(det.beat(T1, k as u64, t).is_accepted());
        }
        t
    }

    #[test]
    fn normal_cdf_sanity() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!(normal_cdf(-8.0) < 1e-14);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-6, "p={p} z={z}");
        }
        // Deep tail: z for 10^-8 is about -5.61.
        let z = normal_quantile(1e-8);
        assert!((-5.7..-5.5).contains(&z), "z={z}");
    }

    #[test]
    fn cold_window_uses_fixed_timeout() {
        let mut det = PhiAccrualDetector::new(PhiConfig::default());
        det.watch(T1, 1.0, 3.0, 0.0);
        assert_eq!(det.deadline(T1), Some(3.0), "interval 1 x tolerance 3");
        assert!(det.expired(2.9).is_empty());
        assert_eq!(det.expired(3.0), vec![T1]);
    }

    #[test]
    fn warm_window_adapts_deadline_to_observed_regularity() {
        let mut det = PhiAccrualDetector::new(PhiConfig::with_threshold(8.0));
        let t = warm(&mut det, 1.0, 12);
        // Perfectly regular beats: margin = mean + z*std_floor
        //   = 1 + 5.61*0.1 ~ 1.56, i.e. tighter than the fixed 3.0.
        let d = det.deadline(T1).unwrap();
        assert!(
            d > t + 1.0 && d < t + 2.0,
            "regular stream tightens the deadline: {d} vs last {t}"
        );
    }

    #[test]
    fn jitter_widens_the_deadline() {
        let regular = {
            let mut det = PhiAccrualDetector::new(PhiConfig::with_threshold(8.0));
            let t = warm(&mut det, 1.0, 12);
            det.deadline(T1).unwrap() - t
        };
        let jittery = {
            let mut det = PhiAccrualDetector::new(PhiConfig::with_threshold(8.0));
            det.watch(T1, 1.0, 3.0, 0.0);
            // Alternating 0.5 / 1.5 inter-arrivals: same mean, high variance.
            let mut t = 0.0;
            for k in 0..12u64 {
                t += if k % 2 == 0 { 0.5 } else { 1.5 };
                det.beat(T1, k, t);
            }
            det.deadline(T1).unwrap() - t
        };
        assert!(
            jittery > regular + 1.0,
            "jitter must widen the margin: jittery {jittery} vs regular {regular}"
        );
    }

    #[test]
    fn deadline_margin_monotone_in_threshold() {
        let margin_at = |threshold: f64| {
            let mut det = PhiAccrualDetector::new(PhiConfig::with_threshold(threshold));
            det.watch(T1, 1.0, 3.0, 0.0);
            let mut t = 0.0;
            for k in 0..16u64 {
                t += if k % 3 == 0 { 1.4 } else { 0.8 };
                det.beat(T1, k, t);
            }
            det.deadline(T1).unwrap() - t
        };
        let mut prev = 0.0;
        for threshold in [1.0, 2.0, 4.0, 8.0, 12.0] {
            let m = margin_at(threshold);
            assert!(m >= prev, "threshold {threshold}: margin {m} < {prev}");
            prev = m;
        }
    }

    #[test]
    fn phi_grows_with_silence_and_crosses_threshold_at_deadline() {
        let mut det = PhiAccrualDetector::new(PhiConfig::with_threshold(8.0));
        let t = warm(&mut det, 1.0, 12);
        let d = det.deadline(T1).unwrap();
        let phi_early = det.phi(T1, t + 0.5).unwrap();
        let phi_mid = det.phi(T1, (t + d) / 2.0).unwrap();
        let phi_at_deadline = det.phi(T1, d).unwrap();
        assert!(phi_early < phi_mid && phi_mid < phi_at_deadline);
        // The analytic deadline and the φ level agree to approximation error.
        assert!(
            (phi_at_deadline - 8.0).abs() < 0.75,
            "phi at deadline {phi_at_deadline}"
        );
    }

    #[test]
    fn real_crash_is_always_detected() {
        let mut det = PhiAccrualDetector::new(PhiConfig::with_threshold(8.0));
        let t = warm(&mut det, 1.0, 20);
        // Stream stops.  Some finite deadline exists and expires.
        let d = det.deadline(T1).unwrap();
        assert!(d.is_finite() && d > t);
        assert!(det.expired(d - 1e-9).is_empty());
        assert_eq!(det.expired(d), vec![T1]);
        assert_eq!(det.beat(T1, 99, d + 1.0), BeatOutcome::Late);
        assert_eq!(det.late_beats(), 1);
    }

    #[test]
    fn rewatch_discloses_prior_liveness() {
        let mut det = PhiAccrualDetector::new(PhiConfig::default());
        assert_eq!(det.watch(T1, 1.0, 2.0, 0.0), None);
        assert_eq!(det.watch(T1, 1.0, 2.0, 0.5), Some(Liveness::Live));
        det.expired(10.0);
        assert_eq!(det.watch(T1, 1.0, 2.0, 10.0), Some(Liveness::PresumedDead));
    }

    #[test]
    fn window_is_bounded() {
        let mut det = PhiAccrualDetector::new(PhiConfig {
            window: 4,
            min_samples: 2,
            threshold: 8.0,
        });
        warm(&mut det, 1.0, 50);
        assert_eq!(det.samples(T1), 4);
    }
}
