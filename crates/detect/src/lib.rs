//! # gridwfs-detect — the generic failure detection service
//!
//! Reproduction of the paper's companion service (Hwang & Kesselman,
//! *A Generic Failure Detection Service for the Grid*, ISI-TR-568, summarised
//! in §3 of the HPDC'03 paper).  The service classifies what happens to a
//! task running on a remote Grid node into the two failure classes the
//! Grid-WFS framework recovers from:
//!
//! * **task crash failures** — the job manager reports `Done` but the task
//!   never sent its application-level `Task End` notification, or heartbeats
//!   stop arriving (host crash / network partition / reboot);
//! * **user-defined exceptions** — the task itself raises a named,
//!   task-specific exception (`disk_full`, `out_of_memory`, …) through the
//!   task-side notification API.
//!
//! The pieces:
//!
//! * [`state`] — the task state machine (`Inactive → Active → Done | Failed |
//!   Exception`) from the report,
//! * [`notify`] — typed notification messages and their wire format,
//! * [`api`] — the task-side event-notification API (the
//!   `globus_FDS_task_*` calls of the original),
//! * [`heartbeat`] — timeout-based crash presumption,
//! * [`phi`] — adaptive φ-accrual crash presumption (suspicion level from
//!   the observed heartbeat inter-arrival distribution),
//! * [`exception`] — the user-defined exception registry (§2.3),
//! * [`detector`] — the classifier that turns a notification stream into
//!   [`detector::Detection`]s the workflow engine acts on, pluggable
//!   between the two presumption policies via
//!   [`detector::DetectorPolicy`];
//! * [`transport`] — a reorder-tolerant delivery buffer protecting the
//!   `Done`-without-`Task End` rule from message races.

pub mod api;
pub mod detector;
pub mod exception;
pub mod heartbeat;
pub mod host_health;
pub mod notify;
pub mod phi;
pub mod state;
pub mod transport;

pub use api::TaskNotifier;
pub use detector::{Detection, Detector, DetectorPolicy, SuspicionInfo};
pub use exception::{ExceptionDef, ExceptionRegistry};
pub use heartbeat::{BeatOutcome, HeartbeatMonitor, Liveness};
pub use host_health::{HostHealth, HostSignal};
pub use notify::{Envelope, Notification, TaskId};
pub use phi::{PhiAccrualDetector, PhiConfig};
pub use state::{TaskState, TaskStateMachine};
pub use transport::ReorderBuffer;
