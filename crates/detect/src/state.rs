//! The task state machine.
//!
//! §3 of the paper lists the states the engine derives from the notification
//! stream: *inactive, active, done, failed, exception*.  The machine is
//! deliberately strict — illegal transitions are programming errors in the
//! executor or classifier, so [`TaskStateMachine::transition`] returns a
//! typed error rather than silently re-ordering history.

use serde::{Deserialize, Serialize};

/// Observable state of a task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskState {
    /// Submitted (or not yet submitted) but not observed running.
    Inactive,
    /// Heartbeats / `TaskStart` observed; the task is executing.
    Active,
    /// Completed successfully (`Task End` then `Done`).
    Done,
    /// Crashed (`Done` without `Task End`, or heartbeat loss).
    Failed,
    /// Raised a user-defined exception.
    Exception,
}

impl TaskState {
    /// Terminal states admit no further transitions.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            TaskState::Done | TaskState::Failed | TaskState::Exception
        )
    }
}

impl std::fmt::Display for TaskState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TaskState::Inactive => "inactive",
            TaskState::Active => "active",
            TaskState::Done => "done",
            TaskState::Failed => "failed",
            TaskState::Exception => "exception",
        };
        f.write_str(s)
    }
}

/// Error returned on an illegal transition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IllegalTransition {
    /// State the machine was in.
    pub from: TaskState,
    /// State the caller tried to move to.
    pub to: TaskState,
}

impl std::fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "illegal task state transition {} -> {}",
            self.from, self.to
        )
    }
}

impl std::error::Error for IllegalTransition {}

/// A task attempt's state with transition validation and history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskStateMachine {
    current: TaskState,
    history: Vec<TaskState>,
}

impl Default for TaskStateMachine {
    fn default() -> Self {
        Self::new()
    }
}

impl TaskStateMachine {
    /// A fresh machine in `Inactive`.
    pub fn new() -> Self {
        TaskStateMachine {
            current: TaskState::Inactive,
            history: vec![TaskState::Inactive],
        }
    }

    /// Current state.
    pub fn current(&self) -> TaskState {
        self.current
    }

    /// Every state visited, in order (starts with `Inactive`).
    pub fn history(&self) -> &[TaskState] {
        &self.history
    }

    /// Whether moving `from → to` is legal.
    ///
    /// Legal moves: `Inactive → Active`; `Inactive/Active →` any terminal
    /// (a task can crash before ever being observed active); self-loops are
    /// illegal; terminals admit nothing.
    pub fn is_legal(from: TaskState, to: TaskState) -> bool {
        use TaskState::*;
        matches!(
            (from, to),
            (Inactive, Active) | (Inactive | Active, Done | Failed | Exception)
        )
    }

    /// Attempts a transition.
    pub fn transition(&mut self, to: TaskState) -> Result<(), IllegalTransition> {
        if Self::is_legal(self.current, to) {
            self.current = to;
            self.history.push(to);
            Ok(())
        } else {
            Err(IllegalTransition {
                from: self.current,
                to,
            })
        }
    }

    /// True once the attempt has reached a terminal state.
    pub fn is_settled(&self) -> bool {
        self.current.is_terminal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TaskState::*;

    #[test]
    fn happy_path() {
        let mut m = TaskStateMachine::new();
        assert_eq!(m.current(), Inactive);
        m.transition(Active).unwrap();
        m.transition(Done).unwrap();
        assert!(m.is_settled());
        assert_eq!(m.history(), &[Inactive, Active, Done]);
    }

    #[test]
    fn crash_before_active_is_legal() {
        // A task can fail at submission time, before any heartbeat arrives.
        let mut m = TaskStateMachine::new();
        m.transition(Failed).unwrap();
        assert!(m.is_settled());
    }

    #[test]
    fn exception_from_active() {
        let mut m = TaskStateMachine::new();
        m.transition(Active).unwrap();
        m.transition(Exception).unwrap();
        assert_eq!(m.current(), Exception);
    }

    #[test]
    fn terminal_states_are_absorbing() {
        for terminal in [Done, Failed, Exception] {
            let mut m = TaskStateMachine::new();
            m.transition(Active).unwrap();
            m.transition(terminal).unwrap();
            for next in [Inactive, Active, Done, Failed, Exception] {
                let err = m.transition(next).unwrap_err();
                assert_eq!(err.from, terminal);
                assert_eq!(err.to, next);
            }
        }
    }

    #[test]
    fn self_loops_illegal() {
        let mut m = TaskStateMachine::new();
        assert!(m.transition(Inactive).is_err());
        m.transition(Active).unwrap();
        assert!(m.transition(Active).is_err());
    }

    #[test]
    fn backward_moves_illegal() {
        let mut m = TaskStateMachine::new();
        m.transition(Active).unwrap();
        assert!(m.transition(Inactive).is_err());
    }

    #[test]
    fn legality_table_is_exhaustive() {
        use TaskState::*;
        let all = [Inactive, Active, Done, Failed, Exception];
        let mut legal_count = 0;
        for &from in &all {
            for &to in &all {
                if TaskStateMachine::is_legal(from, to) {
                    legal_count += 1;
                    assert!(!from.is_terminal(), "terminals admit nothing");
                    assert_ne!(from, to, "no self loops");
                }
            }
        }
        // Inactive→Active, Inactive→{D,F,E}, Active→{D,F,E} = 7 legal edges.
        assert_eq!(legal_count, 7);
    }

    #[test]
    fn display_strings_match_paper() {
        assert_eq!(Inactive.to_string(), "inactive");
        assert_eq!(Active.to_string(), "active");
        assert_eq!(Done.to_string(), "done");
        assert_eq!(Failed.to_string(), "failed");
        assert_eq!(Exception.to_string(), "exception");
    }

    #[test]
    fn error_display() {
        let e = IllegalTransition {
            from: Done,
            to: Active,
        };
        assert_eq!(
            e.to_string(),
            "illegal task state transition done -> active"
        );
    }
}
