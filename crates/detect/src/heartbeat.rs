//! Heartbeat-based crash presumption.
//!
//! A host crash, a network partition, and a machine rebooted by its owner
//! all look the same from the engine's desk: heartbeats stop.  The monitor
//! declares an attempt *presumed crashed* once no heartbeat has arrived for
//! `tolerance` × `interval` time units.  A late heartbeat after presumption
//! does not revive the attempt (the engine has already started recovery;
//! the original system relied on the job manager to reap orphans), but it
//! is *evidence the presumption was false* — [`HeartbeatMonitor::beat`]
//! reports it as [`BeatOutcome::Late`] and counts it, so false suspicions
//! are observable rather than silently discarded.

use std::collections::HashMap;

use crate::notify::TaskId;

/// Per-task heartbeat bookkeeping.
#[derive(Debug, Clone)]
struct Watch {
    interval: f64,
    tolerance: f64,
    last_seen: f64,
    last_seq: Option<u64>,
    presumed_dead: bool,
}

/// Liveness of a watch at the moment it was replaced (see
/// [`HeartbeatMonitor::watch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// The prior watch had not (yet) presumed the task crashed.
    Live,
    /// The prior watch had already presumed the task crashed — replacing
    /// it revives the task, and the caller must decide whether that is
    /// intended.
    PresumedDead,
}

/// Outcome of recording one heartbeat (see [`HeartbeatMonitor::beat`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeatOutcome {
    /// The beat was recorded; the watch's deadline moved forward.
    Accepted,
    /// The task was already presumed dead: the beat does not revive it,
    /// but it proves the presumption was false.  Counted by the monitor.
    Late,
    /// No watch exists for this task; the beat was ignored.
    Unwatched,
}

impl BeatOutcome {
    /// True only for [`BeatOutcome::Accepted`].
    pub fn is_accepted(self) -> bool {
        self == BeatOutcome::Accepted
    }
}

/// Watches heartbeat streams and reports tasks whose stream went silent.
#[derive(Debug, Clone, Default)]
pub struct HeartbeatMonitor {
    watches: HashMap<TaskId, Watch>,
    late_beats: u64,
}

impl HeartbeatMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts watching a task.  `interval` is the expected heartbeat period;
    /// the task is presumed crashed after `tolerance * interval` of silence
    /// (measured from `now` or from the last heartbeat).
    ///
    /// Re-registration is explicit: if the task was already watched, the
    /// prior watch is replaced and its [`Liveness`] returned — in
    /// particular [`Liveness::PresumedDead`] when the replaced watch had
    /// already presumed the task crashed, so a re-watch can never *silently*
    /// revive an attempt the engine believes is dead.  Returns `None` for a
    /// fresh registration.
    ///
    /// # Panics
    /// Panics unless `interval > 0` and `tolerance >= 1`.
    pub fn watch(
        &mut self,
        task: TaskId,
        interval: f64,
        tolerance: f64,
        now: f64,
    ) -> Option<Liveness> {
        assert!(interval > 0.0, "heartbeat interval must be positive");
        assert!(tolerance >= 1.0, "tolerance below one interval is nonsense");
        self.watches
            .insert(
                task,
                Watch {
                    interval,
                    tolerance,
                    last_seen: now,
                    last_seq: None,
                    presumed_dead: false,
                },
            )
            .map(|prior| {
                if prior.presumed_dead {
                    Liveness::PresumedDead
                } else {
                    Liveness::Live
                }
            })
    }

    /// Stops watching (attempt reached a terminal state through other means).
    pub fn unwatch(&mut self, task: TaskId) {
        self.watches.remove(&task);
    }

    /// Records a heartbeat.  Out-of-order sequence numbers are tolerated
    /// but do not move `last_seen` backwards.  A beat from a presumed-dead
    /// task is reported as [`BeatOutcome::Late`] and counted (the watch
    /// stays dead); a beat for an unknown task is [`BeatOutcome::Unwatched`].
    pub fn beat(&mut self, task: TaskId, seq: u64, now: f64) -> BeatOutcome {
        match self.watches.get_mut(&task) {
            Some(w) if !w.presumed_dead => {
                if w.last_seq.is_none_or(|s| seq >= s) {
                    w.last_seq = Some(seq);
                }
                if now > w.last_seen {
                    w.last_seen = now;
                }
                BeatOutcome::Accepted
            }
            Some(_) => {
                self.late_beats += 1;
                BeatOutcome::Late
            }
            None => BeatOutcome::Unwatched,
        }
    }

    /// Number of late beats seen (heartbeats from tasks already presumed
    /// dead) — each one is a presumption proven false after the fact.
    pub fn late_beats(&self) -> u64 {
        self.late_beats
    }

    /// Deadline at which this task will be presumed crashed if no further
    /// heartbeat arrives.  `None` if unwatched or already presumed dead.
    pub fn deadline(&self, task: TaskId) -> Option<f64> {
        self.watches
            .get(&task)
            .filter(|w| !w.presumed_dead)
            .map(|w| w.last_seen + w.interval * w.tolerance)
    }

    /// Sweeps all watches at time `now`, returning the tasks newly presumed
    /// crashed (each is reported exactly once).
    pub fn expired(&mut self, now: f64) -> Vec<TaskId> {
        let mut out: Vec<TaskId> = self
            .watches
            .iter_mut()
            .filter_map(|(task, w)| {
                if !w.presumed_dead && now >= w.last_seen + w.interval * w.tolerance {
                    w.presumed_dead = true;
                    Some(*task)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable(); // deterministic report order
        out
    }

    /// True if the task is currently watched and not presumed dead.
    pub fn is_live(&self, task: TaskId) -> bool {
        self.watches
            .get(&task)
            .map(|w| !w.presumed_dead)
            .unwrap_or(false)
    }

    /// Time of the last heartbeat (or the watch start), even after the
    /// task has been presumed dead — the silence at presumption time is
    /// `now - last_seen`.
    pub fn last_seen(&self, task: TaskId) -> Option<f64> {
        self.watches.get(&task).map(|w| w.last_seen)
    }

    /// Highest sequence number seen for a task.
    pub fn last_seq(&self, task: TaskId) -> Option<u64> {
        self.watches.get(&task).and_then(|w| w.last_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: TaskId = TaskId(1);
    const T2: TaskId = TaskId(2);

    #[test]
    fn silence_triggers_presumption() {
        let mut m = HeartbeatMonitor::new();
        m.watch(T1, 1.0, 3.0, 0.0);
        assert!(m.expired(2.9).is_empty());
        assert_eq!(m.expired(3.0), vec![T1]);
    }

    #[test]
    fn heartbeats_push_deadline_forward() {
        let mut m = HeartbeatMonitor::new();
        m.watch(T1, 1.0, 3.0, 0.0);
        assert!(m.beat(T1, 0, 1.0).is_accepted());
        assert!(m.beat(T1, 1, 2.0).is_accepted());
        assert_eq!(m.deadline(T1), Some(5.0));
        assert!(m.expired(4.9).is_empty());
        assert_eq!(m.expired(5.0), vec![T1]);
    }

    #[test]
    fn presumption_reported_once() {
        let mut m = HeartbeatMonitor::new();
        m.watch(T1, 1.0, 2.0, 0.0);
        assert_eq!(m.expired(10.0), vec![T1]);
        assert!(m.expired(20.0).is_empty(), "no duplicate reports");
        assert!(!m.is_live(T1));
    }

    #[test]
    fn late_heartbeat_after_presumption_is_distinct_and_counted() {
        let mut m = HeartbeatMonitor::new();
        m.watch(T1, 1.0, 2.0, 0.0);
        m.expired(10.0);
        assert_eq!(m.beat(T1, 5, 10.5), BeatOutcome::Late);
        assert_eq!(m.beat(T1, 6, 11.5), BeatOutcome::Late);
        assert_eq!(m.late_beats(), 2, "each late beat is counted");
        assert!(!m.is_live(T1), "a late beat never revives the attempt");
        assert_eq!(m.deadline(T1), None, "still no deadline after late beats");
    }

    #[test]
    fn rewatch_returns_prior_liveness_instead_of_silent_revival() {
        let mut m = HeartbeatMonitor::new();
        assert_eq!(m.watch(T1, 1.0, 3.0, 0.0), None, "fresh watch: no prior");
        assert_eq!(
            m.watch(T1, 1.0, 3.0, 1.0),
            Some(Liveness::Live),
            "re-watch of a live task discloses it was already watched"
        );
        assert_eq!(m.expired(10.0), vec![T1]);
        assert_eq!(
            m.watch(T1, 1.0, 3.0, 10.0),
            Some(Liveness::PresumedDead),
            "re-watch of a presumed-dead task must surface the prior \
             presumption, not silently revive the attempt"
        );
        assert!(m.is_live(T1), "the replacement watch is live going forward");
        assert_eq!(
            m.expired(20.0),
            vec![T1],
            "the replacement watch expires on its own schedule"
        );
    }

    #[test]
    fn unwatch_stops_reports() {
        let mut m = HeartbeatMonitor::new();
        m.watch(T1, 1.0, 2.0, 0.0);
        m.unwatch(T1);
        assert!(m.expired(100.0).is_empty());
        assert!(!m.is_live(T1));
    }

    #[test]
    fn multiple_tasks_tracked_independently() {
        let mut m = HeartbeatMonitor::new();
        m.watch(T1, 1.0, 2.0, 0.0);
        m.watch(T2, 5.0, 2.0, 0.0);
        m.beat(T2, 0, 1.0);
        assert_eq!(
            m.expired(3.0),
            vec![T1],
            "only the silent short-interval task"
        );
        assert!(m.is_live(T2));
        assert_eq!(m.expired(11.0), vec![T2]);
    }

    #[test]
    fn expired_reports_in_task_order() {
        let mut m = HeartbeatMonitor::new();
        m.watch(TaskId(9), 1.0, 1.0, 0.0);
        m.watch(TaskId(3), 1.0, 1.0, 0.0);
        m.watch(TaskId(5), 1.0, 1.0, 0.0);
        assert_eq!(m.expired(2.0), vec![TaskId(3), TaskId(5), TaskId(9)]);
    }

    #[test]
    fn seq_tracking_tolerates_reordering() {
        let mut m = HeartbeatMonitor::new();
        m.watch(T1, 1.0, 3.0, 0.0);
        m.beat(T1, 2, 1.0);
        m.beat(T1, 1, 1.5); // late, lower seq
        assert_eq!(m.last_seq(T1), Some(2));
        assert_eq!(m.deadline(T1), Some(4.5), "time still advanced");
    }

    #[test]
    fn beat_for_unwatched_task_rejected() {
        let mut m = HeartbeatMonitor::new();
        assert_eq!(m.beat(T1, 0, 1.0), BeatOutcome::Unwatched);
        assert_eq!(m.late_beats(), 0, "unwatched beats are not late beats");
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        HeartbeatMonitor::new().watch(T1, 0.0, 2.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "tolerance below one interval")]
    fn sub_one_tolerance_rejected() {
        HeartbeatMonitor::new().watch(T1, 1.0, 0.5, 0.0);
    }
}
