//! Task-side event notification API.
//!
//! In the original system a task links the failure-detection client library
//! and calls `globus_FDS_task_*` functions (`task_end`, `task_exception`,
//! `task_checkpoint`, …) to push event notifications back to the workflow
//! engine.  [`TaskNotifier`] is that API: one instance per task attempt,
//! producing [`Envelope`]s into any sink.  The simulated Grid executor uses
//! it to fabricate exactly the message sequences a real task would emit, and
//! the threaded executor hands it to user closures so *application code*
//! can raise user-defined exceptions just like the paper's tasks do.

use crate::notify::{Envelope, Notification, TaskId};

/// Sink that receives the notifications a task emits.
pub trait NotificationSink {
    /// Accepts one message.  Delivery semantics (delay, loss) belong to the
    /// transport, not to the task.
    fn send(&mut self, env: Envelope);
}

/// Any `FnMut(Envelope)` is a sink.
impl<F: FnMut(Envelope)> NotificationSink for F {
    fn send(&mut self, env: Envelope) {
        self(env)
    }
}

/// A growable buffer of envelopes — the simplest sink, handy in tests.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct VecSink(pub Vec<Envelope>);

impl NotificationSink for VecSink {
    fn send(&mut self, env: Envelope) {
        self.0.push(env);
    }
}

/// The task-side notification API for one task attempt.
///
/// Mirrors the call set described in §3/§4.3 of the paper: heartbeats are
/// emitted periodically while the task runs; `task_end` marks successful
/// application-level completion; `task_exception` raises a user-defined
/// exception; `task_checkpoint` announces a checkpoint and carries the
/// opaque recovery flag.
#[derive(Debug)]
pub struct TaskNotifier<S> {
    task: TaskId,
    host: String,
    sink: S,
    next_seq: u64,
    ended: bool,
}

impl<S: NotificationSink> TaskNotifier<S> {
    /// Binds the API to a task attempt running on `host`.
    pub fn new(task: TaskId, host: impl Into<String>, sink: S) -> Self {
        TaskNotifier {
            task,
            host: host.into(),
            sink,
            next_seq: 0,
            ended: false,
        }
    }

    fn emit(&mut self, at: f64, body: Notification) {
        let env = Envelope::new(self.task, self.host.clone(), at, body);
        self.sink.send(env);
    }

    /// Announces the task process has started (`Task Start`).
    pub fn task_start(&mut self, at: f64) {
        self.emit(at, Notification::TaskStart);
    }

    /// Emits one heartbeat; sequence numbers increase automatically.
    pub fn heartbeat(&mut self, at: f64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.emit(at, Notification::Heartbeat { seq });
    }

    /// Announces a checkpoint with an opaque recovery `flag`
    /// (`globus_FDS_task_checkpoint` in the original).
    pub fn task_checkpoint(&mut self, at: f64, flag: impl Into<String>) {
        self.emit(at, Notification::Checkpoint { flag: flag.into() });
    }

    /// Raises a user-defined exception.
    pub fn task_exception(&mut self, at: f64, name: impl Into<String>, detail: impl Into<String>) {
        self.emit(
            at,
            Notification::Exception {
                name: name.into(),
                detail: detail.into(),
            },
        );
    }

    /// Marks successful application-level completion (`Task End`).  May be
    /// called at most once.
    ///
    /// # Panics
    /// Panics on a second call — a task ending twice is a bug in the task.
    pub fn task_end(&mut self, at: f64) {
        assert!(!self.ended, "task_end called twice for {}", self.task);
        self.ended = true;
        self.emit(at, Notification::TaskEnd);
    }

    /// The job-manager-side `Done` event (process exit).  Exposed here so
    /// simulated executors can produce complete streams from one object.
    pub fn job_manager_done(&mut self, at: f64) {
        self.emit(at, Notification::Done);
    }

    /// Consumes the notifier, returning the sink.
    pub fn into_sink(self) -> S {
        self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successful_task_emits_canonical_sequence() {
        let mut n = TaskNotifier::new(TaskId(1), "bolas.isi.edu", VecSink::default());
        n.task_start(0.0);
        n.heartbeat(1.0);
        n.heartbeat(2.0);
        n.task_end(3.0);
        n.job_manager_done(3.1);
        let msgs = n.into_sink().0;
        assert_eq!(msgs.len(), 5);
        assert_eq!(msgs[0].body, Notification::TaskStart);
        assert_eq!(msgs[1].body, Notification::Heartbeat { seq: 0 });
        assert_eq!(msgs[2].body, Notification::Heartbeat { seq: 1 });
        assert_eq!(msgs[3].body, Notification::TaskEnd);
        assert_eq!(msgs[4].body, Notification::Done);
        assert!(msgs.iter().all(|m| m.task == TaskId(1)));
        assert!(msgs.iter().all(|m| m.host == "bolas.isi.edu"));
    }

    #[test]
    fn heartbeat_sequence_numbers_increase() {
        let mut n = TaskNotifier::new(TaskId(2), "h", VecSink::default());
        for t in 0..5 {
            n.heartbeat(t as f64);
        }
        let seqs: Vec<u64> = n
            .into_sink()
            .0
            .iter()
            .filter_map(|e| match e.body {
                Notification::Heartbeat { seq } => Some(seq),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn exception_carries_name_and_detail() {
        let mut n = TaskNotifier::new(TaskId(3), "h", VecSink::default());
        n.task_exception(5.0, "disk_full", "3MB left");
        let msgs = n.into_sink().0;
        assert_eq!(
            msgs[0].body,
            Notification::Exception {
                name: "disk_full".into(),
                detail: "3MB left".into()
            }
        );
        assert_eq!(msgs[0].sent_at, 5.0);
    }

    #[test]
    fn checkpoint_flag_roundtrips() {
        let mut n = TaskNotifier::new(TaskId(4), "h", VecSink::default());
        n.task_checkpoint(1.0, "ckpt-17");
        match &n.into_sink().0[0].body {
            Notification::Checkpoint { flag } => assert_eq!(flag, "ckpt-17"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "task_end called twice")]
    fn double_task_end_panics() {
        let mut n = TaskNotifier::new(TaskId(5), "h", VecSink::default());
        n.task_end(1.0);
        n.task_end(2.0);
    }

    #[test]
    fn closure_sink_works() {
        let mut seen = 0usize;
        {
            let sink = |_env: Envelope| seen += 1;
            let mut n = TaskNotifier::new(TaskId(6), "h", sink);
            n.task_start(0.0);
            n.task_end(1.0);
        }
        assert_eq!(seen, 2);
    }
}
