//! Notification messages.
//!
//! Grid nodes report task progress to the workflow engine through two
//! channels (report \[18\]): periodic **heartbeats**, and **event
//! notifications** raised either by the job manager (`Done` — the process
//! exited) or by the task itself through the task-side API (`Task Start`,
//! `Task End`, `Exception`, `Checkpoint`).  The crucial protocol detail the
//! engine's crash detection hangs on (paper §4.1): *`Done` without a
//! preceding `Task End` means the task crashed.*
//!
//! Messages are serialisable (serde/JSON) so tests can inspect the exact
//! wire form and the engine checkpoint can persist in-flight state.

use serde::{Deserialize, Serialize};

/// Identifier of one task *attempt* as known to the detection service.
///
/// Retries and replicas are distinct attempts with distinct `TaskId`s — each
/// attempt has its own heartbeat stream and its own crash/exception fate,
/// which is what lets the engine cancel losing replicas individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u64);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// The body of a notification message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Notification {
    /// Periodic liveness signal carrying a monotonically increasing sequence
    /// number (gaps are tolerated; only silence is significant).
    Heartbeat {
        /// Sequence number within this task attempt's heartbeat stream.
        seq: u64,
    },
    /// The task process started executing on the Grid node.
    TaskStart,
    /// The task finished its application-level work successfully.  Must
    /// precede `Done` for the attempt to count as completed.
    TaskEnd,
    /// The task raised a user-defined exception (task-specific failure).
    Exception {
        /// Exception name as registered in the workflow (e.g. `disk_full`).
        name: String,
        /// Free-form detail for diagnostics.
        detail: String,
    },
    /// The task announced it is checkpoint-enabled and produced a checkpoint.
    /// The opaque `flag` is what the engine hands back on restart so the
    /// task resumes from this state (the Libckpt integration of §4.3).
    Checkpoint {
        /// Opaque recovery cookie round-tripped by the engine.
        flag: String,
    },
    /// The job manager observed the process exit.  Terminal from the node's
    /// point of view; classification depends on what preceded it.
    Done,
}

impl Notification {
    /// True for messages only the job manager can emit.
    pub fn is_job_manager_event(&self) -> bool {
        matches!(self, Notification::Done)
    }

    /// True for messages emitted through the task-side API.
    pub fn is_task_event(&self) -> bool {
        !self.is_job_manager_event() && !matches!(self, Notification::Heartbeat { .. })
    }
}

/// A notification together with its delivery metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// The task attempt this message concerns.
    pub task: TaskId,
    /// Hostname of the Grid node that produced it.
    pub host: String,
    /// Simulation time the message was *sent* (delivery may add delay).
    pub sent_at: f64,
    /// Message body.
    pub body: Notification,
}

impl Envelope {
    /// Convenience constructor.
    pub fn new(task: TaskId, host: impl Into<String>, sent_at: f64, body: Notification) -> Self {
        Envelope {
            task,
            host: host.into(),
            sent_at,
            body,
        }
    }

    /// Serialises to the JSON wire format.
    pub fn to_wire(&self) -> String {
        serde_json::to_string(self).expect("envelope serialisation is infallible")
    }

    /// Parses the JSON wire format.
    pub fn from_wire(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip_all_variants() {
        let bodies = vec![
            Notification::Heartbeat { seq: 42 },
            Notification::TaskStart,
            Notification::TaskEnd,
            Notification::Exception {
                name: "disk_full".into(),
                detail: "only 3MB left".into(),
            },
            Notification::Checkpoint {
                flag: "ckpt-0007".into(),
            },
            Notification::Done,
        ];
        for body in bodies {
            let env = Envelope::new(TaskId(7), "bolas.isi.edu", 12.5, body.clone());
            let wire = env.to_wire();
            let back = Envelope::from_wire(&wire).unwrap();
            assert_eq!(back, env);
            assert_eq!(back.body, body);
        }
    }

    #[test]
    fn wire_format_is_json() {
        let env = Envelope::new(TaskId(1), "h", 0.0, Notification::TaskEnd);
        let v: serde_json::Value = serde_json::from_str(&env.to_wire()).unwrap();
        assert_eq!(v["task"], 1);
        assert_eq!(v["host"], "h");
    }

    #[test]
    fn malformed_wire_rejected() {
        assert!(Envelope::from_wire("{not json").is_err());
        assert!(Envelope::from_wire("{}").is_err());
    }

    #[test]
    fn event_source_classification() {
        assert!(Notification::Done.is_job_manager_event());
        assert!(!Notification::TaskEnd.is_job_manager_event());
        assert!(Notification::TaskEnd.is_task_event());
        assert!(Notification::Checkpoint { flag: "f".into() }.is_task_event());
        assert!(!Notification::Heartbeat { seq: 0 }.is_task_event());
        assert!(!Notification::Heartbeat { seq: 0 }.is_job_manager_event());
    }

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId(3).to_string(), "task#3");
    }
}
