//! Per-host aggregation of live failure-detector evidence.
//!
//! The detector watches *task attempts*; placement decisions are about
//! *hosts*.  [`HostHealth`] is the bridge: the engine folds each live
//! attempt's φ level and heartbeat jitter into the host it runs on, and
//! the scheduler reads the per-host maxima.  Max-aggregation is
//! order-independent, so the view is deterministic no matter what order
//! the engine's `HashMap` of attempts iterates in, and a `BTreeMap` keys
//! the result so enumeration is stable too.

use std::collections::BTreeMap;

/// One host's aggregated live evidence.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HostSignal {
    /// Highest live φ over attempts currently on the host.
    pub phi: f64,
    /// Highest heartbeat-interval standard deviation over those attempts.
    pub jitter: f64,
    /// Number of live watched attempts folded in.
    pub attempts: usize,
}

/// A snapshot of per-host detector evidence at one instant.
#[derive(Debug, Clone, Default)]
pub struct HostHealth {
    hosts: BTreeMap<String, HostSignal>,
}

impl HostHealth {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one live attempt's evidence into its host (max-aggregation;
    /// `None` signals contribute nothing to that component).
    pub fn observe(&mut self, host: &str, phi: Option<f64>, jitter: Option<f64>) {
        let s = self.hosts.entry(host.to_string()).or_default();
        if let Some(p) = phi {
            s.phi = s.phi.max(p);
        }
        if let Some(j) = jitter {
            s.jitter = s.jitter.max(j);
        }
        s.attempts += 1;
    }

    /// The aggregated signal for a host (zeroes when nothing live runs
    /// there — no evidence is good evidence).
    pub fn signal(&self, host: &str) -> HostSignal {
        self.hosts.get(host).copied().unwrap_or_default()
    }

    /// Hosts with at least one live attempt, in stable (sorted) order.
    pub fn hosts(&self) -> impl Iterator<Item = (&str, &HostSignal)> {
        self.hosts.iter().map(|(h, s)| (h.as_str(), s))
    }

    /// True when no attempt has been folded in.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_is_max_and_order_independent() {
        let fold = |order: &[(f64, f64)]| {
            let mut h = HostHealth::new();
            for &(p, j) in order {
                h.observe("h1", Some(p), Some(j));
            }
            h.signal("h1")
        };
        let a = fold(&[(1.0, 0.2), (3.0, 0.1), (2.0, 0.5)]);
        let b = fold(&[(2.0, 0.5), (1.0, 0.2), (3.0, 0.1)]);
        assert_eq!(a, b);
        assert_eq!(a.phi, 3.0);
        assert_eq!(a.jitter, 0.5);
        assert_eq!(a.attempts, 3);
    }

    #[test]
    fn missing_signals_contribute_nothing() {
        let mut h = HostHealth::new();
        h.observe("h1", None, None);
        let s = h.signal("h1");
        assert_eq!((s.phi, s.jitter, s.attempts), (0.0, 0.0, 1));
        assert_eq!(h.signal("unknown"), HostSignal::default());
    }

    #[test]
    fn hosts_enumerate_sorted() {
        let mut h = HostHealth::new();
        assert!(h.is_empty());
        h.observe("z", Some(1.0), None);
        h.observe("a", Some(2.0), None);
        let names: Vec<&str> = h.hosts().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "z"]);
        assert!(!h.is_empty());
    }
}
