//! Reorder-tolerant notification delivery.
//!
//! The wide-area transport under the detection service can reorder
//! messages (two UDP notifications racing different paths).  Most
//! reorderings are harmless — heartbeat sequence gaps are tolerated — but
//! one is not: if the job manager's `Done` overtakes the task's
//! `Task End`, the classifier sees "Done without Task End" and declares a
//! **crash for a task that succeeded** (§4.1's rule read against a
//! reordered stream).  The cost is a spurious retry of a finished task.
//!
//! [`ReorderBuffer`] restores per-task send order.  `settle_delay` is the
//! transport's **maximum delivery delay bound B**: a message sent at `s`
//! is held until `s + B`, by which point every message sent at or before
//! `s` must have arrived — so releasing in send order is safe.  Messages
//! sent at the same instant are ordered causally (application events such
//! as `Task End` before the job manager's `Done`: the process exits
//! *after* its last application event) and then by arrival.  The price is
//! up to `B` of added detection latency.  Exact duplicates
//! (retransmissions) are suppressed while the original is still buffered.

use std::collections::VecDeque;

use crate::notify::Envelope;

/// Buffers notifications briefly and releases them in send order per task.
#[derive(Debug, Default)]
pub struct ReorderBuffer {
    settle_delay: f64,
    /// Held messages: `(release_at, arrival_seq, envelope)`.
    held: VecDeque<(f64, u64, Envelope)>,
    arrivals: u64,
}

impl ReorderBuffer {
    /// A buffer holding each message for `settle_delay` time units.
    ///
    /// # Panics
    /// Panics on a negative delay.
    pub fn new(settle_delay: f64) -> Self {
        assert!(
            settle_delay >= 0.0 && settle_delay.is_finite(),
            "settle_delay must be finite and non-negative"
        );
        ReorderBuffer {
            settle_delay,
            held: VecDeque::new(),
            arrivals: 0,
        }
    }

    /// Accepts one received message at time `now`.  Returns `false` if the
    /// message was suppressed as a duplicate of one still buffered.
    ///
    /// The message becomes due at `sent_at + settle_delay` (never before
    /// receipt — a late message whose due time already passed releases at
    /// the next [`ReorderBuffer::release`], with ordering then only
    /// best-effort, which is all an underestimated bound can give).
    pub fn accept(&mut self, env: Envelope, now: f64) -> bool {
        if self.held.iter().any(|(_, _, held)| *held == env) {
            return false; // retransmission of a buffered message
        }
        let seq = self.arrivals;
        self.arrivals += 1;
        let due = (env.sent_at + self.settle_delay).max(now);
        self.held.push_back((due, seq, env));
        true
    }

    /// Releases every message due by `now`, sorted by
    /// `(sent_at, causal rank, arrival order)` where the causal rank puts
    /// task-side events (`Task End`, `Exception`, …) before the job
    /// manager's `Done` at equal send times — the process exits *after*
    /// its final application event, even if both were stamped in the same
    /// instant.
    pub fn release(&mut self, now: f64) -> Vec<Envelope> {
        fn causal_rank(env: &Envelope) -> u8 {
            match env.body {
                crate::notify::Notification::Done => 1,
                _ => 0,
            }
        }
        let mut due: Vec<(f64, u64, Envelope)> = Vec::new();
        let mut keep: VecDeque<(f64, u64, Envelope)> = VecDeque::new();
        for item in self.held.drain(..) {
            if item.0 <= now {
                due.push(item);
            } else {
                keep.push_back(item);
            }
        }
        self.held = keep;
        due.sort_by(|a, b| {
            a.2.sent_at
                .total_cmp(&b.2.sent_at)
                .then_with(|| causal_rank(&a.2).cmp(&causal_rank(&b.2)))
                .then_with(|| a.1.cmp(&b.1))
        });
        due.into_iter().map(|(_, _, env)| env).collect()
    }

    /// The earliest time a buffered message becomes due (`None` if empty).
    pub fn next_due(&self) -> Option<f64> {
        self.held
            .iter()
            .map(|(at, _, _)| *at)
            .min_by(f64::total_cmp)
    }

    /// Number of messages currently held.
    pub fn len(&self) -> usize {
        self.held.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.held.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{Detection, Detector};
    use crate::notify::{Notification, TaskId};

    const T: TaskId = TaskId(1);

    fn env(body: Notification, sent_at: f64) -> Envelope {
        Envelope::new(T, "host", sent_at, body)
    }

    #[test]
    fn in_order_messages_pass_through_after_delay() {
        let mut buf = ReorderBuffer::new(0.5);
        assert!(buf.accept(env(Notification::TaskStart, 1.0), 1.0));
        assert!(buf.release(1.4).is_empty(), "still settling");
        let out = buf.release(1.5);
        assert_eq!(out.len(), 1);
        assert!(buf.is_empty());
    }

    #[test]
    fn due_time_is_anchored_to_send_time() {
        // B = 2: a message sent at 5 and received at 5.1 is held until 7,
        // because a slower sibling sent at 5 could arrive as late as 7.
        let mut buf = ReorderBuffer::new(2.0);
        buf.accept(env(Notification::Done, 5.0), 5.1);
        assert_eq!(buf.next_due(), Some(7.0));
        assert!(buf.release(6.9).is_empty());
        // The sibling arrives at 6.8; both release together, app event first.
        buf.accept(env(Notification::TaskEnd, 5.0), 6.8);
        let out = buf.release(7.0);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].body, Notification::TaskEnd);
        assert_eq!(out[1].body, Notification::Done);
    }

    #[test]
    fn late_message_past_its_due_releases_immediately() {
        // Underestimated bound: a message older than B on arrival is due
        // at once (best effort).
        let mut buf = ReorderBuffer::new(1.0);
        buf.accept(env(Notification::TaskStart, 0.0), 10.0);
        assert_eq!(buf.next_due(), Some(10.0));
        assert_eq!(buf.release(10.0).len(), 1);
    }

    #[test]
    fn reordered_done_and_task_end_are_restored() {
        // Sent: TaskEnd at 5.0, Done at 5.1.  Received swapped.
        let mut buf = ReorderBuffer::new(0.5);
        buf.accept(env(Notification::Done, 5.1), 5.2); // arrived first!
        buf.accept(env(Notification::TaskEnd, 5.0), 5.3);
        let out = buf.release(6.0);
        assert_eq!(out[0].body, Notification::TaskEnd, "send order restored");
        assert_eq!(out[1].body, Notification::Done);
    }

    #[test]
    fn restoration_prevents_misclassification() {
        // Without the buffer, Done-before-TaskEnd classifies as a crash.
        let mut plain = Detector::new();
        plain.register_task(T, 0.0, 1.0, 0.0);
        let d1 = plain.observe(&env(Notification::Done, 5.1), 5.2);
        assert!(matches!(d1[0], Detection::Crashed { .. }), "the §4.1 trap");

        // With the buffer, the same arrivals classify as completion.
        let mut buffered = Detector::new();
        buffered.register_task(T, 0.0, 1.0, 0.0);
        let mut buf = ReorderBuffer::new(0.5);
        buf.accept(env(Notification::Done, 5.1), 5.2);
        buf.accept(env(Notification::TaskEnd, 5.0), 5.3);
        let mut detections = Vec::new();
        for e in buf.release(6.0) {
            detections.extend(buffered.observe(&e, 6.0));
        }
        assert!(matches!(detections[0], Detection::Completed { .. }));
    }

    #[test]
    fn duplicates_suppressed_while_buffered() {
        let mut buf = ReorderBuffer::new(1.0);
        let e = env(Notification::Heartbeat { seq: 3 }, 2.0);
        assert!(buf.accept(e.clone(), 2.1));
        assert!(!buf.accept(e.clone(), 2.2), "retransmission dropped");
        assert_eq!(buf.len(), 1);
        buf.release(3.2);
        // After release the same message is accepted again (late duplicate
        // detection is the Detector's job — it ignores settled tasks).
        assert!(buf.accept(e, 4.0));
    }

    #[test]
    fn partial_release_respects_deadlines() {
        let mut buf = ReorderBuffer::new(1.0);
        buf.accept(env(Notification::Heartbeat { seq: 0 }, 0.0), 0.0);
        buf.accept(env(Notification::Heartbeat { seq: 1 }, 1.0), 1.0);
        assert_eq!(buf.next_due(), Some(1.0));
        let first = buf.release(1.0);
        assert_eq!(first.len(), 1);
        assert_eq!(buf.next_due(), Some(2.0));
        assert_eq!(buf.release(2.0).len(), 1);
        assert_eq!(buf.next_due(), None);
    }

    #[test]
    fn zero_delay_degenerates_to_sorting_the_batch() {
        let mut buf = ReorderBuffer::new(0.0);
        buf.accept(env(Notification::Done, 3.0), 5.0);
        buf.accept(env(Notification::TaskEnd, 2.0), 5.0);
        let out = buf.release(5.0);
        assert_eq!(out[0].sent_at, 2.0);
        assert_eq!(out[1].sent_at, 3.0);
    }

    #[test]
    fn same_instant_done_sorts_after_app_events_regardless_of_arrival() {
        let mut buf = ReorderBuffer::new(0.0);
        buf.accept(env(Notification::Done, 7.0), 7.1); // Done arrives first
        buf.accept(env(Notification::TaskEnd, 7.0), 7.2);
        let out = buf.release(8.0);
        assert_eq!(out[0].body, Notification::TaskEnd, "causal rank wins");
        assert_eq!(out[1].body, Notification::Done);
    }

    #[test]
    #[should_panic(expected = "settle_delay must be finite")]
    fn negative_delay_rejected() {
        let _ = ReorderBuffer::new(-1.0);
    }
}
