//! User-defined exceptions (§2.3).
//!
//! Grid-WFS lets users *define* failures in terms of the task context — the
//! linear solver that fails to converge in 30 minutes, the simulation that
//! runs out of scratch disk.  An [`ExceptionDef`] names such a failure and
//! records how it should be treated; the [`ExceptionRegistry`] is consulted
//! by the detector when a task raises an exception so that unknown names are
//! flagged (typo in the WPDL vs. the task code is a classic integration bug)
//! and known ones carry their metadata to the engine.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// How an exception propagates when no workflow-level handler catches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Severity {
    /// Treat like a task crash: task-level masking (retry/replica) may
    /// still apply.  E.g. a transient `network_congestion`.
    Recoverable,
    /// The task can never succeed by retrying (e.g. `out_of_memory` with
    /// the same algorithm); only a workflow-level handler helps.
    Fatal,
}

/// A named, task-specific failure definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExceptionDef {
    /// Name used by both the WPDL handler clause and the task-side API.
    pub name: String,
    /// Human description, carried into logs.
    pub description: String,
    /// Propagation behaviour without a handler.
    pub severity: Severity,
}

impl ExceptionDef {
    /// A recoverable exception.
    pub fn recoverable(name: impl Into<String>, description: impl Into<String>) -> Self {
        ExceptionDef {
            name: name.into(),
            description: description.into(),
            severity: Severity::Recoverable,
        }
    }

    /// A fatal exception.
    pub fn fatal(name: impl Into<String>, description: impl Into<String>) -> Self {
        ExceptionDef {
            name: name.into(),
            description: description.into(),
            severity: Severity::Fatal,
        }
    }
}

/// Registry of user-defined exceptions for one workflow.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExceptionRegistry {
    defs: HashMap<String, ExceptionDef>,
}

/// Error registering a duplicate exception name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateException(pub String);

impl std::fmt::Display for DuplicateException {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exception '{}' is already registered", self.0)
    }
}
impl std::error::Error for DuplicateException {}

impl ExceptionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a definition; names are unique.
    pub fn register(&mut self, def: ExceptionDef) -> Result<(), DuplicateException> {
        if self.defs.contains_key(&def.name) {
            return Err(DuplicateException(def.name));
        }
        self.defs.insert(def.name.clone(), def);
        Ok(())
    }

    /// Looks a definition up by name.
    pub fn get(&self, name: &str) -> Option<&ExceptionDef> {
        self.defs.get(name)
    }

    /// True if `name` was registered.
    pub fn is_known(&self, name: &str) -> bool {
        self.defs.contains_key(name)
    }

    /// Number of registered exceptions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// All names in sorted order (deterministic iteration for tests/logs).
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.defs.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = ExceptionRegistry::new();
        reg.register(ExceptionDef::fatal("disk_full", "scratch disk exhausted"))
            .unwrap();
        reg.register(ExceptionDef::recoverable("net_congestion", "slow link"))
            .unwrap();
        assert_eq!(reg.len(), 2);
        assert!(reg.is_known("disk_full"));
        assert_eq!(reg.get("disk_full").unwrap().severity, Severity::Fatal);
        assert_eq!(
            reg.get("net_congestion").unwrap().severity,
            Severity::Recoverable
        );
        assert!(!reg.is_known("oom"));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut reg = ExceptionRegistry::new();
        reg.register(ExceptionDef::fatal("disk_full", "a")).unwrap();
        let err = reg
            .register(ExceptionDef::recoverable("disk_full", "b"))
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "exception 'disk_full' is already registered"
        );
        // Original definition untouched.
        assert_eq!(reg.get("disk_full").unwrap().description, "a");
    }

    #[test]
    fn names_sorted() {
        let mut reg = ExceptionRegistry::new();
        for n in ["zeta", "alpha", "mid"] {
            reg.register(ExceptionDef::fatal(n, "")).unwrap();
        }
        assert_eq!(reg.names(), vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn empty_registry() {
        let reg = ExceptionRegistry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.names(), Vec::<&str>::new());
    }
}
