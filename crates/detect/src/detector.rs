//! The failure classifier.
//!
//! [`Detector`] consumes the notification stream for a set of task attempts
//! and produces [`Detection`]s — the classified outcomes the workflow engine
//! acts on.  The classification rules come straight from the paper:
//!
//! * `Done` **with** a preceding `Task End` ⇒ the attempt **completed**;
//! * `Done` **without** `Task End` ⇒ **task crash** (§4.1: "by receiving
//!   Done without Task End notification");
//! * `Exception{name}` ⇒ **user-defined exception**;
//! * heartbeat silence past the tolerance ⇒ **presumed crash** (host crash,
//!   network partition, reboot — indistinguishable and treated alike);
//! * `Checkpoint{flag}` ⇒ the attempt is checkpoint-enabled; the flag is
//!   retained so the engine can hand it back on restart (§4.3).

use std::collections::HashMap;

use crate::exception::ExceptionRegistry;
use crate::heartbeat::{BeatOutcome, HeartbeatMonitor, Liveness};
use crate::notify::{Envelope, Notification, TaskId};
use crate::phi::{PhiAccrualDetector, PhiConfig};
use crate::state::{TaskState, TaskStateMachine};

/// Which presumption strategy the detector runs.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectorPolicy {
    /// Classic fixed timeout: presume a crash after `tolerance × interval`
    /// of silence.  `tolerance: None` uses each activity's own tolerance;
    /// `Some(t)` overrides it globally (the CLI's `--detector timeout:t`).
    FixedTimeout {
        /// Optional global tolerance override.
        tolerance: Option<f64>,
    },
    /// Adaptive φ-accrual detection (see [`crate::phi`]).
    PhiAccrual(PhiConfig),
}

impl Default for DetectorPolicy {
    fn default() -> Self {
        DetectorPolicy::FixedTimeout { tolerance: None }
    }
}

/// What the detector knew at the instant it presumed a crash — journalled
/// by the engine as `suspicion_raised`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuspicionInfo {
    /// Heartbeat silence at presumption time.
    pub silence: f64,
    /// Suspicion level φ at presumption time (`None` under fixed timeout).
    pub phi: Option<f64>,
}

/// Policy-dispatching heartbeat monitor.
#[derive(Debug)]
enum Monitor {
    Fixed {
        inner: HeartbeatMonitor,
        tolerance: Option<f64>,
    },
    Phi(PhiAccrualDetector),
}

impl Default for Monitor {
    fn default() -> Self {
        Monitor::Fixed {
            inner: HeartbeatMonitor::new(),
            tolerance: None,
        }
    }
}

impl Monitor {
    fn from_policy(policy: DetectorPolicy) -> Self {
        match policy {
            DetectorPolicy::FixedTimeout { tolerance } => Monitor::Fixed {
                inner: HeartbeatMonitor::new(),
                tolerance,
            },
            DetectorPolicy::PhiAccrual(config) => Monitor::Phi(PhiAccrualDetector::new(config)),
        }
    }

    fn watch(&mut self, task: TaskId, interval: f64, tolerance: f64, now: f64) -> Option<Liveness> {
        match self {
            Monitor::Fixed {
                inner,
                tolerance: o,
            } => inner.watch(task, interval, o.unwrap_or(tolerance), now),
            Monitor::Phi(phi) => phi.watch(task, interval, tolerance, now),
        }
    }

    fn unwatch(&mut self, task: TaskId) {
        match self {
            Monitor::Fixed { inner, .. } => inner.unwatch(task),
            Monitor::Phi(phi) => phi.unwatch(task),
        }
    }

    fn beat(&mut self, task: TaskId, seq: u64, now: f64) -> BeatOutcome {
        match self {
            Monitor::Fixed { inner, .. } => inner.beat(task, seq, now),
            Monitor::Phi(phi) => phi.beat(task, seq, now),
        }
    }

    fn deadline(&self, task: TaskId) -> Option<f64> {
        match self {
            Monitor::Fixed { inner, .. } => inner.deadline(task),
            Monitor::Phi(phi) => phi.deadline(task),
        }
    }

    fn expired(&mut self, now: f64) -> Vec<TaskId> {
        match self {
            Monitor::Fixed { inner, .. } => inner.expired(now),
            Monitor::Phi(phi) => phi.expired(now),
        }
    }

    fn last_seen(&self, task: TaskId) -> Option<f64> {
        match self {
            Monitor::Fixed { inner, .. } => inner.last_seen(task),
            Monitor::Phi(phi) => phi.last_seen(task),
        }
    }

    fn phi(&self, task: TaskId, now: f64) -> Option<f64> {
        match self {
            Monitor::Fixed { .. } => None,
            Monitor::Phi(phi) => phi.phi(task, now),
        }
    }

    fn jitter(&self, task: TaskId) -> Option<f64> {
        match self {
            Monitor::Fixed { .. } => None,
            Monitor::Phi(phi) => phi.jitter(task),
        }
    }

    fn late_beats(&self) -> u64 {
        match self {
            Monitor::Fixed { inner, .. } => inner.late_beats(),
            Monitor::Phi(phi) => phi.late_beats(),
        }
    }
}

/// Why a crash was declared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashReason {
    /// The job manager reported process exit but the task never emitted
    /// `Task End` — it died mid-computation.
    DoneWithoutTaskEnd,
    /// Heartbeats stopped arriving (host crash / partition / reboot).
    HeartbeatLoss,
}

/// A classified task outcome delivered to the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Detection {
    /// The attempt finished its work successfully.
    Completed {
        /// Which attempt.
        task: TaskId,
        /// Detection time.
        at: f64,
    },
    /// The attempt crashed.
    Crashed {
        /// Which attempt.
        task: TaskId,
        /// Detection time.
        at: f64,
        /// How the crash was inferred.
        reason: CrashReason,
    },
    /// The attempt raised a user-defined exception.
    ExceptionRaised {
        /// Which attempt.
        task: TaskId,
        /// Detection time.
        at: f64,
        /// Exception name.
        name: String,
        /// Free-form detail from the task.
        detail: String,
        /// Whether the name was registered in the workflow's registry.
        known: bool,
    },
    /// The attempt recorded a checkpoint (informational; the engine stores
    /// the flag for restart).
    CheckpointRecorded {
        /// Which attempt.
        task: TaskId,
        /// Detection time.
        at: f64,
        /// Opaque recovery cookie.
        flag: String,
    },
    /// A terminal message (`Done` or `Exception`) arrived from an attempt
    /// *already presumed dead* — the presumption was false and the attempt
    /// is a zombie.  Reported once per attempt (informational: the engine
    /// journals it as `zombie_completion` and discards it; the attempt
    /// stays settled and the node must never settle twice through it).
    Zombie {
        /// Which attempt.
        task: TaskId,
        /// Arrival time of the zombie message.
        at: f64,
        /// What arrived: `"done"` or `"exception"`.
        body: &'static str,
    },
    /// A heartbeat arrived from an attempt already presumed dead —
    /// evidence the suspicion was false (informational; journalled as
    /// `late_heartbeat`).
    LateHeartbeat {
        /// Which attempt.
        task: TaskId,
        /// Arrival time.
        at: f64,
        /// Heartbeat sequence number.
        seq: u64,
    },
}

impl Detection {
    /// The attempt this detection concerns.
    pub fn task(&self) -> TaskId {
        match self {
            Detection::Completed { task, .. }
            | Detection::Crashed { task, .. }
            | Detection::ExceptionRaised { task, .. }
            | Detection::CheckpointRecorded { task, .. }
            | Detection::Zombie { task, .. }
            | Detection::LateHeartbeat { task, .. } => *task,
        }
    }

    /// True for detections that settle the attempt (no further events
    /// expected).
    pub fn is_terminal(&self) -> bool {
        !matches!(
            self,
            Detection::CheckpointRecorded { .. }
                | Detection::Zombie { .. }
                | Detection::LateHeartbeat { .. }
        )
    }
}

#[derive(Debug)]
struct TaskRecord {
    machine: TaskStateMachine,
    saw_task_end: bool,
    checkpoint_flag: Option<String>,
    checkpoint_enabled: bool,
    /// Settled by heartbeat-loss presumption (not by observed messages).
    presumed_dead: bool,
    /// A zombie terminal message has already been reported for this attempt.
    zombie_reported: bool,
    /// What the detector knew at presumption time.
    suspicion: Option<SuspicionInfo>,
}

impl TaskRecord {
    fn new() -> Self {
        TaskRecord {
            machine: TaskStateMachine::new(),
            saw_task_end: false,
            checkpoint_flag: None,
            checkpoint_enabled: false,
            presumed_dead: false,
            zombie_reported: false,
            suspicion: None,
        }
    }
}

/// Failure detection service instance (one per workflow engine).
#[derive(Debug, Default)]
pub struct Detector {
    records: HashMap<TaskId, TaskRecord>,
    monitor: Monitor,
    registry: ExceptionRegistry,
}

impl Detector {
    /// A detector with no registered exceptions.
    pub fn new() -> Self {
        Self::default()
    }

    /// A detector using the workflow's exception registry.
    pub fn with_registry(registry: ExceptionRegistry) -> Self {
        Detector {
            records: HashMap::new(),
            monitor: Monitor::default(),
            registry,
        }
    }

    /// Replaces the presumption policy.  Call before any task is
    /// registered: existing heartbeat watches do not carry over.
    pub fn set_policy(&mut self, policy: DetectorPolicy) {
        self.monitor = Monitor::from_policy(policy);
    }

    /// The exception registry in use.
    pub fn registry(&self) -> &ExceptionRegistry {
        &self.registry
    }

    /// Total late heartbeats (beats from presumed-dead attempts) seen.
    pub fn late_beats(&self) -> u64 {
        self.monitor.late_beats()
    }

    /// What the detector knew when it presumed this attempt crashed
    /// (`None` if the attempt was never presumed dead).
    pub fn suspicion(&self, task: TaskId) -> Option<SuspicionInfo> {
        self.records.get(&task).and_then(|r| r.suspicion)
    }

    /// *Live* suspicion level φ for a watched attempt at `now` — available
    /// before any presumption, which is what makes pre-emptive decisions
    /// possible.  `None` under the fixed-timeout policy or for unwatched
    /// attempts.
    pub fn phi_level(&self, task: TaskId, now: f64) -> Option<f64> {
        self.monitor.phi(task, now)
    }

    /// Heartbeat-interval standard deviation for a watched attempt —
    /// the jitter term of the resilience-aware host score.  `None` under
    /// the fixed-timeout policy or before the window has samples.
    pub fn jitter(&self, task: TaskId) -> Option<f64> {
        self.monitor.jitter(task)
    }

    /// Registers a task attempt before submission.  `hb_interval` /
    /// `hb_tolerance` configure crash presumption; pass `hb_interval = 0`
    /// to disable heartbeat watching for this attempt.
    ///
    /// Returns the prior watch's [`Liveness`] when this registration
    /// replaced an existing heartbeat watch for the same task id (see
    /// [`HeartbeatMonitor::watch`]); the engine records that as a
    /// `watch_replaced` trace event.
    pub fn register_task(
        &mut self,
        task: TaskId,
        hb_interval: f64,
        hb_tolerance: f64,
        now: f64,
    ) -> Option<Liveness> {
        self.records.insert(task, TaskRecord::new());
        if hb_interval > 0.0 {
            self.monitor.watch(task, hb_interval, hb_tolerance, now)
        } else {
            None
        }
    }

    /// Current observed state of an attempt (`None` if unregistered).
    pub fn state(&self, task: TaskId) -> Option<TaskState> {
        self.records.get(&task).map(|r| r.machine.current())
    }

    /// Latest checkpoint flag recorded for an attempt, if any.  Survives the
    /// attempt's failure — that is the point: the engine reads it when
    /// building the retry submission.
    pub fn checkpoint_flag(&self, task: TaskId) -> Option<&str> {
        self.records
            .get(&task)
            .and_then(|r| r.checkpoint_flag.as_deref())
    }

    /// True once the attempt has announced it is checkpoint-enabled.
    pub fn is_checkpoint_enabled(&self, task: TaskId) -> bool {
        self.records
            .get(&task)
            .map(|r| r.checkpoint_enabled)
            .unwrap_or(false)
    }

    /// Earliest heartbeat deadline across live attempts — the next time the
    /// caller should invoke [`Detector::sweep`].  `None` when nothing is
    /// being watched.
    pub fn next_deadline(&self) -> Option<f64> {
        self.records
            .keys()
            .filter_map(|&t| self.monitor.deadline(t))
            .min_by(|a, b| a.partial_cmp(b).expect("deadlines are finite"))
    }

    fn mark_active(record: &mut TaskRecord) {
        if record.machine.current() == TaskState::Inactive {
            record
                .machine
                .transition(TaskState::Active)
                .expect("Inactive -> Active is legal");
        }
    }

    /// Processes one delivered notification.  `now` is the delivery time
    /// (send time plus transport delay).  Returns the detections (0 or 1;
    /// a `Vec` for uniformity with [`Detector::sweep`]).
    pub fn observe(&mut self, env: &Envelope, now: f64) -> Vec<Detection> {
        let Some(record) = self.records.get_mut(&env.task) else {
            return Vec::new(); // unknown attempt: stale or misrouted
        };
        if record.machine.is_settled() {
            // Late message after terminal classification.  When the attempt
            // was settled by *presumption* (not by an observed terminal
            // message), later evidence means the suspicion was false: the
            // attempt is a zombie, and the engine must get to journal that
            // instead of the message vanishing silently.  The attempt stays
            // settled either way — fencing, not revival.
            if record.presumed_dead {
                match &env.body {
                    Notification::Heartbeat { seq } => {
                        self.monitor.beat(env.task, *seq, now); // counted as Late
                        return vec![Detection::LateHeartbeat {
                            task: env.task,
                            at: now,
                            seq: *seq,
                        }];
                    }
                    Notification::Done | Notification::Exception { .. }
                        if !record.zombie_reported =>
                    {
                        record.zombie_reported = true;
                        let body = match &env.body {
                            Notification::Done => "done",
                            _ => "exception",
                        };
                        return vec![Detection::Zombie {
                            task: env.task,
                            at: now,
                            body,
                        }];
                    }
                    _ => {}
                }
            }
            return Vec::new();
        }
        match &env.body {
            Notification::Heartbeat { seq } => {
                Self::mark_active(record);
                self.monitor.beat(env.task, *seq, now);
                Vec::new()
            }
            Notification::TaskStart => {
                Self::mark_active(record);
                Vec::new()
            }
            Notification::TaskEnd => {
                Self::mark_active(record);
                record.saw_task_end = true;
                Vec::new()
            }
            Notification::Checkpoint { flag } => {
                Self::mark_active(record);
                record.checkpoint_enabled = true;
                record.checkpoint_flag = Some(flag.clone());
                vec![Detection::CheckpointRecorded {
                    task: env.task,
                    at: now,
                    flag: flag.clone(),
                }]
            }
            Notification::Exception { name, detail } => {
                record
                    .machine
                    .transition(TaskState::Exception)
                    .expect("non-terminal -> Exception is legal");
                self.monitor.unwatch(env.task);
                vec![Detection::ExceptionRaised {
                    task: env.task,
                    at: now,
                    name: name.clone(),
                    detail: detail.clone(),
                    known: self.registry.is_known(name),
                }]
            }
            Notification::Done => {
                let det = if record.saw_task_end {
                    record
                        .machine
                        .transition(TaskState::Done)
                        .expect("non-terminal -> Done is legal");
                    Detection::Completed {
                        task: env.task,
                        at: now,
                    }
                } else {
                    record
                        .machine
                        .transition(TaskState::Failed)
                        .expect("non-terminal -> Failed is legal");
                    Detection::Crashed {
                        task: env.task,
                        at: now,
                        reason: CrashReason::DoneWithoutTaskEnd,
                    }
                };
                self.monitor.unwatch(env.task);
                vec![det]
            }
        }
    }

    /// Checks heartbeat deadlines at time `now`, declaring presumed crashes.
    pub fn sweep(&mut self, now: f64) -> Vec<Detection> {
        let expired = self.monitor.expired(now);
        let mut out = Vec::with_capacity(expired.len());
        for task in expired {
            let silence = now - self.monitor.last_seen(task).unwrap_or(now);
            let phi = self.monitor.phi(task, now);
            let record = self
                .records
                .get_mut(&task)
                .expect("watched tasks are registered");
            if record.machine.is_settled() {
                continue;
            }
            record
                .machine
                .transition(TaskState::Failed)
                .expect("non-terminal -> Failed is legal");
            record.presumed_dead = true;
            record.suspicion = Some(SuspicionInfo { silence, phi });
            out.push(Detection::Crashed {
                task,
                at: now,
                reason: CrashReason::HeartbeatLoss,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exception::ExceptionDef;

    const T: TaskId = TaskId(1);

    fn env(body: Notification, at: f64) -> Envelope {
        Envelope::new(T, "host", at, body)
    }

    fn detector() -> Detector {
        let mut d = Detector::new();
        d.register_task(T, 1.0, 3.0, 0.0);
        d
    }

    #[test]
    fn task_end_then_done_is_completed() {
        let mut d = detector();
        assert!(d
            .observe(&env(Notification::TaskStart, 0.1), 0.1)
            .is_empty());
        assert!(d.observe(&env(Notification::TaskEnd, 5.0), 5.0).is_empty());
        let dets = d.observe(&env(Notification::Done, 5.1), 5.1);
        assert_eq!(dets, vec![Detection::Completed { task: T, at: 5.1 }]);
        assert_eq!(d.state(T), Some(TaskState::Done));
    }

    #[test]
    fn done_without_task_end_is_crash() {
        let mut d = detector();
        d.observe(&env(Notification::TaskStart, 0.1), 0.1);
        let dets = d.observe(&env(Notification::Done, 3.0), 3.0);
        assert_eq!(
            dets,
            vec![Detection::Crashed {
                task: T,
                at: 3.0,
                reason: CrashReason::DoneWithoutTaskEnd
            }]
        );
        assert_eq!(d.state(T), Some(TaskState::Failed));
    }

    #[test]
    fn heartbeat_loss_presumes_crash() {
        let mut d = detector();
        d.observe(&env(Notification::Heartbeat { seq: 0 }, 1.0), 1.0);
        assert!(d.sweep(3.9).is_empty());
        let dets = d.sweep(4.0);
        assert_eq!(
            dets,
            vec![Detection::Crashed {
                task: T,
                at: 4.0,
                reason: CrashReason::HeartbeatLoss
            }]
        );
        assert_eq!(d.state(T), Some(TaskState::Failed));
    }

    #[test]
    fn heartbeats_defer_presumption() {
        let mut d = detector();
        for i in 0..10 {
            d.observe(&env(Notification::Heartbeat { seq: i }, i as f64), i as f64);
            assert!(d.sweep(i as f64 + 0.5).is_empty());
        }
        assert!(d.sweep(11.9).is_empty());
        assert_eq!(d.sweep(12.0).len(), 1);
    }

    #[test]
    fn exception_classified_with_registry_knowledge() {
        let mut reg = ExceptionRegistry::new();
        reg.register(ExceptionDef::fatal("disk_full", "")).unwrap();
        let mut d = Detector::with_registry(reg);
        d.register_task(T, 1.0, 3.0, 0.0);
        let dets = d.observe(
            &env(
                Notification::Exception {
                    name: "disk_full".into(),
                    detail: "x".into(),
                },
                2.0,
            ),
            2.0,
        );
        match &dets[0] {
            Detection::ExceptionRaised { name, known, .. } => {
                assert_eq!(name, "disk_full");
                assert!(known);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(d.state(T), Some(TaskState::Exception));
    }

    #[test]
    fn unknown_exception_flagged() {
        let mut d = detector();
        let dets = d.observe(
            &env(
                Notification::Exception {
                    name: "tyop".into(),
                    detail: String::new(),
                },
                1.0,
            ),
            1.0,
        );
        match &dets[0] {
            Detection::ExceptionRaised { known, .. } => assert!(!known),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn checkpoint_flag_survives_crash() {
        let mut d = detector();
        let dets = d.observe(
            &env(
                Notification::Checkpoint {
                    flag: "ckpt-3".into(),
                },
                2.0,
            ),
            2.0,
        );
        assert_eq!(
            dets,
            vec![Detection::CheckpointRecorded {
                task: T,
                at: 2.0,
                flag: "ckpt-3".into()
            }]
        );
        assert!(d.is_checkpoint_enabled(T));
        d.observe(&env(Notification::Done, 3.0), 3.0); // crash
        assert_eq!(d.state(T), Some(TaskState::Failed));
        assert_eq!(d.checkpoint_flag(T), Some("ckpt-3"));
    }

    #[test]
    fn later_checkpoint_replaces_earlier() {
        let mut d = detector();
        d.observe(
            &env(Notification::Checkpoint { flag: "c1".into() }, 1.0),
            1.0,
        );
        d.observe(
            &env(Notification::Checkpoint { flag: "c2".into() }, 2.0),
            2.0,
        );
        assert_eq!(d.checkpoint_flag(T), Some("c2"));
    }

    #[test]
    fn late_messages_after_terminal_ignored() {
        let mut d = detector();
        d.observe(&env(Notification::Done, 1.0), 1.0); // crash classification
        let dets = d.observe(&env(Notification::TaskEnd, 1.1), 1.1);
        assert!(dets.is_empty());
        let dets = d.observe(&env(Notification::Done, 1.2), 1.2);
        assert!(dets.is_empty(), "duplicate Done ignored");
        assert_eq!(
            d.state(T),
            Some(TaskState::Failed),
            "classification is sticky"
        );
    }

    #[test]
    fn unknown_task_messages_ignored() {
        let mut d = Detector::new();
        let dets = d.observe(&env(Notification::Done, 1.0), 1.0);
        assert!(dets.is_empty());
        assert_eq!(d.state(T), None);
    }

    #[test]
    fn sweep_after_done_reports_nothing() {
        let mut d = detector();
        d.observe(&env(Notification::TaskEnd, 0.5), 0.5);
        d.observe(&env(Notification::Done, 0.6), 0.6);
        assert!(
            d.sweep(100.0).is_empty(),
            "completed task not presumed dead"
        );
    }

    #[test]
    fn tasks_without_heartbeat_watching() {
        let mut d = Detector::new();
        d.register_task(T, 0.0, 1.0, 0.0); // no watching
        assert!(d.sweep(1e9).is_empty());
        assert_eq!(d.next_deadline(), None);
    }

    #[test]
    fn next_deadline_tracks_earliest() {
        let mut d = Detector::new();
        d.register_task(TaskId(1), 1.0, 3.0, 0.0);
        d.register_task(TaskId(2), 5.0, 2.0, 0.0);
        assert_eq!(d.next_deadline(), Some(3.0));
        d.observe(
            &Envelope::new(TaskId(1), "h", 2.0, Notification::Heartbeat { seq: 0 }),
            2.0,
        );
        assert_eq!(d.next_deadline(), Some(5.0), "task 1 deferred past task 2");
    }

    #[test]
    fn detection_accessors() {
        let c = Detection::Completed { task: T, at: 1.0 };
        assert_eq!(c.task(), T);
        assert!(c.is_terminal());
        let k = Detection::CheckpointRecorded {
            task: T,
            at: 1.0,
            flag: "f".into(),
        };
        assert!(!k.is_terminal());
        let z = Detection::Zombie {
            task: T,
            at: 1.0,
            body: "done",
        };
        assert_eq!(z.task(), T);
        assert!(!z.is_terminal(), "zombies never settle anything");
        let l = Detection::LateHeartbeat {
            task: T,
            at: 1.0,
            seq: 3,
        };
        assert!(!l.is_terminal());
    }

    #[test]
    fn zombie_done_after_presumption_surfaces_once() {
        let mut d = detector();
        d.observe(&env(Notification::Heartbeat { seq: 0 }, 1.0), 1.0);
        assert_eq!(d.sweep(4.0).len(), 1, "presumed dead");
        // The delayed terminal stream now straggles in.
        assert!(
            d.observe(&env(Notification::TaskEnd, 5.0), 5.0).is_empty(),
            "TaskEnd alone is not a completion"
        );
        let dets = d.observe(&env(Notification::Done, 5.1), 5.1);
        assert_eq!(
            dets,
            vec![Detection::Zombie {
                task: T,
                at: 5.1,
                body: "done"
            }]
        );
        assert!(
            d.observe(&env(Notification::Done, 5.2), 5.2).is_empty(),
            "a zombie is reported once per attempt"
        );
        assert_eq!(
            d.state(T),
            Some(TaskState::Failed),
            "the zombie never un-settles the attempt"
        );
    }

    #[test]
    fn zombie_exception_after_presumption_surfaces() {
        let mut d = detector();
        assert_eq!(d.sweep(3.0).len(), 1);
        let dets = d.observe(
            &env(
                Notification::Exception {
                    name: "late".into(),
                    detail: String::new(),
                },
                4.0,
            ),
            4.0,
        );
        assert_eq!(
            dets,
            vec![Detection::Zombie {
                task: T,
                at: 4.0,
                body: "exception"
            }]
        );
    }

    #[test]
    fn late_heartbeat_after_presumption_surfaces_and_counts() {
        let mut d = detector();
        assert_eq!(d.sweep(3.0).len(), 1);
        let dets = d.observe(&env(Notification::Heartbeat { seq: 7 }, 3.5), 3.5);
        assert_eq!(
            dets,
            vec![Detection::LateHeartbeat {
                task: T,
                at: 3.5,
                seq: 7
            }]
        );
        assert_eq!(d.late_beats(), 1);
        assert_eq!(
            d.observe(&env(Notification::Heartbeat { seq: 8 }, 3.6), 3.6)
                .len(),
            1,
            "every late beat surfaces"
        );
        assert_eq!(d.late_beats(), 2);
    }

    #[test]
    fn duplicate_done_after_real_completion_is_not_a_zombie() {
        let mut d = detector();
        d.observe(&env(Notification::TaskEnd, 1.0), 1.0);
        assert_eq!(d.observe(&env(Notification::Done, 1.1), 1.1).len(), 1);
        assert!(
            d.observe(&env(Notification::Done, 1.2), 1.2).is_empty(),
            "a duplicated Done after observed completion is mere noise"
        );
    }

    #[test]
    fn suspicion_info_recorded_at_presumption() {
        let mut d = detector();
        d.observe(&env(Notification::Heartbeat { seq: 0 }, 1.0), 1.0);
        assert_eq!(d.suspicion(T), None, "no suspicion before presumption");
        d.sweep(4.5);
        let info = d.suspicion(T).expect("recorded at presumption");
        assert!(
            (info.silence - 3.5).abs() < 1e-9,
            "silence {}",
            info.silence
        );
        assert_eq!(info.phi, None, "fixed timeout has no phi level");
    }

    #[test]
    fn phi_policy_end_to_end() {
        let mut d = Detector::new();
        d.set_policy(DetectorPolicy::PhiAccrual(PhiConfig {
            threshold: 4.0,
            window: 16,
            min_samples: 4,
        }));
        d.register_task(T, 1.0, 3.0, 0.0);
        let mut t = 0.0;
        for k in 0..10u64 {
            t += 1.0;
            d.observe(&env(Notification::Heartbeat { seq: k }, t), t);
        }
        // Warm window of regular beats: deadline is adaptive, tighter than
        // the fixed 3.0 tolerance would allow.
        let dl = d.next_deadline().expect("watched");
        assert!(dl < t + 3.0, "adaptive deadline {dl} tightens on {t}+3");
        let dets = d.sweep(dl);
        assert_eq!(dets.len(), 1, "silence past the phi deadline presumes");
        let info = d.suspicion(T).expect("suspicion recorded");
        let phi = info.phi.expect("phi policy records the level");
        assert!(phi > 2.0, "phi at presumption: {phi}");
    }

    #[test]
    fn fixed_timeout_tolerance_override() {
        let mut d = Detector::new();
        d.set_policy(DetectorPolicy::FixedTimeout {
            tolerance: Some(10.0),
        });
        d.register_task(T, 1.0, 3.0, 0.0);
        assert_eq!(
            d.next_deadline(),
            Some(10.0),
            "override wins over the per-activity tolerance"
        );
    }
}
