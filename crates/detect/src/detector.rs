//! The failure classifier.
//!
//! [`Detector`] consumes the notification stream for a set of task attempts
//! and produces [`Detection`]s — the classified outcomes the workflow engine
//! acts on.  The classification rules come straight from the paper:
//!
//! * `Done` **with** a preceding `Task End` ⇒ the attempt **completed**;
//! * `Done` **without** `Task End` ⇒ **task crash** (§4.1: "by receiving
//!   Done without Task End notification");
//! * `Exception{name}` ⇒ **user-defined exception**;
//! * heartbeat silence past the tolerance ⇒ **presumed crash** (host crash,
//!   network partition, reboot — indistinguishable and treated alike);
//! * `Checkpoint{flag}` ⇒ the attempt is checkpoint-enabled; the flag is
//!   retained so the engine can hand it back on restart (§4.3).

use std::collections::HashMap;

use crate::exception::ExceptionRegistry;
use crate::heartbeat::{HeartbeatMonitor, Liveness};
use crate::notify::{Envelope, Notification, TaskId};
use crate::state::{TaskState, TaskStateMachine};

/// Why a crash was declared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashReason {
    /// The job manager reported process exit but the task never emitted
    /// `Task End` — it died mid-computation.
    DoneWithoutTaskEnd,
    /// Heartbeats stopped arriving (host crash / partition / reboot).
    HeartbeatLoss,
}

/// A classified task outcome delivered to the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Detection {
    /// The attempt finished its work successfully.
    Completed {
        /// Which attempt.
        task: TaskId,
        /// Detection time.
        at: f64,
    },
    /// The attempt crashed.
    Crashed {
        /// Which attempt.
        task: TaskId,
        /// Detection time.
        at: f64,
        /// How the crash was inferred.
        reason: CrashReason,
    },
    /// The attempt raised a user-defined exception.
    ExceptionRaised {
        /// Which attempt.
        task: TaskId,
        /// Detection time.
        at: f64,
        /// Exception name.
        name: String,
        /// Free-form detail from the task.
        detail: String,
        /// Whether the name was registered in the workflow's registry.
        known: bool,
    },
    /// The attempt recorded a checkpoint (informational; the engine stores
    /// the flag for restart).
    CheckpointRecorded {
        /// Which attempt.
        task: TaskId,
        /// Detection time.
        at: f64,
        /// Opaque recovery cookie.
        flag: String,
    },
}

impl Detection {
    /// The attempt this detection concerns.
    pub fn task(&self) -> TaskId {
        match self {
            Detection::Completed { task, .. }
            | Detection::Crashed { task, .. }
            | Detection::ExceptionRaised { task, .. }
            | Detection::CheckpointRecorded { task, .. } => *task,
        }
    }

    /// True for detections that settle the attempt (no further events
    /// expected).
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Detection::CheckpointRecorded { .. })
    }
}

#[derive(Debug)]
struct TaskRecord {
    machine: TaskStateMachine,
    saw_task_end: bool,
    checkpoint_flag: Option<String>,
    checkpoint_enabled: bool,
}

impl TaskRecord {
    fn new() -> Self {
        TaskRecord {
            machine: TaskStateMachine::new(),
            saw_task_end: false,
            checkpoint_flag: None,
            checkpoint_enabled: false,
        }
    }
}

/// Failure detection service instance (one per workflow engine).
#[derive(Debug, Default)]
pub struct Detector {
    records: HashMap<TaskId, TaskRecord>,
    monitor: HeartbeatMonitor,
    registry: ExceptionRegistry,
}

impl Detector {
    /// A detector with no registered exceptions.
    pub fn new() -> Self {
        Self::default()
    }

    /// A detector using the workflow's exception registry.
    pub fn with_registry(registry: ExceptionRegistry) -> Self {
        Detector {
            records: HashMap::new(),
            monitor: HeartbeatMonitor::new(),
            registry,
        }
    }

    /// The exception registry in use.
    pub fn registry(&self) -> &ExceptionRegistry {
        &self.registry
    }

    /// Registers a task attempt before submission.  `hb_interval` /
    /// `hb_tolerance` configure crash presumption; pass `hb_interval = 0`
    /// to disable heartbeat watching for this attempt.
    ///
    /// Returns the prior watch's [`Liveness`] when this registration
    /// replaced an existing heartbeat watch for the same task id (see
    /// [`HeartbeatMonitor::watch`]); the engine records that as a
    /// `watch_replaced` trace event.
    pub fn register_task(
        &mut self,
        task: TaskId,
        hb_interval: f64,
        hb_tolerance: f64,
        now: f64,
    ) -> Option<Liveness> {
        self.records.insert(task, TaskRecord::new());
        if hb_interval > 0.0 {
            self.monitor.watch(task, hb_interval, hb_tolerance, now)
        } else {
            None
        }
    }

    /// Current observed state of an attempt (`None` if unregistered).
    pub fn state(&self, task: TaskId) -> Option<TaskState> {
        self.records.get(&task).map(|r| r.machine.current())
    }

    /// Latest checkpoint flag recorded for an attempt, if any.  Survives the
    /// attempt's failure — that is the point: the engine reads it when
    /// building the retry submission.
    pub fn checkpoint_flag(&self, task: TaskId) -> Option<&str> {
        self.records
            .get(&task)
            .and_then(|r| r.checkpoint_flag.as_deref())
    }

    /// True once the attempt has announced it is checkpoint-enabled.
    pub fn is_checkpoint_enabled(&self, task: TaskId) -> bool {
        self.records
            .get(&task)
            .map(|r| r.checkpoint_enabled)
            .unwrap_or(false)
    }

    /// Earliest heartbeat deadline across live attempts — the next time the
    /// caller should invoke [`Detector::sweep`].  `None` when nothing is
    /// being watched.
    pub fn next_deadline(&self) -> Option<f64> {
        self.records
            .keys()
            .filter_map(|&t| self.monitor.deadline(t))
            .min_by(|a, b| a.partial_cmp(b).expect("deadlines are finite"))
    }

    fn mark_active(record: &mut TaskRecord) {
        if record.machine.current() == TaskState::Inactive {
            record
                .machine
                .transition(TaskState::Active)
                .expect("Inactive -> Active is legal");
        }
    }

    /// Processes one delivered notification.  `now` is the delivery time
    /// (send time plus transport delay).  Returns the detections (0 or 1;
    /// a `Vec` for uniformity with [`Detector::sweep`]).
    pub fn observe(&mut self, env: &Envelope, now: f64) -> Vec<Detection> {
        let Some(record) = self.records.get_mut(&env.task) else {
            return Vec::new(); // unknown attempt: stale or misrouted
        };
        if record.machine.is_settled() {
            return Vec::new(); // late message after terminal classification
        }
        match &env.body {
            Notification::Heartbeat { seq } => {
                Self::mark_active(record);
                self.monitor.beat(env.task, *seq, now);
                Vec::new()
            }
            Notification::TaskStart => {
                Self::mark_active(record);
                Vec::new()
            }
            Notification::TaskEnd => {
                Self::mark_active(record);
                record.saw_task_end = true;
                Vec::new()
            }
            Notification::Checkpoint { flag } => {
                Self::mark_active(record);
                record.checkpoint_enabled = true;
                record.checkpoint_flag = Some(flag.clone());
                vec![Detection::CheckpointRecorded {
                    task: env.task,
                    at: now,
                    flag: flag.clone(),
                }]
            }
            Notification::Exception { name, detail } => {
                record
                    .machine
                    .transition(TaskState::Exception)
                    .expect("non-terminal -> Exception is legal");
                self.monitor.unwatch(env.task);
                vec![Detection::ExceptionRaised {
                    task: env.task,
                    at: now,
                    name: name.clone(),
                    detail: detail.clone(),
                    known: self.registry.is_known(name),
                }]
            }
            Notification::Done => {
                let det = if record.saw_task_end {
                    record
                        .machine
                        .transition(TaskState::Done)
                        .expect("non-terminal -> Done is legal");
                    Detection::Completed {
                        task: env.task,
                        at: now,
                    }
                } else {
                    record
                        .machine
                        .transition(TaskState::Failed)
                        .expect("non-terminal -> Failed is legal");
                    Detection::Crashed {
                        task: env.task,
                        at: now,
                        reason: CrashReason::DoneWithoutTaskEnd,
                    }
                };
                self.monitor.unwatch(env.task);
                vec![det]
            }
        }
    }

    /// Checks heartbeat deadlines at time `now`, declaring presumed crashes.
    pub fn sweep(&mut self, now: f64) -> Vec<Detection> {
        let expired = self.monitor.expired(now);
        let mut out = Vec::with_capacity(expired.len());
        for task in expired {
            let record = self
                .records
                .get_mut(&task)
                .expect("watched tasks are registered");
            if record.machine.is_settled() {
                continue;
            }
            record
                .machine
                .transition(TaskState::Failed)
                .expect("non-terminal -> Failed is legal");
            out.push(Detection::Crashed {
                task,
                at: now,
                reason: CrashReason::HeartbeatLoss,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exception::ExceptionDef;

    const T: TaskId = TaskId(1);

    fn env(body: Notification, at: f64) -> Envelope {
        Envelope::new(T, "host", at, body)
    }

    fn detector() -> Detector {
        let mut d = Detector::new();
        d.register_task(T, 1.0, 3.0, 0.0);
        d
    }

    #[test]
    fn task_end_then_done_is_completed() {
        let mut d = detector();
        assert!(d
            .observe(&env(Notification::TaskStart, 0.1), 0.1)
            .is_empty());
        assert!(d.observe(&env(Notification::TaskEnd, 5.0), 5.0).is_empty());
        let dets = d.observe(&env(Notification::Done, 5.1), 5.1);
        assert_eq!(dets, vec![Detection::Completed { task: T, at: 5.1 }]);
        assert_eq!(d.state(T), Some(TaskState::Done));
    }

    #[test]
    fn done_without_task_end_is_crash() {
        let mut d = detector();
        d.observe(&env(Notification::TaskStart, 0.1), 0.1);
        let dets = d.observe(&env(Notification::Done, 3.0), 3.0);
        assert_eq!(
            dets,
            vec![Detection::Crashed {
                task: T,
                at: 3.0,
                reason: CrashReason::DoneWithoutTaskEnd
            }]
        );
        assert_eq!(d.state(T), Some(TaskState::Failed));
    }

    #[test]
    fn heartbeat_loss_presumes_crash() {
        let mut d = detector();
        d.observe(&env(Notification::Heartbeat { seq: 0 }, 1.0), 1.0);
        assert!(d.sweep(3.9).is_empty());
        let dets = d.sweep(4.0);
        assert_eq!(
            dets,
            vec![Detection::Crashed {
                task: T,
                at: 4.0,
                reason: CrashReason::HeartbeatLoss
            }]
        );
        assert_eq!(d.state(T), Some(TaskState::Failed));
    }

    #[test]
    fn heartbeats_defer_presumption() {
        let mut d = detector();
        for i in 0..10 {
            d.observe(&env(Notification::Heartbeat { seq: i }, i as f64), i as f64);
            assert!(d.sweep(i as f64 + 0.5).is_empty());
        }
        assert!(d.sweep(11.9).is_empty());
        assert_eq!(d.sweep(12.0).len(), 1);
    }

    #[test]
    fn exception_classified_with_registry_knowledge() {
        let mut reg = ExceptionRegistry::new();
        reg.register(ExceptionDef::fatal("disk_full", "")).unwrap();
        let mut d = Detector::with_registry(reg);
        d.register_task(T, 1.0, 3.0, 0.0);
        let dets = d.observe(
            &env(
                Notification::Exception {
                    name: "disk_full".into(),
                    detail: "x".into(),
                },
                2.0,
            ),
            2.0,
        );
        match &dets[0] {
            Detection::ExceptionRaised { name, known, .. } => {
                assert_eq!(name, "disk_full");
                assert!(known);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(d.state(T), Some(TaskState::Exception));
    }

    #[test]
    fn unknown_exception_flagged() {
        let mut d = detector();
        let dets = d.observe(
            &env(
                Notification::Exception {
                    name: "tyop".into(),
                    detail: String::new(),
                },
                1.0,
            ),
            1.0,
        );
        match &dets[0] {
            Detection::ExceptionRaised { known, .. } => assert!(!known),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn checkpoint_flag_survives_crash() {
        let mut d = detector();
        let dets = d.observe(
            &env(
                Notification::Checkpoint {
                    flag: "ckpt-3".into(),
                },
                2.0,
            ),
            2.0,
        );
        assert_eq!(
            dets,
            vec![Detection::CheckpointRecorded {
                task: T,
                at: 2.0,
                flag: "ckpt-3".into()
            }]
        );
        assert!(d.is_checkpoint_enabled(T));
        d.observe(&env(Notification::Done, 3.0), 3.0); // crash
        assert_eq!(d.state(T), Some(TaskState::Failed));
        assert_eq!(d.checkpoint_flag(T), Some("ckpt-3"));
    }

    #[test]
    fn later_checkpoint_replaces_earlier() {
        let mut d = detector();
        d.observe(
            &env(Notification::Checkpoint { flag: "c1".into() }, 1.0),
            1.0,
        );
        d.observe(
            &env(Notification::Checkpoint { flag: "c2".into() }, 2.0),
            2.0,
        );
        assert_eq!(d.checkpoint_flag(T), Some("c2"));
    }

    #[test]
    fn late_messages_after_terminal_ignored() {
        let mut d = detector();
        d.observe(&env(Notification::Done, 1.0), 1.0); // crash classification
        let dets = d.observe(&env(Notification::TaskEnd, 1.1), 1.1);
        assert!(dets.is_empty());
        let dets = d.observe(&env(Notification::Done, 1.2), 1.2);
        assert!(dets.is_empty(), "duplicate Done ignored");
        assert_eq!(
            d.state(T),
            Some(TaskState::Failed),
            "classification is sticky"
        );
    }

    #[test]
    fn unknown_task_messages_ignored() {
        let mut d = Detector::new();
        let dets = d.observe(&env(Notification::Done, 1.0), 1.0);
        assert!(dets.is_empty());
        assert_eq!(d.state(T), None);
    }

    #[test]
    fn sweep_after_done_reports_nothing() {
        let mut d = detector();
        d.observe(&env(Notification::TaskEnd, 0.5), 0.5);
        d.observe(&env(Notification::Done, 0.6), 0.6);
        assert!(
            d.sweep(100.0).is_empty(),
            "completed task not presumed dead"
        );
    }

    #[test]
    fn tasks_without_heartbeat_watching() {
        let mut d = Detector::new();
        d.register_task(T, 0.0, 1.0, 0.0); // no watching
        assert!(d.sweep(1e9).is_empty());
        assert_eq!(d.next_deadline(), None);
    }

    #[test]
    fn next_deadline_tracks_earliest() {
        let mut d = Detector::new();
        d.register_task(TaskId(1), 1.0, 3.0, 0.0);
        d.register_task(TaskId(2), 5.0, 2.0, 0.0);
        assert_eq!(d.next_deadline(), Some(3.0));
        d.observe(
            &Envelope::new(TaskId(1), "h", 2.0, Notification::Heartbeat { seq: 0 }),
            2.0,
        );
        assert_eq!(d.next_deadline(), Some(5.0), "task 1 deferred past task 2");
    }

    #[test]
    fn detection_accessors() {
        let c = Detection::Completed { task: T, at: 1.0 };
        assert_eq!(c.task(), T);
        assert!(c.is_terminal());
        let k = Detection::CheckpointRecorded {
            task: T,
            at: 1.0,
            flag: "f".into(),
        };
        assert!(!k.is_terminal());
    }
}
