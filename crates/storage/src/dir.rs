//! Per-file directory backend: the PR-4 state-dir layout behind the
//! [`Storage`] trait.

use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use gridwfs_chaos::{relock, write_atomic_batch, StateFs};

use crate::{CountersSnapshot, Op, Storage, StorageCounters};

/// One file per record, named exactly like the record, mutated through the
/// crash-atomic `write_atomic_batch` helper (tmp + `sync_all` + rename per
/// file, one parent-dir fsync per batch).  Kept for compatibility — tests
/// and operators that inspect `job-*.meta` files directly — and as the
/// bench baseline the WAL is measured against.
///
/// Still built on the `StateFs` seam so scripted filesystems (`FailAt`,
/// rename-less fs) keep working; record-level fault injection lives in
/// [`crate::ChaosStorage`] like every other backend.
pub struct DirStorage {
    fs: Arc<dyn StateFs>,
    dir: PathBuf,
    counters: StorageCounters,
    /// Serializes `apply` so `Op::Check` preconditions are evaluated
    /// atomically with the batch they guard (the other backends get this
    /// for free from their table lock).
    commit: Mutex<()>,
}

impl DirStorage {
    /// Open (creating if needed) `dir` as a per-file record store.
    pub fn new(fs: Arc<dyn StateFs>, dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs.create_dir_all(&dir)?;
        Ok(DirStorage {
            fs,
            dir,
            counters: StorageCounters::default(),
            commit: Mutex::new(()),
        })
    }

    /// The backing directory (tests poke files in it directly).
    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Rename with a copy+remove fallback for filesystems that cannot
    /// rename (folded in from `recover::quarantine`): the copy may crash
    /// halfway, but then both names exist and recovery re-quarantines.
    fn rename_record(&self, from: &str, to: &str) -> io::Result<()> {
        let (src, dst) = (self.path(from), self.path(to));
        if self.fs.rename(&src, &dst).is_err() {
            let data = self.fs.read_bytes(&src)?;
            self.fs.write_file(&dst, &data)?;
            self.fs.remove_file(&src)?;
        }
        Ok(())
    }
}

impl Storage for DirStorage {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.fs.read_bytes(&self.path(name))
    }

    fn read_to_string(&self, name: &str) -> io::Result<String> {
        self.fs.read_to_string(&self.path(name))
    }

    fn exists(&self, name: &str) -> bool {
        self.fs.exists(&self.path(name))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.fs.read_dir_names(&self.dir)
    }

    fn apply(&self, ops: Vec<Op>) -> Vec<(String, io::Error)> {
        if ops.is_empty() {
            return Vec::new();
        }
        let _commit = relock(&self.commit);
        let checks = crate::eval_checks(&ops, |name| {
            match self.fs.read_bytes(&self.path(name)) {
                Ok(bytes) => Ok(Some(bytes)),
                // Only a definitive not-found is "absent".  Any other
                // read error (permissions, I/O) rejects the batch: the
                // record may well exist, and treating it as absent would
                // let a `CheckAbsent`-guarded batch overwrite it.
                Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
                Err(e) => Err(e),
            }
        });
        if !checks.is_empty() {
            return checks;
        }
        let mut errors = Vec::new();
        let mut puts: Vec<(PathBuf, Vec<u8>)> = Vec::new();
        for op in ops {
            match op {
                Op::Check(..) | Op::CheckAbsent(..) => {}
                Op::Put(name, data) => puts.push((self.path(&name), data)),
                Op::Del(name) => match self.fs.remove_file(&self.path(&name)) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => errors.push((name, e)),
                },
                Op::Rename(from, to) => {
                    if let Err(e) = self.rename_record(&from, &to) {
                        errors.push((to, e));
                    }
                }
            }
        }
        if !puts.is_empty() {
            for (path, err) in write_atomic_batch(self.fs.as_ref(), &puts) {
                let name = path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| path.display().to_string());
                errors.push((name, err));
            }
        }
        self.counters.add(&self.counters.group_commits, 1);
        errors
    }

    fn counters(&self) -> CountersSnapshot {
        self.counters.snapshot()
    }

    fn compact(&self) -> io::Result<()> {
        Ok(())
    }

    fn backend_name(&self) -> &'static str {
        "dir"
    }
}

impl std::fmt::Debug for DirStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirStorage")
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwfs_chaos::RealFs;
    use std::path::Path;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gridwfs-storage-dir-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A filesystem whose rename always fails — exercises the
    /// copy+remove quarantine fallback (moved here from `recover`).
    struct NoRename;

    impl StateFs for NoRename {
        fn read_to_string(&self, path: &Path) -> io::Result<String> {
            RealFs.read_to_string(path)
        }
        fn write_file(&self, path: &Path, data: &[u8]) -> io::Result<()> {
            RealFs.write_file(path, data)
        }
        fn rename(&self, _from: &Path, _to: &Path) -> io::Result<()> {
            Err(io::Error::other("rename unsupported"))
        }
        fn remove_file(&self, path: &Path) -> io::Result<()> {
            RealFs.remove_file(path)
        }
        fn sync_dir(&self, path: &Path) -> io::Result<()> {
            RealFs.sync_dir(path)
        }
        fn create_dir_all(&self, path: &Path) -> io::Result<()> {
            RealFs.create_dir_all(path)
        }
        fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>> {
            RealFs.read_dir_names(path)
        }
        fn exists(&self, path: &Path) -> bool {
            RealFs.exists(path)
        }
    }

    #[test]
    fn rename_falls_back_to_copy_and_remove() {
        let dir = tmpdir("norename");
        let st = DirStorage::new(Arc::new(NoRename), &dir).unwrap();
        // Seed the record with plain fs: NoRename's write_file is real.
        std::fs::write(dir.join("job-1.meta"), "meta").unwrap();
        st.rename("job-1.meta", "job-1.meta.quarantined").unwrap();
        assert!(!dir.join("job-1.meta").exists());
        assert_eq!(
            std::fs::read_to_string(dir.join("job-1.meta.quarantined")).unwrap(),
            "meta"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn records_are_plain_files_named_after_the_record() {
        let dir = tmpdir("plain");
        let st = DirStorage::new(Arc::new(RealFs), &dir).unwrap();
        st.put("job-3.result", b"state=done").unwrap();
        assert_eq!(
            std::fs::read_to_string(dir.join("job-3.result")).unwrap(),
            "state=done"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
