//! Write-ahead-log backend: a single append-only log with group commit
//! and snapshot compaction.
//!
//! ## On-disk format
//!
//! `wal.log` is a sequence of frames, each one durable group commit:
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE over payload] [payload: len bytes]
//! ```
//!
//! The payload is a run of ops — `1` put (name, data), `2` del (name),
//! `3` rename (from, to) — each string/blob prefixed by a `u32 LE`
//! length.  A compaction snapshot is not a special record: it is an
//! ordinary frame whose ops are puts of the entire live table, written
//! crash-atomically (`write_atomic`: tmp + fsync + rename + dir fsync)
//! over the log.  The "snapshot + truncated log" of the design is thus
//! literally the log's head frame.
//!
//! ## Crash model
//!
//! Appends happen with one `write_all` + one `sync_all` while holding the
//! table lock, so the log on disk is always a valid prefix plus at most
//! one torn frame from a crash mid-append.  Replay applies frames until
//! the first length/checksum mismatch, moves every byte from there on to
//! `wal.quarantined`, and atomically rewrites the log as the valid prefix
//! — corruption is quarantined, never fatal, and never reaches records
//! that committed before it.  An op whose frame is torn never had its
//! commit acknowledged (the fsync didn't complete), so dropping the tail
//! loses nothing that was promised durable.
//!
//! One process owns a WAL dir at a time: `open` heals the tail and takes
//! the append handle, so concurrent opens of a *live* log are forbidden
//! (the service enforces this by construction — recovery opens the
//! backend once, before workers start).

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use gridwfs_chaos::{relock, write_atomic, RealFs, StateFs};

use crate::{CountersSnapshot, Op, Storage, StorageCounters};

/// Log file name inside the state dir.
pub const WAL_FILE: &str = "wal.log";
/// Where torn/corrupt tail bytes are moved during replay.
pub const WAL_QUARANTINE: &str = "wal.quarantined";

/// Don't bother compacting below this log size…
const COMPACT_MIN_BYTES: u64 = 256 * 1024;
/// …and only once the log is this many times the last snapshot.
const COMPACT_GROWTH: u64 = 4;

const OP_PUT: u8 = 1;
const OP_DEL: u8 = 2;
const OP_RENAME: u8 = 3;

/// Append-only write-ahead log storage (see module docs).
pub struct WalStorage {
    dir: PathBuf,
    inner: Mutex<WalInner>,
    counters: StorageCounters,
    /// Filesystem the compaction snapshot swap goes through — [`RealFs`]
    /// in production, a fault-injecting [`StateFs`] in crash tests (see
    /// [`WalStorage::open_with_fs`]).  Appends use the held [`File`]
    /// directly and are faulted at the [`Storage`] layer instead.
    fs: Arc<dyn StateFs>,
}

struct WalInner {
    table: BTreeMap<String, Vec<u8>>,
    /// Append handle; `None` only transiently while compaction swaps files.
    file: Option<File>,
    log_bytes: u64,
    snapshot_bytes: u64,
}

impl WalStorage {
    /// Open (creating if needed) the WAL in `dir`, replaying the log and
    /// healing any torn tail.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<WalStorage> {
        Self::open_with_fs(dir, Arc::new(RealFs))
    }

    /// [`WalStorage::open`] with the compaction-swap filesystem injected —
    /// the seam crash tests use to fail `write_atomic` mid-compaction and
    /// prove the appender survives.
    pub fn open_with_fs(dir: impl Into<PathBuf>, fs: Arc<dyn StateFs>) -> io::Result<WalStorage> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let log_path = dir.join(WAL_FILE);
        let bytes = match std::fs::read(&log_path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };

        let counters = StorageCounters::default();
        let mut table = BTreeMap::new();
        let mut offset = 0usize;
        let mut replayed = 0u64;
        while let Some(frame_len) = valid_frame_at(&bytes, offset) {
            let payload = &bytes[offset + 8..offset + 8 + frame_len];
            match decode_ops(payload) {
                Some(ops) => {
                    replayed += ops.len() as u64;
                    apply_to_table(&mut table, ops);
                    offset += 8 + frame_len;
                }
                // Checksum passed but the payload doesn't decode: treat
                // it like any other corruption and cut the log here.
                None => break,
            }
        }
        counters.add(&counters.recovery_replayed_records, replayed);

        if offset < bytes.len() {
            // Torn or corrupt tail: move the bytes aside, then atomically
            // rewrite the log as its valid prefix.  Quarantine first so a
            // crash between the two steps loses no evidence.
            let mut q = OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join(WAL_QUARANTINE))?;
            q.write_all(&bytes[offset..])?;
            q.sync_all()?;
            write_atomic(&RealFs, &log_path, &bytes[..offset])?;
        }

        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)?;
        Ok(WalStorage {
            dir,
            inner: Mutex::new(WalInner {
                table,
                file: Some(file),
                log_bytes: offset as u64,
                // Unknown after reopen; assuming "all snapshot" delays the
                // next compaction until the log has genuinely grown again.
                snapshot_bytes: offset as u64,
            }),
            counters,
            fs,
        })
    }

    /// The backing directory (the log lives at `dir/wal.log`).
    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    fn compact_locked(&self, inner: &mut WalInner) -> io::Result<()> {
        let ops: Vec<Op> = inner
            .table
            .iter()
            .map(|(name, data)| Op::Put(name.clone(), data.clone()))
            .collect();
        let frame = encode_frame(&ops);
        let log_path = self.dir.join(WAL_FILE);
        // The old append handle stays in place while the snapshot swap
        // runs: compaction is an optimisation, and a failed swap must
        // leave the appender exactly as it was (the log on disk is
        // untouched until the rename inside `write_atomic` lands).
        let swap = write_atomic(self.fs.as_ref(), &log_path, &frame);
        // Re-open the *path* regardless of the swap's outcome.  After a
        // successful rename the old fd points at an unlinked inode and
        // must not be written; after a failed swap the path still names
        // the old log.  Either way the freshly opened handle appends to
        // whatever the crash model left durable at `wal.log`.
        match OpenOptions::new().append(true).open(&log_path) {
            Ok(f) => inner.file = Some(f),
            Err(reopen) => {
                if swap.is_ok() {
                    // The rename landed but the path cannot be re-opened:
                    // the old fd is the unlinked pre-snapshot inode, and
                    // appending to it would silently drop acknowledged
                    // commits.  Fail loudly instead.
                    inner.file = None;
                    return Err(reopen);
                }
                // The swap never landed, so the old log — and the handle
                // already in `inner.file` — are both still good.
                return swap;
            }
        }
        swap?;
        inner.log_bytes = frame.len() as u64;
        inner.snapshot_bytes = frame.len() as u64;
        self.counters.add(&self.counters.compactions, 1);
        Ok(())
    }
}

impl Storage for WalStorage {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        relock(&self.inner)
            .table
            .get(name)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no record {name}")))
    }

    fn exists(&self, name: &str) -> bool {
        relock(&self.inner).table.contains_key(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        Ok(relock(&self.inner).table.keys().cloned().collect())
    }

    fn apply(&self, ops: Vec<Op>) -> Vec<(String, io::Error)> {
        if ops.is_empty() {
            return Vec::new();
        }
        let mut inner = relock(&self.inner);
        // Preconditions are evaluated against the live table under the
        // same lock as the append: check and commit are one atomic step.
        // Checks are not state, so they are never framed into the log.
        let checks = crate::eval_checks(&ops, |name| Ok(inner.table.get(name).cloned()));
        if !checks.is_empty() {
            return checks;
        }
        let ops = crate::strip_checks(ops);
        if ops.is_empty() {
            // A check-only batch that passed: nothing to commit.
            return Vec::new();
        }
        let frame = encode_frame(&ops);

        // One write + one fsync for the whole batch: the group commit.
        let committed = match inner.file.as_mut() {
            Some(f) => f.write_all(&frame).and_then(|()| f.sync_all()),
            None => Err(io::Error::other("wal: append handle lost")),
        };
        if let Err(e) = committed {
            // The batch is all-or-nothing: nothing reaches the table, and
            // every op reports the commit failure.  (A torn frame on disk
            // is healed by the next open.)
            return ops
                .iter()
                .map(|op| {
                    (
                        op.reported_name().to_string(),
                        io::Error::new(e.kind(), format!("wal append failed: {e}")),
                    )
                })
                .collect();
        }

        self.counters
            .add(&self.counters.wal_appends, ops.len() as u64);
        self.counters.add(&self.counters.group_commits, 1);
        self.counters
            .add(&self.counters.bytes_logged, frame.len() as u64);
        inner.log_bytes += frame.len() as u64;

        let mut errors = Vec::new();
        // Mirror the shared ordering contract: deletes/renames in order,
        // puts land last.
        let mut puts = Vec::new();
        for op in ops {
            match op {
                Op::Check(..) | Op::CheckAbsent(..) => unreachable!("checks stripped above"),
                Op::Put(name, data) => puts.push((name, data)),
                Op::Del(name) => {
                    inner.table.remove(&name);
                }
                Op::Rename(from, to) => match inner.table.remove(&from) {
                    Some(v) => {
                        inner.table.insert(to, v);
                    }
                    None => errors.push((
                        to,
                        io::Error::new(io::ErrorKind::NotFound, format!("no record {from}")),
                    )),
                },
            }
        }
        for (name, data) in puts {
            inner.table.insert(name, data);
        }

        if inner.log_bytes >= COMPACT_MIN_BYTES
            && inner.log_bytes >= COMPACT_GROWTH * inner.snapshot_bytes.max(1)
        {
            if let Err(e) = self.compact_locked(&mut inner) {
                // Compaction is an optimisation; the log is still intact.
                errors.push((WAL_FILE.to_string(), e));
            }
        }
        errors
    }

    fn counters(&self) -> CountersSnapshot {
        self.counters.snapshot()
    }

    fn compact(&self) -> io::Result<()> {
        let mut inner = relock(&self.inner);
        self.compact_locked(&mut inner)
    }

    fn backend_name(&self) -> &'static str {
        "wal"
    }
}

impl std::fmt::Debug for WalStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalStorage")
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Is there a complete, checksum-valid frame at `offset`?  Returns its
/// payload length.
fn valid_frame_at(bytes: &[u8], offset: usize) -> Option<usize> {
    let header = bytes.get(offset..offset + 8)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let payload = bytes.get(offset + 8..offset + 8 + len)?;
    (crc32(payload) == crc).then_some(len)
}

fn encode_frame(ops: &[Op]) -> Vec<u8> {
    let mut payload = Vec::new();
    for op in ops {
        match op {
            // Preconditions are commit-time-only; they have no frame tag.
            Op::Check(..) | Op::CheckAbsent(..) => {}
            Op::Put(name, data) => {
                payload.push(OP_PUT);
                put_blob(&mut payload, name.as_bytes());
                put_blob(&mut payload, data);
            }
            Op::Del(name) => {
                payload.push(OP_DEL);
                put_blob(&mut payload, name.as_bytes());
            }
            Op::Rename(from, to) => {
                payload.push(OP_RENAME);
                put_blob(&mut payload, from.as_bytes());
                put_blob(&mut payload, to.as_bytes());
            }
        }
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn put_blob(out: &mut Vec<u8>, blob: &[u8]) {
    out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
    out.extend_from_slice(blob);
}

fn decode_ops(mut payload: &[u8]) -> Option<Vec<Op>> {
    let mut ops = Vec::new();
    while !payload.is_empty() {
        let (tag, rest) = payload.split_first()?;
        payload = rest;
        match *tag {
            OP_PUT => {
                let (name, rest) = take_blob(payload)?;
                let (data, rest) = take_blob(rest)?;
                ops.push(Op::Put(
                    String::from_utf8(name.to_vec()).ok()?,
                    data.to_vec(),
                ));
                payload = rest;
            }
            OP_DEL => {
                let (name, rest) = take_blob(payload)?;
                ops.push(Op::Del(String::from_utf8(name.to_vec()).ok()?));
                payload = rest;
            }
            OP_RENAME => {
                let (from, rest) = take_blob(payload)?;
                let (to, rest) = take_blob(rest)?;
                ops.push(Op::Rename(
                    String::from_utf8(from.to_vec()).ok()?,
                    String::from_utf8(to.to_vec()).ok()?,
                ));
                payload = rest;
            }
            _ => return None,
        }
    }
    Some(ops)
}

fn take_blob(bytes: &[u8]) -> Option<(&[u8], &[u8])> {
    let len = u32::from_le_bytes(bytes.get(0..4)?.try_into().unwrap()) as usize;
    let blob = bytes.get(4..4 + len)?;
    Some((blob, &bytes[4 + len..]))
}

fn apply_to_table(table: &mut BTreeMap<String, Vec<u8>>, ops: Vec<Op>) {
    let mut puts = Vec::new();
    for op in ops {
        match op {
            // Never logged, so never replayed.
            Op::Check(..) | Op::CheckAbsent(..) => {}
            Op::Put(name, data) => puts.push((name, data)),
            Op::Del(name) => {
                table.remove(&name);
            }
            Op::Rename(from, to) => {
                if let Some(v) = table.remove(&from) {
                    table.insert(to, v);
                }
            }
        }
    }
    for (name, data) in puts {
        table.insert(name, data);
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3), table built at compile time — the crate stays
// dependency-free.
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gridwfs-storage-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn state_survives_reopen() {
        let dir = tmpdir("reopen");
        {
            let st = WalStorage::open(&dir).unwrap();
            st.put("job-1.meta", b"meta-1").unwrap();
            st.apply(vec![
                Op::Put("job-2.meta".into(), b"meta-2".to_vec()),
                Op::Put("job-2.wf.xml".into(), b"<Workflow/>".to_vec()),
            ]);
            st.rename("job-1.meta", "job-1.meta.quarantined").unwrap();
            st.del("job-2.wf.xml").unwrap();
        }
        let st = WalStorage::open(&dir).unwrap();
        let mut names = st.list().unwrap();
        names.sort();
        assert_eq!(names, ["job-1.meta.quarantined", "job-2.meta"]);
        assert_eq!(st.read_to_string("job-2.meta").unwrap(), "meta-2");
        // Replay counted every logged op: 1 put + a 2-op batch + 1 rename
        // + 1 del.
        assert_eq!(st.counters().recovery_replayed_records, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_counters_track_batches() {
        let dir = tmpdir("counters");
        let st = WalStorage::open(&dir).unwrap();
        st.apply(vec![
            Op::Put("a".into(), vec![1]),
            Op::Put("b".into(), vec![2]),
            Op::Del("a".into()),
        ]);
        st.put("c", &[3]).unwrap();
        let c = st.counters();
        assert_eq!(c.group_commits, 2);
        assert_eq!(c.wal_appends, 4);
        assert!(c.bytes_logged > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_quarantined_not_fatal() {
        let dir = tmpdir("torn");
        {
            let st = WalStorage::open(&dir).unwrap();
            st.put("job-1.meta", b"first").unwrap();
            st.put("job-2.meta", b"second").unwrap();
        }
        let log = dir.join(WAL_FILE);
        let bytes = std::fs::read(&log).unwrap();
        // Tear the last frame three bytes short.
        std::fs::write(&log, &bytes[..bytes.len() - 3]).unwrap();

        let st = WalStorage::open(&dir).unwrap();
        assert!(st.exists("job-1.meta"));
        assert!(!st.exists("job-2.meta"), "torn record must not replay");
        // The torn bytes moved to quarantine; the log is the valid prefix.
        let first_frame = valid_frame_at(&bytes, 0).unwrap() + 8;
        let quarantined = std::fs::read(dir.join(WAL_QUARANTINE)).unwrap();
        assert_eq!(quarantined.len(), bytes.len() - 3 - first_frame);
        assert_eq!(
            std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(),
            first_frame as u64
        );
        drop(st);
        // Healed log replays cleanly and can keep appending.
        let st = WalStorage::open(&dir).unwrap();
        st.put("job-2.meta", b"second-again").unwrap();
        drop(st);
        let st = WalStorage::open(&dir).unwrap();
        assert_eq!(st.read_to_string("job-2.meta").unwrap(), "second-again");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_byte_cuts_log_at_that_frame() {
        let dir = tmpdir("corrupt");
        {
            let st = WalStorage::open(&dir).unwrap();
            st.put("job-1.meta", b"first").unwrap();
            st.put("job-2.meta", b"second").unwrap();
            st.put("job-3.meta", b"third").unwrap();
        }
        let log = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&log).unwrap();
        // Flip a payload byte inside the second frame.
        let first = valid_frame_at(&bytes, 0).unwrap() + 8;
        bytes[first + 9] ^= 0xFF;
        std::fs::write(&log, &bytes).unwrap();

        let st = WalStorage::open(&dir).unwrap();
        assert!(st.exists("job-1.meta"));
        assert!(!st.exists("job-2.meta"));
        assert!(!st.exists("job-3.meta"), "frames after corruption are tail");
        assert!(dir.join(WAL_QUARANTINE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_preserves_state_and_shrinks_log() {
        let dir = tmpdir("compact");
        let st = WalStorage::open(&dir).unwrap();
        // Overwrite one record many times so the log dwarfs the table.
        for i in 0..200u32 {
            st.put("job-1.ckpt.xml", format!("ckpt {i}").repeat(50).as_bytes())
                .unwrap();
        }
        st.put("job-1.meta", b"meta").unwrap();
        st.compact().unwrap();
        assert_eq!(st.counters().compactions, 1);
        let log_len = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        assert!(
            log_len < 10_000,
            "snapshot should be table-sized, got {log_len}"
        );
        // Appends keep working after the swap, and reopen sees everything.
        st.put("job-2.meta", b"later").unwrap();
        drop(st);
        let st = WalStorage::open(&dir).unwrap();
        assert_eq!(st.read_to_string("job-1.meta").unwrap(), "meta");
        assert_eq!(st.read_to_string("job-2.meta").unwrap(), "later");
        assert!(st
            .read_to_string("job-1.ckpt.xml")
            .unwrap()
            .starts_with("ckpt 199"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn automatic_compaction_kicks_in_on_growth() {
        let dir = tmpdir("autocompact");
        let st = WalStorage::open(&dir).unwrap();
        let big = vec![b'x'; 8 * 1024];
        for _ in 0..200 {
            st.put("job-1.ckpt.xml", &big).unwrap();
        }
        let c = st.counters();
        assert!(
            c.compactions >= 1,
            "log grew 200 snapshots, never compacted"
        );
        let log_len = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        assert!(log_len < 600 * 1024, "log did not shrink: {log_len}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_compaction_write_leaves_appender_usable() {
        use gridwfs_chaos::{ChaosFs, FaultPlan};
        let dir = tmpdir("compact-write-fault");
        let plan = FaultPlan {
            write_p: 1.0, // every snapshot tmp write fails
            ..FaultPlan::default()
        };
        let st = WalStorage::open_with_fs(&dir, Arc::new(ChaosFs::new(RealFs, plan))).unwrap();
        st.put("job-1.meta", b"meta").unwrap();
        st.put("job-1.ckpt.xml", b"ckpt").unwrap();
        let before = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();

        let err = st.compact().expect_err("injected tmp-write fault");
        assert!(err.to_string().contains("chaos"), "unexpected error: {err}");
        assert_eq!(st.counters().compactions, 0);
        // The swap never landed: the log on disk is byte-for-byte intact...
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), before);
        // ...and the appender still commits.
        st.put("job-2.meta", b"after-failed-compaction").unwrap();
        drop(st);
        let st = WalStorage::open(&dir).unwrap();
        assert_eq!(st.read_to_string("job-1.meta").unwrap(), "meta");
        assert_eq!(st.read_to_string("job-1.ckpt.xml").unwrap(), "ckpt");
        assert_eq!(
            st.read_to_string("job-2.meta").unwrap(),
            "after-failed-compaction",
            "post-failure append must survive reopen"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_compaction_rename_leaves_appender_usable() {
        use gridwfs_chaos::{ChaosFs, FaultPlan};
        let dir = tmpdir("compact-rename-fault");
        let plan = FaultPlan {
            rename_p: 1.0, // tmp writes land, the swap rename never does
            ..FaultPlan::default()
        };
        let st = WalStorage::open_with_fs(&dir, Arc::new(ChaosFs::new(RealFs, plan))).unwrap();
        for i in 0..20u32 {
            st.put("job-1.ckpt.xml", format!("ckpt {i}").as_bytes())
                .unwrap();
        }
        let before = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();

        let err = st.compact().expect_err("injected rename fault");
        assert!(err.to_string().contains("chaos"), "unexpected error: {err}");
        // Crash-between-write-and-rename: the log still holds its previous
        // version in full, and the tmp leftovers were cleaned up.
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), before);
        st.put("job-2.meta", b"still-alive").unwrap();
        drop(st);
        let st = WalStorage::open(&dir).unwrap();
        assert_eq!(st.read_to_string("job-1.ckpt.xml").unwrap(), "ckpt 19");
        assert_eq!(st.read_to_string("job-2.meta").unwrap(), "still-alive");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_and_headerless_logs_replay_empty() {
        let dir = tmpdir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(WAL_FILE), b"abc").unwrap(); // < header size
        let st = WalStorage::open(&dir).unwrap();
        assert!(st.list().unwrap().is_empty());
        assert!(dir.join(WAL_QUARANTINE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
