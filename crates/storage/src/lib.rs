//! Pluggable state backends for the Grid-WFS service.
//!
//! The service persists one flat namespace of small records per state dir —
//! `job-3.meta`, `job-3.ckpt.xml`, `job-3.result`, … — and every mutation
//! must be crash-atomic: after kill-9 at any instant, recovery sees either
//! the old record or the new one, never a torn file (the PR-4 invariant the
//! torn-write suite pins).  This crate promotes the `StateFs` seam into a
//! [`Storage`] trait over *named records* and provides three backends:
//!
//! * [`WalStorage`] — the durable default.  A single append-only
//!   write-ahead log with length+CRC32-framed record batches.  One
//!   [`Storage::apply`] batch is one frame and **one fsync** (group
//!   commit), replacing the per-file tmp→rename→fsync dance of the
//!   per-file layout.  The log compacts periodically by atomically
//!   rewriting itself as a single snapshot frame.  Recovery replays the
//!   log; a torn or corrupt tail is quarantined to `wal.quarantined` and
//!   trimmed, never fatal.
//! * [`DirStorage`] — the PR-4 per-file layout (one file per record,
//!   `write_atomic_batch` group commit per directory), preserved for
//!   compatibility and as the bench baseline.  Tests that poke state
//!   files directly on disk run against this backend.
//! * [`MemStorage`] — a mutex-guarded map for tests and benches.
//!
//! Fault injection moves *behind the trait*: [`ChaosStorage`] wraps any
//! backend and injects the same seed-driven write/torn/rename/read faults
//! as `ChaosFs`, keyed by **record name** and a per-`(name, op)` sequence
//! number.  Keying at the record level (not the backing file) is what lets
//! the chaos sweep run identically against all three backends: the WAL
//! funnels every record through one file whose op interleaving across
//! worker threads is nondeterministic, so file-level injection would break
//! seed-replayability there.  It also means the WAL's own file I/O sits
//! *below* the fault plane — a "torn write" tears one record's payload
//! (surfacing at parse time, exactly like a torn file in the directory
//! layout) rather than corrupting the log suffix for every job after it.
//!
//! Ordering contract: [`Storage::apply`] executes deletes and renames in
//! op order, and commits all puts of the batch together at the end.
//! Callers must not delete or rename a name they put in the same batch.
//!
//! Batches may carry preconditions: [`Op::Check`] (record exists and its
//! bytes start with the given prefix — the *fencing token*) and
//! [`Op::CheckAbsent`] (record does not exist).  Checks are evaluated
//! atomically with the commit, before any mutation; if any check fails the
//! whole batch is rejected and nothing lands.  A failed check reports a
//! [`fence_conflict`] error under the checked name — the primitive the
//! federated serve layer builds lease-epoch fencing and lease CAS claims
//! on.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gridwfs_chaos::{relock, FaultPlan, FsFaultKind};

mod dir;
mod mem;
mod wal;

pub use dir::DirStorage;
pub use mem::MemStorage;
pub use wal::{WalStorage, WAL_FILE, WAL_QUARANTINE};

// ---------------------------------------------------------------------------
// Ops and the Storage trait
// ---------------------------------------------------------------------------

/// One record mutation inside a group-committed batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Create or replace the record `name` with `data`.
    Put(String, Vec<u8>),
    /// Remove the record `name` (absent records are not an error).
    Del(String),
    /// Rename the record `from` to `to`, replacing any existing `to`.
    Rename(String, String),
    /// Precondition: the record exists and its bytes start with the given
    /// prefix.  An empty prefix only requires existence.  Evaluated
    /// atomically with the commit; a failed check rejects the whole batch
    /// with a [`fence_conflict`] error and nothing lands.
    Check(String, Vec<u8>),
    /// Precondition: the record does not exist.  Same rejection semantics
    /// as [`Op::Check`].
    CheckAbsent(String),
}

impl Op {
    /// The name an error for this op is reported under: the record it
    /// creates or affects (`to` for renames).
    pub fn reported_name(&self) -> &str {
        match self {
            Op::Put(name, _) | Op::Del(name) | Op::Check(name, _) | Op::CheckAbsent(name) => name,
            Op::Rename(_, to) => to,
        }
    }
}

/// The error a failed [`Op::Check`]/[`Op::CheckAbsent`] rejects its batch
/// with.  `PermissionDenied` with a recognizable prefix so callers can
/// tell a fence conflict (expected under contention) from real I/O loss.
pub fn fence_conflict(name: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::PermissionDenied,
        format!("fenced: precondition failed for {name}"),
    )
}

/// Is this error a batch rejection from a failed [`Op::Check`]?
pub fn is_fence_conflict(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::PermissionDenied && e.to_string().starts_with("fenced:")
}

/// Evaluate a batch's preconditions against `current` (lookup of a
/// record's present bytes: `Ok(None)` means definitively absent, `Err`
/// means the record's presence could not be established).  Returns one
/// [`fence_conflict`] per failed check and the lookup error itself for
/// unreadable records; any failure means the batch must not commit —
/// in particular, a record that exists but cannot be read must *reject*
/// the batch, never pass for absent and let a [`Op::CheckAbsent`] guard
/// overwrite it.  Backends call this inside their commit-side critical
/// section so the check and the mutation are atomic.
pub(crate) fn eval_checks<F>(ops: &[Op], mut current: F) -> Vec<(String, io::Error)>
where
    F: FnMut(&str) -> io::Result<Option<Vec<u8>>>,
{
    let mut errors = Vec::new();
    for op in ops {
        match op {
            Op::Check(name, prefix) => match current(name) {
                Ok(Some(bytes)) if bytes.starts_with(prefix) => {}
                Ok(_) => errors.push((name.clone(), fence_conflict(name))),
                Err(e) => errors.push((name.clone(), e)),
            },
            Op::CheckAbsent(name) => match current(name) {
                Ok(None) => {}
                Ok(Some(_)) => errors.push((name.clone(), fence_conflict(name))),
                Err(e) => errors.push((name.clone(), e)),
            },
            _ => {}
        }
    }
    errors
}

/// Drop the precondition ops from a batch, leaving only the mutations.
pub(crate) fn strip_checks(ops: Vec<Op>) -> Vec<Op> {
    ops.into_iter()
        .filter(|op| !matches!(op, Op::Check(..) | Op::CheckAbsent(..)))
        .collect()
}

/// A flat namespace of named records with batched, crash-atomic mutation.
///
/// All methods take record *names* (`job-3.meta`), never paths: where the
/// bytes live is the backend's business.  Implementations are internally
/// synchronized; the service shares one `Arc<dyn Storage>` across workers.
pub trait Storage: Send + Sync {
    /// Read a record's bytes.  `ErrorKind::NotFound` if absent.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;

    /// Does the record exist?
    fn exists(&self, name: &str) -> bool;

    /// All record names, in unspecified order.
    fn list(&self) -> io::Result<Vec<String>>;

    /// Apply a batch of mutations as one group commit — one durability
    /// point for the whole batch.  Returns per-op failures keyed by
    /// [`Op::reported_name`]; an empty vec means every op landed.
    ///
    /// [`Op::Check`]/[`Op::CheckAbsent`] preconditions are evaluated
    /// atomically with the commit: if any fails, the batch is rejected as
    /// a whole (one [`fence_conflict`] error per failed check, no
    /// mutation applied).
    fn apply(&self, ops: Vec<Op>) -> Vec<(String, io::Error)>;

    /// Snapshot of the backend's activity counters.
    fn counters(&self) -> CountersSnapshot;

    /// Force a compaction now.  No-op for backends without a log.
    fn compact(&self) -> io::Result<()>;

    /// Human label for metrics and bench output (`"wal"`, `"dir"`, …).
    fn backend_name(&self) -> &'static str;

    // --- convenience wrappers over `apply` -------------------------------

    /// Read a record as UTF-8 text (`ErrorKind::InvalidData` otherwise).
    fn read_to_string(&self, name: &str) -> io::Result<String> {
        String::from_utf8(self.read(name)?)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Single-record durable write (a one-op group commit).
    fn put(&self, name: &str, data: &[u8]) -> io::Result<()> {
        take_first_error(self.apply(vec![Op::Put(name.to_string(), data.to_vec())]))
    }

    /// Single-record removal.
    fn del(&self, name: &str) -> io::Result<()> {
        take_first_error(self.apply(vec![Op::Del(name.to_string())]))
    }

    /// Single-record rename.
    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        take_first_error(self.apply(vec![Op::Rename(from.to_string(), to.to_string())]))
    }
}

fn take_first_error(mut errors: Vec<(String, io::Error)>) -> io::Result<()> {
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors.swap_remove(0).1)
    }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Lock-free activity counters every backend carries.  Backends without a
/// log leave the `wal_*` counters at zero but still count group commits.
#[derive(Debug, Default)]
pub struct StorageCounters {
    /// Ops appended to the WAL (records logged).
    pub wal_appends: AtomicU64,
    /// Group commits: one durability point covering a whole batch.
    pub group_commits: AtomicU64,
    /// Log compactions (snapshot + truncate).
    pub compactions: AtomicU64,
    /// Bytes appended to the WAL (frames, not compaction rewrites).
    pub bytes_logged: AtomicU64,
    /// Ops replayed from the log during recovery.
    pub recovery_replayed_records: AtomicU64,
}

impl StorageCounters {
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            group_commits: self.group_commits.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            bytes_logged: self.bytes_logged.load(Ordering::Relaxed),
            recovery_replayed_records: self.recovery_replayed_records.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// Point-in-time copy of [`StorageCounters`], for metrics snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    pub wal_appends: u64,
    pub group_commits: u64,
    pub compactions: u64,
    pub bytes_logged: u64,
    pub recovery_replayed_records: u64,
}

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

/// Which backend a state dir is opened with (`--backend wal|dir|memory`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Group-committed write-ahead log (the durable default).
    #[default]
    Wal,
    /// One file per record, `write_atomic` per mutation batch (PR-4 layout).
    Dir,
    /// In-memory table: no durability, for tests and bench baselines.
    Memory,
}

impl Backend {
    pub fn parse(s: &str) -> Result<Backend, String> {
        match s {
            "wal" => Ok(Backend::Wal),
            "dir" => Ok(Backend::Dir),
            "memory" | "mem" => Ok(Backend::Memory),
            other => Err(format!(
                "unknown storage backend {other:?} (expected wal, dir, or memory)"
            )),
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Wal => "wal",
            Backend::Dir => "dir",
            Backend::Memory => "memory",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

// ---------------------------------------------------------------------------
// ChaosStorage: record-level fault injection
// ---------------------------------------------------------------------------

/// Wraps any backend and injects plan-driven faults at the record level,
/// with the same decision function as `ChaosFs`: the `n`-th op of a kind
/// on a record name faults iff `FaultPlan::op_faults(kind, name, n)`.
/// Decisions never depend on the backend, the state-dir path, or thread
/// interleaving on *other* records, so a fault plan replays identically
/// against WAL, directory, and memory backends.
pub struct ChaosStorage {
    inner: Arc<dyn Storage>,
    plan: FaultPlan,
    seq: Mutex<HashMap<(String, &'static str), u64>>,
}

impl ChaosStorage {
    pub fn new(inner: Arc<dyn Storage>, plan: FaultPlan) -> Self {
        ChaosStorage {
            inner,
            plan,
            seq: Mutex::new(HashMap::new()),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Take the next sequence number for `(name, op)` and decide whether
    /// this op faults.  Mirrors `ChaosFs::fault`: the counter only
    /// advances for kinds the plan can actually fire.
    fn fault(&self, name: &str, kind: FsFaultKind) -> bool {
        // Lease records are exempt from record-level injection: lease
        // traffic is wall-clock-paced (heartbeat renewals, takeover
        // scans), so faulting it would make the per-(name, op) sequence —
        // and thus every later decision on the record — depend on real
        // time, breaking seed-replayability.  Replica failure is injected
        // with the plan's `replica_kill` knob instead.
        if name.ends_with(".lease") {
            return false;
        }
        let p = match kind {
            FsFaultKind::Write => self.plan.write_p,
            FsFaultKind::Torn => self.plan.torn_p,
            FsFaultKind::Rename => self.plan.rename_p,
            FsFaultKind::Read => self.plan.read_p,
        };
        if p <= 0.0 {
            return false;
        }
        let n = {
            let mut seq = relock(&self.seq);
            let c = seq.entry((name.to_string(), kind.op_name())).or_insert(0);
            let n = *c;
            *c += 1;
            n
        };
        self.plan.op_faults(kind, name, n)
    }

    fn injected(what: &str, name: &str) -> io::Error {
        io::Error::other(format!("chaos: injected {what} failure ({name})"))
    }
}

impl Storage for ChaosStorage {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        if self.fault(name, FsFaultKind::Read) {
            return Err(Self::injected("read", name));
        }
        self.inner.read(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }

    fn apply(&self, ops: Vec<Op>) -> Vec<(String, io::Error)> {
        let mut errors = Vec::new();
        let mut kept = Vec::with_capacity(ops.len());
        for op in ops {
            match op {
                Op::Put(name, data) => {
                    if self.fault(&name, FsFaultKind::Write) {
                        errors.push((name.clone(), Self::injected("write", &name)));
                    } else if self.fault(&name, FsFaultKind::Torn) && !data.is_empty() {
                        // Short write that *claims* success — the torn
                        // record surfaces later, at parse time.
                        let half = data.len() / 2;
                        kept.push(Op::Put(name, data[..half].to_vec()));
                    } else {
                        kept.push(Op::Put(name, data));
                    }
                }
                Op::Del(name) => kept.push(Op::Del(name)),
                // Preconditions pass through unfaulted: they are evaluated
                // by the inner backend, atomically with the commit.
                op @ (Op::Check(..) | Op::CheckAbsent(..)) => kept.push(op),
                Op::Rename(from, to) => {
                    if self.fault(&to, FsFaultKind::Rename) {
                        errors.push((to.clone(), Self::injected("rename", &to)));
                    } else {
                        kept.push(Op::Rename(from, to));
                    }
                }
            }
        }
        errors.extend(self.inner.apply(kept));
        errors
    }

    fn counters(&self) -> CountersSnapshot {
        self.inner.counters()
    }

    fn compact(&self) -> io::Result<()> {
        self.inner.compact()
    }

    fn backend_name(&self) -> &'static str {
        self.inner.backend_name()
    }
}

impl fmt::Debug for ChaosStorage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosStorage")
            .field("backend", &self.inner.backend_name())
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends(dir: &std::path::Path) -> Vec<Arc<dyn Storage>> {
        vec![
            Arc::new(MemStorage::new()),
            Arc::new(DirStorage::new(Arc::new(gridwfs_chaos::RealFs), dir.join("dir")).unwrap()),
            Arc::new(WalStorage::open(dir.join("wal")).unwrap()),
        ]
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gridwfs-storage-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_on_every_backend() {
        let dir = tmpdir("roundtrip");
        for st in backends(&dir) {
            st.put("job-1.meta", b"name=a").unwrap();
            st.put("job-2.meta", b"name=b").unwrap();
            assert_eq!(st.read_to_string("job-1.meta").unwrap(), "name=a");
            assert!(st.exists("job-2.meta"));
            assert!(!st.exists("job-3.meta"));
            assert_eq!(
                st.read("job-3.meta").unwrap_err().kind(),
                io::ErrorKind::NotFound
            );

            st.rename("job-1.meta", "job-1.meta.quarantined").unwrap();
            assert!(!st.exists("job-1.meta"));
            assert_eq!(
                st.read_to_string("job-1.meta.quarantined").unwrap(),
                "name=a"
            );

            st.del("job-2.meta").unwrap();
            assert!(!st.exists("job-2.meta"));
            // Deleting an absent record is not an error.
            st.del("job-2.meta").unwrap();

            let mut names = st.list().unwrap();
            names.sort();
            assert_eq!(names, vec!["job-1.meta.quarantined".to_string()]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_apply_is_ordered_and_counted() {
        let dir = tmpdir("batch");
        for st in backends(&dir) {
            let errors = st.apply(vec![
                Op::Put("job-7.wf.xml".into(), b"<Workflow/>".to_vec()),
                Op::Put("job-7.meta".into(), b"meta".to_vec()),
            ]);
            assert!(errors.is_empty(), "{errors:?}");
            // Del-then-put of the same name in one batch: the put wins on
            // every backend (deletes run before the batch's puts).
            let errors = st.apply(vec![
                Op::Del("job-7.meta".into()),
                Op::Put("job-7.meta".into(), b"meta2".to_vec()),
            ]);
            assert!(errors.is_empty(), "{errors:?}");
            assert_eq!(st.read_to_string("job-7.meta").unwrap(), "meta2");
            let c = st.counters();
            assert!(c.group_commits >= 2, "{c:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_decisions_identical_across_backends() {
        let dir = tmpdir("chaos-eq");
        let plan = FaultPlan::parse("seed=11,write=0.3,torn=0.3,rename=0.3,read=0.3").unwrap();
        let mut logs: Vec<Vec<String>> = Vec::new();
        for st in backends(&dir) {
            let chaos = ChaosStorage::new(st, plan.clone());
            let mut log = Vec::new();
            for i in 0..40u32 {
                let name = format!("job-{}.meta", i % 5);
                let errors = chaos.apply(vec![Op::Put(name.clone(), vec![b'x'; 16])]);
                log.push(format!("put {name} {}", errors.len()));
                let read = chaos.read(&name).map(|b| b.len()).map_err(|e| e.kind());
                log.push(format!("read {name} {read:?}"));
                let q = format!("{name}.q");
                let errors = chaos.apply(vec![Op::Rename(name.clone(), q)]);
                log.push(format!("rename {name} {}", errors.len()));
            }
            logs.push(log);
        }
        assert_eq!(logs[0], logs[1], "mem vs dir fault streams differ");
        assert_eq!(logs[0], logs[2], "mem vs wal fault streams differ");
        // Chaos actually fired somewhere, or this test checks nothing.
        assert!(logs[0].iter().any(|l| l.ends_with(" 1")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_torn_put_truncates_payload() {
        // With torn=1 every non-empty put is halved; the storage still
        // reports success, exactly like ChaosFs torn writes.
        let plan = FaultPlan::parse("seed=3,torn=1.0").unwrap();
        let st = ChaosStorage::new(Arc::new(MemStorage::new()), plan);
        st.put("job-1.meta", b"0123456789").unwrap();
        assert_eq!(st.read("job-1.meta").unwrap(), b"01234");
    }

    #[test]
    fn checks_gate_the_whole_batch_on_every_backend() {
        let dir = tmpdir("checks");
        for st in backends(&dir) {
            st.put("job-1.lease", b"owner a epoch 1\nexpires 10\n")
                .unwrap();
            // Prefix matches: the guarded write lands.
            let errors = st.apply(vec![
                Op::Check("job-1.lease".into(), b"owner a epoch 1\n".to_vec()),
                Op::Put("job-1.result".into(), b"state done\n".to_vec()),
            ]);
            assert!(errors.is_empty(), "{errors:?}");
            assert!(st.exists("job-1.result"));

            // Stale prefix: batch rejected as a whole, nothing lands.
            let errors = st.apply(vec![
                Op::Check("job-1.lease".into(), b"owner b epoch 2\n".to_vec()),
                Op::Put("job-1.result".into(), b"state failed\n".to_vec()),
                Op::Del("job-1.lease".into()),
            ]);
            assert_eq!(errors.len(), 1, "{errors:?}");
            assert!(is_fence_conflict(&errors[0].1), "{:?}", errors[0].1);
            assert_eq!(st.read_to_string("job-1.result").unwrap(), "state done\n");
            assert!(st.exists("job-1.lease"), "rejected batch must not delete");

            // CAS claim: succeeds once, the loser is fenced.
            let claim = |owner: &str| {
                st.apply(vec![
                    Op::Check("job-1.lease".into(), b"owner a epoch 1\n".to_vec()),
                    Op::Put(
                        "job-1.lease".into(),
                        format!("owner {owner} epoch 2\nexpires 20\n").into_bytes(),
                    ),
                ])
            };
            assert!(claim("b").is_empty());
            let errors = claim("c");
            assert_eq!(errors.len(), 1);
            assert!(is_fence_conflict(&errors[0].1));
            assert!(st
                .read_to_string("job-1.lease")
                .unwrap()
                .starts_with("owner b epoch 2\n"));

            // CheckAbsent: first writer wins.
            let mint = |owner: &str| {
                st.apply(vec![
                    Op::CheckAbsent("job-2.lease".into()),
                    Op::Put(
                        "job-2.lease".into(),
                        format!("owner {owner} epoch 1\nexpires 5\n").into_bytes(),
                    ),
                ])
            };
            assert!(mint("a").is_empty());
            let errors = mint("b");
            assert_eq!(errors.len(), 1);
            assert!(is_fence_conflict(&errors[0].1));

            // A check-only batch that passes is a no-op, not an error.
            assert!(st
                .apply(vec![Op::Check("job-2.lease".into(), b"owner a".to_vec())])
                .is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checks_see_non_utf8_records_on_every_backend() {
        // A record whose bytes are not valid UTF-8 is still *present*:
        // `Op::Check` against it must evaluate the prefix (not fence on a
        // failed text read), and `Op::CheckAbsent` must fence instead of
        // letting the batch overwrite it.
        let dir = tmpdir("checks-binary");
        for st in backends(&dir) {
            let blob: &[u8] = &[0xff, 0xfe, b'b', b'i', b'n', 0x80];
            st.put("job-9.blob", blob).unwrap();

            let errors = st.apply(vec![
                Op::Check("job-9.blob".into(), vec![0xff, 0xfe]),
                Op::Put("job-9.ok".into(), b"guarded".to_vec()),
            ]);
            assert!(errors.is_empty(), "{}: {errors:?}", st.backend_name());
            assert!(st.exists("job-9.ok"));

            let errors = st.apply(vec![
                Op::CheckAbsent("job-9.blob".into()),
                Op::Put("job-9.blob".into(), b"clobbered".to_vec()),
            ]);
            assert_eq!(errors.len(), 1, "{}", st.backend_name());
            assert!(is_fence_conflict(&errors[0].1), "{:?}", errors[0].1);
            assert_eq!(
                st.read("job-9.blob").unwrap(),
                blob,
                "{}",
                st.backend_name()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checks_survive_wal_reopen_without_replaying() {
        // Checks are preconditions, not state: they must not be framed
        // into the log, and guarded state must replay correctly.
        let dir = tmpdir("checks-wal");
        {
            let st = WalStorage::open(dir.join("wal")).unwrap();
            st.put("job-1.lease", b"owner a epoch 1\n").unwrap();
            assert!(st
                .apply(vec![
                    Op::Check("job-1.lease".into(), b"owner a".to_vec()),
                    Op::Put("job-1.result".into(), b"state done\n".to_vec()),
                ])
                .is_empty());
        }
        let st = WalStorage::open(dir.join("wal")).unwrap();
        assert_eq!(st.read_to_string("job-1.result").unwrap(), "state done\n");
        // 1 put + 1 guarded put (check not logged).
        assert_eq!(st.counters().recovery_replayed_records, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_exempts_lease_records_and_forwards_checks() {
        let plan = FaultPlan::parse("seed=5,write=1.0,read=1.0").unwrap();
        let st = ChaosStorage::new(Arc::new(MemStorage::new()), plan);
        // Every write and read faults — except on lease records.
        st.put("job-1.lease", b"owner a epoch 1\n").unwrap();
        assert_eq!(st.read("job-1.lease").unwrap(), b"owner a epoch 1\n");
        assert!(st.put("job-1.meta", b"meta").is_err());
        // Checks pass through to the inner backend untouched.
        let errors = st.apply(vec![Op::Check("job-1.lease".into(), b"owner b".to_vec())]);
        assert_eq!(errors.len(), 1);
        assert!(is_fence_conflict(&errors[0].1));
    }

    #[test]
    fn backend_parse_round_trips() {
        for b in [Backend::Wal, Backend::Dir, Backend::Memory] {
            assert_eq!(Backend::parse(b.as_str()).unwrap(), b);
        }
        assert_eq!(Backend::parse("mem").unwrap(), Backend::Memory);
        assert!(Backend::parse("floppy").is_err());
        assert_eq!(Backend::default(), Backend::Wal);
    }
}
