//! In-memory backend: a mutex-guarded map, for tests and bench baselines.

use std::collections::BTreeMap;
use std::io;
use std::sync::Mutex;

use gridwfs_chaos::relock;

use crate::{CountersSnapshot, Op, Storage, StorageCounters};

/// No durability at all: records live in a `BTreeMap` and die with the
/// process.  Shares the [`Storage`] contract (batched apply, ordered
/// deletes/renames, puts last) so chaos and recovery suites can run
/// against it; restart tests share one `Arc<MemStorage>` across service
/// incarnations to stand in for the surviving disk.
#[derive(Debug, Default)]
pub struct MemStorage {
    table: Mutex<BTreeMap<String, Vec<u8>>>,
    counters: StorageCounters,
}

impl MemStorage {
    pub fn new() -> Self {
        MemStorage::default()
    }
}

impl Storage for MemStorage {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        relock(&self.table)
            .get(name)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no record {name}")))
    }

    fn exists(&self, name: &str) -> bool {
        relock(&self.table).contains_key(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        Ok(relock(&self.table).keys().cloned().collect())
    }

    fn apply(&self, ops: Vec<Op>) -> Vec<(String, io::Error)> {
        if ops.is_empty() {
            return Vec::new();
        }
        let mut errors = Vec::new();
        let mut table = relock(&self.table);
        // Preconditions first, under the same lock as the commit: a
        // failed check rejects the batch before anything mutates.
        let checks = crate::eval_checks(&ops, |name| Ok(table.get(name).cloned()));
        if !checks.is_empty() {
            return checks;
        }
        // Deletes and renames in order first, puts last — the same commit
        // order DirStorage's write_atomic_batch gives a mixed batch.
        let mut puts = Vec::new();
        for op in ops {
            match op {
                Op::Check(..) | Op::CheckAbsent(..) => {}
                Op::Put(name, data) => puts.push((name, data)),
                Op::Del(name) => {
                    table.remove(&name);
                }
                Op::Rename(from, to) => match table.remove(&from) {
                    Some(v) => {
                        table.insert(to, v);
                    }
                    None => errors.push((
                        to,
                        io::Error::new(io::ErrorKind::NotFound, format!("no record {from}")),
                    )),
                },
            }
        }
        for (name, data) in puts {
            table.insert(name, data);
        }
        self.counters.add(&self.counters.group_commits, 1);
        errors
    }

    fn counters(&self) -> CountersSnapshot {
        self.counters.snapshot()
    }

    fn compact(&self) -> io::Result<()> {
        Ok(())
    }

    fn backend_name(&self) -> &'static str {
        "memory"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_of_missing_record_reports_not_found() {
        let st = MemStorage::new();
        let err = st
            .rename("job-1.meta", "job-1.meta.quarantined")
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn counters_track_group_commits_only() {
        let st = MemStorage::new();
        st.put("a", b"1").unwrap();
        st.put("b", b"2").unwrap();
        let c = st.counters();
        assert_eq!(c.group_commits, 2);
        assert_eq!(c.wal_appends, 0);
        assert_eq!(c.bytes_logged, 0);
    }
}
