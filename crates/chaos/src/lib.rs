//! Deterministic chaos harness for the real-system seams of Grid-WFS.
//!
//! The simulated Grid (`gridwfs-sim`) has always injected *modelled* failures
//! — crashes, exceptions, heartbeat loss — inside virtual time.  This crate
//! injects faults into the **real** system around the simulation: the service
//! state directory, the worker threads, and the executor.  Everything is
//! seed-driven and replayable:
//!
//! * [`FaultPlan`] — a parsed, seeded schedule of fault probabilities
//!   (workflow panics, worker stalls, state-dir write/torn-write/rename/read
//!   errors).  Every decision is a pure hash of the plan seed and a stable
//!   key, never of wall-clock time or thread interleaving, so two runs of the
//!   same plan make identical choices.
//! * [`StateFs`] — the filesystem seam all state-dir I/O goes through.
//!   [`RealFs`] is the production passthrough; [`ChaosFs`] wraps any
//!   `StateFs` and injects plan-driven faults keyed by *file name* (not full
//!   path), so runs in different temp dirs inject identically.
//! * [`write_atomic`] — the one crash-atomic write helper: tmp file +
//!   `sync_all` + rename + parent-dir fsync.  A fault (or crash) at any point
//!   leaves either the complete old version or the complete new version,
//!   never a torn file.
//! * [`relock`] / [`wait_timeout_relock`] — poison-tolerant lock accessors: a
//!   panicking lock holder must not take down status queries or snapshots.
//!
//! The crate is dependency-free by design (it sits below `serve` and next to
//! `trace` in the build graph, and must build in the offline stub workspace).

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Deterministic hashing
// ---------------------------------------------------------------------------

/// SplitMix64 finaliser: a high-quality 64-bit mixer (Steele et al.).
/// All chaos decisions reduce to one of these on a stable key.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix(h: u64, v: u64) -> u64 {
    splitmix64(h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn mix_str(mut h: u64, s: &str) -> u64 {
    for b in s.bytes() {
        h = h.wrapping_mul(0x100_0000_01B3) ^ u64::from(b);
    }
    splitmix64(h)
}

/// Map a hash to the unit interval [0, 1).
fn unit(h: u64) -> f64 {
    // 53 high bits -> f64 mantissa.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

/// Per-fault-kind stream salts: decisions for different fault kinds are
/// independent even when keyed by the same file or job.
const SALT_PANIC: u64 = 0x0070_616e_6963; // "panic"
const SALT_STALL: u64 = 0x0073_7461_6c6c; // "stall"
const SALT_TASK_STALL: u64 = 0x7473_7461_6c6c; // "tstall"
const SALT_WRITE: u64 = 0x0077_7269_7465; // "write"
const SALT_TORN: u64 = 0x746f_726e; // "torn"
const SALT_RENAME: u64 = 0x7265_6e61_6d65; // "rename"
const SALT_READ: u64 = 0x7265_6164; // "read"
const SALT_RKILL: u64 = 0x0072_6b69_6c6c; // "rkill"

/// A seed-driven schedule of injectable faults, replayable by seed.
///
/// Parse one from a CLI spec string (`key=value` pairs, comma-separated) or a
/// flat JSON object with the same keys:
///
/// ```text
/// seed=7,panic=0.1,torn=0.2,rename=0.1
/// {"seed":7,"panic":0.1,"torn":0.2,"rename":0.1}
/// ```
///
/// Keys: `seed` (u64 decision seed), `panic` (P(workflow closure panics), per
/// job), `panic_seed` (repeatable: always panic the job with this submission
/// seed), `stall` (P(worker stalls before running the engine) and, in paced
/// mode, P(a task body stalls past its heartbeat interval)), `stall_ms`
/// (stall duration), `write` (P(state-dir write fails)), `torn` (P(state-dir
/// write silently truncates)), `rename` (P(rename fails — the
/// crash-between-write-and-rename point)), `read` (P(state-dir read fails)),
/// `replica_kill` (P(a federated serve replica's scheduler and lease
/// heartbeat are dead from startup — the replica admits jobs but never
/// runs or renews them, so peers must take its work over), keyed by
/// replica id).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Decision seed: same seed + same keys = same injected faults.
    pub seed: u64,
    /// Probability a job's workflow closure panics inside the worker.
    pub panic_p: f64,
    /// Submission seeds whose jobs always panic (for targeted tests).
    pub panic_seeds: Vec<u64>,
    /// Probability a worker stalls (sleeps `stall_ms`) before the engine runs;
    /// in paced mode, also the per-task probability of a heartbeat-starving
    /// stall inside the task body.
    pub stall_p: f64,
    /// How long an injected stall lasts, in milliseconds.
    pub stall_ms: u64,
    /// Probability a state-dir write fails outright.
    pub write_p: f64,
    /// Probability a state-dir write is silently torn (short write).
    pub torn_p: f64,
    /// Probability a state-dir rename fails (crash-before-rename point).
    pub rename_p: f64,
    /// Probability a state-dir read fails.
    pub read_p: f64,
    /// Probability a federated serve replica is chaos-killed: its
    /// scheduler and lease heartbeat never start, so every job it admits
    /// must be taken over by a peer.  Keyed by replica id.
    pub replica_kill_p: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            panic_p: 0.0,
            panic_seeds: Vec::new(),
            stall_p: 0.0,
            stall_ms: 50,
            write_p: 0.0,
            torn_p: 0.0,
            rename_p: 0.0,
            read_p: 0.0,
            replica_kill_p: 0.0,
        }
    }
}

impl FaultPlan {
    /// Parse a plan from either the CLI spec form (`seed=7,panic=0.1`) or a
    /// flat JSON object (`{"seed":7,"panic":0.1}`).  Unknown keys and
    /// malformed values are errors: a typo must not silently disable chaos.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(FaultPlan::default());
        }
        if spec.starts_with('{') {
            Self::parse_json(spec)
        } else {
            Self::parse_spec(spec)
        }
    }

    fn parse_spec(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for pair in spec.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("chaos spec: expected key=value, got {pair:?}"))?;
            plan.apply(key.trim(), value.trim())?;
        }
        Ok(plan)
    }

    fn parse_json(spec: &str) -> Result<FaultPlan, String> {
        let body = spec
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| "chaos spec: unbalanced JSON braces".to_string())?;
        let mut plan = FaultPlan::default();
        // Flat object of numbers (plus one optional flat array of numbers):
        // split on commas that are not inside brackets.
        let mut depth = 0usize;
        let mut start = 0usize;
        let mut fields = Vec::new();
        for (i, c) in body.char_indices() {
            match c {
                '[' => depth += 1,
                ']' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    fields.push(&body[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        fields.push(&body[start..]);
        for field in fields {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let (key, value) = field
                .split_once(':')
                .ok_or_else(|| format!("chaos spec: expected \"key\":value, got {field:?}"))?;
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            if key == "panic_seeds" {
                let inner = value
                    .strip_prefix('[')
                    .and_then(|s| s.strip_suffix(']'))
                    .ok_or_else(|| "chaos spec: panic_seeds must be an array".to_string())?;
                for n in inner.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    plan.apply("panic_seed", n)?;
                }
            } else {
                plan.apply(key, value)?;
            }
        }
        Ok(plan)
    }

    fn apply(&mut self, key: &str, value: &str) -> Result<(), String> {
        fn prob(key: &str, value: &str) -> Result<f64, String> {
            let p: f64 = value
                .parse()
                .map_err(|_| format!("chaos spec: {key}={value:?} is not a number"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("chaos spec: {key}={value} outside [0, 1]"));
            }
            Ok(p)
        }
        fn int(key: &str, value: &str) -> Result<u64, String> {
            value
                .parse()
                .map_err(|_| format!("chaos spec: {key}={value:?} is not an integer"))
        }
        match key {
            "seed" => self.seed = int(key, value)?,
            "panic" => self.panic_p = prob(key, value)?,
            "panic_seed" => self.panic_seeds.push(int(key, value)?),
            "stall" => self.stall_p = prob(key, value)?,
            "stall_ms" => self.stall_ms = int(key, value)?,
            "write" => self.write_p = prob(key, value)?,
            "torn" => self.torn_p = prob(key, value)?,
            "rename" => self.rename_p = prob(key, value)?,
            "read" => self.read_p = prob(key, value)?,
            "replica_kill" => self.replica_kill_p = prob(key, value)?,
            other => return Err(format!("chaos spec: unknown key {other:?}")),
        }
        Ok(())
    }

    /// Canonical spec-string form (round-trips through [`FaultPlan::parse`]).
    pub fn to_spec(&self) -> String {
        let mut out = format!("seed={}", self.seed);
        let mut push = |key: &str, p: f64| {
            if p > 0.0 {
                out.push_str(&format!(",{key}={p}"));
            }
        };
        push("panic", self.panic_p);
        push("stall", self.stall_p);
        push("write", self.write_p);
        push("torn", self.torn_p);
        push("rename", self.rename_p);
        push("read", self.read_p);
        push("replica_kill", self.replica_kill_p);
        if self.stall_p > 0.0 && self.stall_ms != 50 {
            out.push_str(&format!(",stall_ms={}", self.stall_ms));
        }
        for s in &self.panic_seeds {
            out.push_str(&format!(",panic_seed={s}"));
        }
        out
    }

    /// True if any state-dir filesystem fault can fire under this plan.
    pub fn has_fs_faults(&self) -> bool {
        self.write_p > 0.0 || self.torn_p > 0.0 || self.rename_p > 0.0 || self.read_p > 0.0
    }

    fn decide(&self, salt: u64, key: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        p >= 1.0 || unit(splitmix64(mix(mix(self.seed, salt), key))) < p
    }

    /// Does the workflow closure of the job with this submission seed panic?
    /// Keyed by the job's own seed (not its id or path), so the decision is
    /// identical regardless of worker count or state-dir location.
    pub fn job_panics(&self, job_seed: u64) -> bool {
        self.panic_seeds.contains(&job_seed) || self.decide(SALT_PANIC, job_seed, self.panic_p)
    }

    /// Should the worker running this job stall before starting the engine?
    pub fn worker_stall(&self, job_seed: u64) -> Option<Duration> {
        self.decide(SALT_STALL, job_seed, self.stall_p)
            .then(|| Duration::from_millis(self.stall_ms))
    }

    /// Should this task attempt (paced mode) stall past its heartbeat
    /// interval inside the task body?  Keyed by (job seed, task id).
    pub fn task_stall(&self, job_seed: u64, task_id: u64) -> Option<Duration> {
        self.decide(SALT_TASK_STALL, mix(job_seed, task_id), self.stall_p)
            .then(|| Duration::from_millis(self.stall_ms))
    }

    /// Is the federated replica with this id chaos-killed?  Keyed by the
    /// replica id string, so the decision is independent of fleet size,
    /// submission order, and wall time — the property the federated chaos
    /// sweep's paired-run determinism rests on.
    pub fn replica_killed(&self, replica: &str) -> bool {
        self.decide(SALT_RKILL, mix_str(0, replica), self.replica_kill_p)
    }

    /// Deterministic per-op fault decision for a named record: the `n`-th
    /// `kind` operation on `name` faults iff this returns true.  Keyed by
    /// the record *name* (never a full path), so decisions are identical
    /// regardless of state-dir location or which backend executes the op.
    /// `ChaosFs` routes its per-file decisions through this; the storage
    /// crate's record-level chaos wrapper reuses it so every backend sees
    /// the same fault stream.
    pub fn op_faults(&self, kind: FsFaultKind, name: &str, n: u64) -> bool {
        let (salt, p) = match kind {
            FsFaultKind::Write => (SALT_WRITE, self.write_p),
            FsFaultKind::Torn => (SALT_TORN, self.torn_p),
            FsFaultKind::Rename => (SALT_RENAME, self.rename_p),
            FsFaultKind::Read => (SALT_READ, self.read_p),
        };
        self.decide(salt, mix(mix_str(0, name), mix(salt, n)), p)
    }
}

/// The four state-mutation fault classes a [`FaultPlan`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsFaultKind {
    /// Write reported as failed (nothing persisted).
    Write,
    /// Short write that *claims* success — half the payload persisted.
    Torn,
    /// Rename reported as failed (source intact, target unchanged).
    Rename,
    /// Read reported as failed.
    Read,
}

impl FsFaultKind {
    /// Stable op label used to key per-`(name, op)` sequence counters.
    pub fn op_name(self) -> &'static str {
        match self {
            FsFaultKind::Write => "write",
            FsFaultKind::Torn => "torn",
            FsFaultKind::Rename => "rename",
            FsFaultKind::Read => "read",
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_spec())
    }
}

// ---------------------------------------------------------------------------
// StateFs seam
// ---------------------------------------------------------------------------

/// The filesystem seam every state-dir operation goes through.
///
/// `serve::recover` and `serve::service` never call `std::fs` directly for
/// state-dir I/O; they call this trait.  Production uses [`RealFs`]; the
/// chaos harness wraps it in [`ChaosFs`]; tests can script their own
/// implementation to hit exact crash points.
pub trait StateFs: Send + Sync {
    /// Read an entire file to a string.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;
    /// Read an entire file's raw bytes.  The default falls back to the
    /// UTF-8 read (fine for scripted test filesystems, whose records are
    /// text); byte-faithful backends override it so records that are not
    /// valid UTF-8 still read — and precondition checks against them
    /// still evaluate — instead of erroring as `InvalidData`.
    fn read_bytes(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.read_to_string(path).map(String::into_bytes)
    }
    /// Create/truncate `path`, write `data`, and flush it to disk
    /// (`sync_all`).  Durability matters here: [`write_atomic`] relies on the
    /// tmp file being on disk before the rename makes it visible.
    fn write_file(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Atomically replace `to` with `from` (POSIX rename semantics).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// fsync a directory, making completed renames in it durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Create a directory and all parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// List the *file names* (not full paths) in a directory.
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Does this path exist?
    fn exists(&self, path: &Path) -> bool;
}

/// Production [`StateFs`]: a straight passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

impl StateFs for RealFs {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }

    fn read_bytes(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write_file(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::File::create(path)?;
        f.write_all(data)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directory fsync is how POSIX makes a completed rename durable.
        // Platforms where opening a directory fails (e.g. Windows) simply
        // skip it; the rename itself is still atomic.
        match std::fs::File::open(dir) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// Shared handles delegate, so a `ChaosFs<Arc<dyn StateFs>>` can wrap
/// whatever filesystem a service was configured with.
impl<F: StateFs + ?Sized> StateFs for std::sync::Arc<F> {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        (**self).read_to_string(path)
    }
    fn read_bytes(&self, path: &Path) -> io::Result<Vec<u8>> {
        (**self).read_bytes(path)
    }
    fn write_file(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        (**self).write_file(path, data)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        (**self).rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        (**self).remove_file(path)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        (**self).sync_dir(dir)
    }
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        (**self).create_dir_all(dir)
    }
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        (**self).read_dir_names(dir)
    }
    fn exists(&self, path: &Path) -> bool {
        (**self).exists(path)
    }
}

/// Fault-injecting [`StateFs`] wrapper.
///
/// Every fault decision is a pure function of `(plan seed, file name, op
/// kind, per-(file, op) sequence number)` — crucially keyed by the file
/// *name*, not the full path, so two runs of the same plan against different
/// temp directories inject byte-identical fault schedules.  A torn write
/// writes a prefix of the data and then *reports success*: the corruption is
/// only discovered by the next reader, exactly like a lost page cache.
pub struct ChaosFs<F> {
    inner: F,
    plan: FaultPlan,
    seq: Mutex<HashMap<(String, &'static str), u64>>,
}

impl<F: StateFs> ChaosFs<F> {
    pub fn new(inner: F, plan: FaultPlan) -> Self {
        ChaosFs {
            inner,
            plan,
            seq: Mutex::new(HashMap::new()),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Take the next sequence number for `(file name of path, op)` and decide
    /// whether this op faults.
    fn fault(&self, path: &Path, kind: FsFaultKind) -> bool {
        let p = match kind {
            FsFaultKind::Write => self.plan.write_p,
            FsFaultKind::Torn => self.plan.torn_p,
            FsFaultKind::Rename => self.plan.rename_p,
            FsFaultKind::Read => self.plan.read_p,
        };
        if p <= 0.0 {
            return false;
        }
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let n = {
            let mut seq = relock(&self.seq);
            let c = seq.entry((name.clone(), kind.op_name())).or_insert(0);
            let n = *c;
            *c += 1;
            n
        };
        self.plan.op_faults(kind, &name, n)
    }

    fn injected(what: &str, path: &Path) -> io::Error {
        io::Error::other(format!(
            "chaos: injected {what} failure ({})",
            path.display()
        ))
    }
}

impl<F: StateFs> StateFs for ChaosFs<F> {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        if self.fault(path, FsFaultKind::Read) {
            return Err(Self::injected("read", path));
        }
        self.inner.read_to_string(path)
    }

    fn read_bytes(&self, path: &Path) -> io::Result<Vec<u8>> {
        if self.fault(path, FsFaultKind::Read) {
            return Err(Self::injected("read", path));
        }
        self.inner.read_bytes(path)
    }

    fn write_file(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        if self.fault(path, FsFaultKind::Write) {
            return Err(Self::injected("write", path));
        }
        if self.fault(path, FsFaultKind::Torn) && !data.is_empty() {
            // Short write that *claims* success — torn data surfaces later.
            return self.inner.write_file(path, &data[..data.len() / 2]);
        }
        self.inner.write_file(path, data)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.fault(to, FsFaultKind::Rename) {
            // The crash-between-write-and-rename point: tmp exists, target
            // still holds its previous version.
            return Err(Self::injected("rename", to));
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.inner.sync_dir(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.read_dir_names(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

// ---------------------------------------------------------------------------
// Crash-atomic write
// ---------------------------------------------------------------------------

/// The tmp-file path `write_atomic` stages through: `<name>.tmp` next to the
/// target.  Exposed so scanners can recognise and ignore leftovers.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Crash-atomic file replacement: write `<path>.tmp` (created, written,
/// `sync_all`ed), rename it over `path`, then fsync the parent directory.
///
/// Crash-point guarantees (each verified by the crash-point test matrix):
/// * fault **during the tmp write** → `Err`, target untouched, tmp removed
///   best-effort (scanners ignore `.tmp` leftovers anyway);
/// * fault **between write and rename** (rename fails) → `Err`, target still
///   holds its previous version in full;
/// * fault **after the rename** (dir fsync fails) → `Err`, but the target
///   already holds the complete new version — the caller sees a failure and
///   may retry; the file is never a mix of old and new bytes.
pub fn write_atomic(fs: &dyn StateFs, path: &Path, data: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    fs.write_file(&tmp, data)?;
    if let Err(e) = fs.rename(&tmp, path) {
        let _ = fs.remove_file(&tmp);
        return Err(e);
    }
    if let Some(parent) = path.parent() {
        fs.sync_dir(parent)?;
    }
    Ok(())
}

/// Group commit: crash-atomically replaces a whole batch of files with ONE
/// parent-directory fsync per distinct directory, instead of the one fsync
/// *per file* that looping over [`write_atomic`] costs.  The scheduler's
/// per-tick state-dir batches (result markers, elapsed ledgers) are the
/// intended caller: under a 100k-job load the directory fsync dominates the
/// state-dir write path, and amortising it across a tick is what keeps the
/// settle rate off the disk's fsync ceiling.
///
/// Per-file guarantees are exactly [`write_atomic`]'s: every target is
/// either all-old or all-new, never torn (each tmp is written and
/// `sync_all`ed before its rename).  The relaxation is only in the
/// directory entries: a crash after some renames but before the directory
/// fsync may lose any subset of the *renames* — the same window a single
/// `write_atomic` already has between its rename and its dir fsync.
///
/// Failures are per-file: one bad write must not sink the rest of the
/// batch, so errors are collected and returned (empty = full success) and
/// the remaining files still commit.
pub fn write_atomic_batch(
    fs: &dyn StateFs,
    writes: &[(PathBuf, Vec<u8>)],
) -> Vec<(PathBuf, io::Error)> {
    let mut errors = Vec::new();
    let mut dirs: Vec<PathBuf> = Vec::new();
    for (path, data) in writes {
        let tmp = tmp_path(path);
        if let Err(e) = fs.write_file(&tmp, data) {
            errors.push((path.clone(), e));
            continue;
        }
        if let Err(e) = fs.rename(&tmp, path) {
            let _ = fs.remove_file(&tmp);
            errors.push((path.clone(), e));
            continue;
        }
        if let Some(parent) = path.parent() {
            if !dirs.iter().any(|d| d == parent) {
                dirs.push(parent.to_path_buf());
            }
        }
    }
    for dir in dirs {
        if let Err(e) = fs.sync_dir(&dir) {
            errors.push((dir, e));
        }
    }
    errors
}

// ---------------------------------------------------------------------------
// Poison-tolerant locking
// ---------------------------------------------------------------------------

/// Lock a mutex, recovering the data if a previous holder panicked.
///
/// Poisoning exists to warn that an invariant *might* be broken mid-update.
/// Every shared structure in the service is written with single-assignment
/// updates (insert/remove/store), so the data is always structurally sound;
/// refusing service forever because one job's closure panicked would turn an
/// isolated fault into a total outage — the opposite of the paper's thesis.
pub fn relock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// `Condvar::wait_timeout` with the same poison recovery as [`relock`].
pub fn wait_timeout_relock<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match cv.wait_timeout(guard, timeout) {
        Ok((g, t)) => (g, t.timed_out()),
        Err(poisoned) => {
            let (g, t) = poisoned.into_inner();
            (g, t.timed_out())
        }
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gridwfs-chaos-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    // -- FaultPlan parsing --------------------------------------------------

    #[test]
    fn parse_spec_form() {
        let plan = FaultPlan::parse("seed=7,panic=0.25,torn=0.5,stall=0.1,stall_ms=20").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.panic_p, 0.25);
        assert_eq!(plan.torn_p, 0.5);
        assert_eq!(plan.stall_p, 0.1);
        assert_eq!(plan.stall_ms, 20);
        assert_eq!(plan.write_p, 0.0);
    }

    #[test]
    fn parse_json_form_matches_spec_form() {
        let a = FaultPlan::parse("seed=9,write=0.3,rename=0.2,panic_seed=4,panic_seed=8").unwrap();
        let b = FaultPlan::parse(
            "{\"seed\": 9, \"write\": 0.3, \"rename\": 0.2, \"panic_seeds\": [4, 8]}",
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_rejects_unknown_keys_and_bad_values() {
        assert!(FaultPlan::parse("panik=0.5").is_err());
        assert!(FaultPlan::parse("panic=1.5").is_err());
        assert!(FaultPlan::parse("panic=abc").is_err());
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("{\"panic\" 0.5}").is_err());
    }

    #[test]
    fn parse_empty_spec_is_no_chaos() {
        let plan = FaultPlan::parse("").unwrap();
        assert_eq!(plan, FaultPlan::default());
        assert!(!plan.has_fs_faults());
        assert!(!plan.job_panics(123));
    }

    #[test]
    fn spec_roundtrip() {
        let plan =
            FaultPlan::parse("seed=3,panic=0.1,stall=0.2,stall_ms=75,torn=0.4,panic_seed=11")
                .unwrap();
        assert_eq!(FaultPlan::parse(&plan.to_spec()).unwrap(), plan);
        let plan = FaultPlan::parse("seed=5,replica_kill=0.4").unwrap();
        assert_eq!(plan.replica_kill_p, 0.4);
        assert_eq!(FaultPlan::parse(&plan.to_spec()).unwrap(), plan);
    }

    #[test]
    fn replica_kill_is_deterministic_per_replica_id() {
        let plan = FaultPlan::parse("seed=7,replica_kill=0.5").unwrap();
        let ids: Vec<String> = (0..64).map(|i| format!("r{i}")).collect();
        let a: Vec<bool> = ids.iter().map(|r| plan.replica_killed(r)).collect();
        let b: Vec<bool> = ids.iter().map(|r| plan.replica_killed(r)).collect();
        assert_eq!(a, b, "same plan, same kill set");
        let hits = a.iter().filter(|&&x| x).count();
        assert!((10..=54).contains(&hits), "p=0.5 over 64 draws: got {hits}");
        // Replica kills do not gate the fs-fault wrapping decision.
        assert!(!plan.has_fs_faults());
        assert!(!FaultPlan::default().replica_killed("r0"));
    }

    // -- Decision determinism ----------------------------------------------

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::parse("seed=1,panic=0.5").unwrap();
        let b = FaultPlan::parse("seed=2,panic=0.5").unwrap();
        let choices_a: Vec<bool> = (0..64).map(|s| a.job_panics(s)).collect();
        let choices_a2: Vec<bool> = (0..64).map(|s| a.job_panics(s)).collect();
        let choices_b: Vec<bool> = (0..64).map(|s| b.job_panics(s)).collect();
        assert_eq!(choices_a, choices_a2, "same seed, same decisions");
        assert_ne!(choices_a, choices_b, "different seed, different schedule");
        let hits = choices_a.iter().filter(|&&x| x).count();
        assert!((10..=54).contains(&hits), "p=0.5 over 64 draws: got {hits}");
    }

    #[test]
    fn panic_seed_overrides_probability() {
        let plan = FaultPlan::parse("panic_seed=42").unwrap();
        assert!(plan.job_panics(42));
        assert!(!plan.job_panics(43));
    }

    #[test]
    fn fault_streams_are_independent() {
        // A plan with every probability at 0 except one kind must only ever
        // fire that kind.
        let plan = FaultPlan::parse("seed=5,stall=1").unwrap();
        assert!(plan.worker_stall(1).is_some());
        assert!(plan.task_stall(1, 2).is_some());
        assert!(!plan.job_panics(1));
    }

    // -- RealFs + write_atomic ---------------------------------------------

    #[test]
    fn write_atomic_replaces_content() {
        let dir = tmpdir("atomic");
        let path = dir.join("f.meta");
        write_atomic(&RealFs, &path, b"one").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "one");
        write_atomic(&RealFs, &path, b"two").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "two");
        assert!(!tmp_path(&path).exists(), "tmp staging file cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn real_fs_read_dir_names_lists_files() {
        let dir = tmpdir("readdir");
        std::fs::write(dir.join("a.meta"), "x").unwrap();
        std::fs::write(dir.join("b.meta"), "y").unwrap();
        let mut names = RealFs.read_dir_names(&dir).unwrap();
        names.sort();
        assert_eq!(names, vec!["a.meta", "b.meta"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // -- Crash-point matrix -------------------------------------------------

    /// Scripted fs: fail the N-th occurrence of one op kind, pass everything
    /// else through to RealFs.
    struct FailAt {
        op: &'static str,
        at: u64,
        count: AtomicU64,
    }

    impl FailAt {
        fn new(op: &'static str, at: u64) -> Self {
            FailAt {
                op,
                at,
                count: AtomicU64::new(0),
            }
        }

        fn trip(&self, op: &'static str) -> bool {
            op == self.op && self.count.fetch_add(1, Ordering::SeqCst) == self.at
        }
    }

    impl StateFs for FailAt {
        fn read_to_string(&self, path: &Path) -> io::Result<String> {
            if self.trip("read") {
                return Err(io::Error::other("scripted read failure"));
            }
            RealFs.read_to_string(path)
        }
        fn write_file(&self, path: &Path, data: &[u8]) -> io::Result<()> {
            if self.trip("write") {
                return Err(io::Error::other("scripted write failure"));
            }
            if self.trip("torn") && !data.is_empty() {
                return RealFs.write_file(path, &data[..data.len() / 2]);
            }
            RealFs.write_file(path, data)
        }
        fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            if self.trip("rename") {
                return Err(io::Error::other("scripted rename failure"));
            }
            RealFs.rename(from, to)
        }
        fn remove_file(&self, path: &Path) -> io::Result<()> {
            RealFs.remove_file(path)
        }
        fn sync_dir(&self, dir: &Path) -> io::Result<()> {
            if self.trip("sync_dir") {
                return Err(io::Error::other("scripted dir-sync failure"));
            }
            RealFs.sync_dir(dir)
        }
        fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
            RealFs.create_dir_all(dir)
        }
        fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
            RealFs.read_dir_names(dir)
        }
        fn exists(&self, path: &Path) -> bool {
            path.exists()
        }
    }

    /// The acceptance-criteria matrix: a crash injected at every point of
    /// `write_atomic` leaves the target either all-old or all-new — never a
    /// mix, never truncated.
    #[test]
    fn write_atomic_crash_point_matrix() {
        let old = b"previous version, intact";
        let new = b"next version, also intact";
        // (op to fail, occurrence, expect Err, expect old content to survive)
        let cases: &[(&'static str, u64, bool)] = &[
            ("write", 0, true),     // crash during tmp write -> old survives
            ("rename", 0, true),    // crash between write and rename -> old survives
            ("sync_dir", 0, false), // crash after rename -> new is in place
        ];
        for &(op, at, old_survives) in cases {
            let dir = tmpdir(&format!("crash-{op}"));
            let path = dir.join("f.meta");
            write_atomic(&RealFs, &path, old).unwrap();
            let fs = FailAt::new(op, at);
            let result = write_atomic(&fs, &path, new);
            assert!(result.is_err(), "crash at {op} must surface as Err");
            let content = std::fs::read(&path).unwrap();
            let expect: &[u8] = if old_survives { old } else { new };
            assert_eq!(
                content, expect,
                "crash at {op}: file must be a complete version"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn write_atomic_torn_tmp_write_never_reaches_target() {
        // A *silently* torn tmp write followed by a crash before rename
        // leaves only the tmp file torn; the target keeps its old version.
        let dir = tmpdir("torn-tmp");
        let path = dir.join("f.meta");
        write_atomic(&RealFs, &path, b"old and complete").unwrap();
        struct TornThenCrash;
        impl StateFs for TornThenCrash {
            fn read_to_string(&self, path: &Path) -> io::Result<String> {
                RealFs.read_to_string(path)
            }
            fn write_file(&self, path: &Path, data: &[u8]) -> io::Result<()> {
                RealFs.write_file(path, &data[..data.len() / 2])
            }
            fn rename(&self, _from: &Path, _to: &Path) -> io::Result<()> {
                Err(io::Error::other("crash before rename"))
            }
            fn remove_file(&self, path: &Path) -> io::Result<()> {
                RealFs.remove_file(path)
            }
            fn sync_dir(&self, dir: &Path) -> io::Result<()> {
                RealFs.sync_dir(dir)
            }
            fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
                RealFs.create_dir_all(dir)
            }
            fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
                RealFs.read_dir_names(dir)
            }
            fn exists(&self, path: &Path) -> bool {
                path.exists()
            }
        }
        assert!(write_atomic(&TornThenCrash, &path, b"new but torn").is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "old and complete");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // -- ChaosFs ------------------------------------------------------------

    #[test]
    fn chaos_fs_injects_by_file_name_not_path() {
        // Same plan, two different directories: the fault schedule must be
        // identical, because decisions key on file names only.
        let plan = FaultPlan::parse("seed=13,write=0.5,rename=0.3,read=0.4").unwrap();
        let dirs = [tmpdir("chaos-a"), tmpdir("chaos-b")];
        let mut outcomes: Vec<Vec<bool>> = Vec::new();
        for dir in &dirs {
            let fs = ChaosFs::new(RealFs, plan.clone());
            let mut ok = Vec::new();
            for i in 0..24 {
                let path = dir.join(format!("job-{}.meta", i % 6));
                ok.push(write_atomic(&fs, &path, b"payload").is_ok());
                ok.push(fs.read_to_string(&path).is_ok());
            }
            outcomes.push(ok);
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert!(
            outcomes[0].iter().any(|&x| x) && outcomes[0].iter().any(|&x| !x),
            "p=0.3..0.5 over 48 ops should both pass and fail at least once"
        );
        for dir in &dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn chaos_fs_torn_write_survives_write_atomic_but_corrupts_content() {
        // torn=1 means every write is short; write_atomic "succeeds" and the
        // final file holds the truncated payload — the scanner's problem now.
        let plan = FaultPlan::parse("seed=1,torn=1").unwrap();
        let dir = tmpdir("chaos-torn");
        let fs = ChaosFs::new(RealFs, plan);
        let path = dir.join("job-1.meta");
        write_atomic(&fs, &path, b"0123456789").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "01234");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_fs_rename_failure_keeps_previous_version() {
        let plan = FaultPlan::parse("seed=1,rename=1").unwrap();
        let dir = tmpdir("chaos-rename");
        let path = dir.join("job-1.meta");
        write_atomic(&RealFs, &path, b"old").unwrap();
        let fs = ChaosFs::new(RealFs, plan);
        assert!(write_atomic(&fs, &path, b"new").is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "old");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // -- Poison tolerance ---------------------------------------------------

    #[test]
    fn relock_recovers_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.lock().is_err(), "mutex is poisoned");
        assert_eq!(*relock(&m), 7, "relock still reads the data");
        *relock(&m) = 8;
        assert_eq!(*relock(&m), 8);
    }

    #[test]
    fn wait_timeout_relock_recovers_poisoned_pair() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let _ = std::thread::spawn(move || {
            let _g = pair2.0.lock().unwrap();
            panic!("poison the condvar mutex");
        })
        .join();
        let g = relock(&pair.0);
        let (g, timed_out) = wait_timeout_relock(&pair.1, g, Duration::from_millis(5));
        assert!(timed_out);
        assert!(!*g);
    }
}
