//! Property-based tests for the simulation substrate.

use gridwfs_sim::dist::Dist;
use gridwfs_sim::event::EventQueue;
use gridwfs_sim::rng::Rng;
use gridwfs_sim::sim::Sim;
use gridwfs_sim::time::SimTime;
use gridwfs_sim::trace::{FailureTrace, TraceEntry};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, regardless of the
    /// order they were scheduled in.
    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::new(t), i);
        }
        let mut prev = SimTime::ZERO;
        let mut count = 0;
        while let Some(f) = q.pop() {
            prop_assert!(f.time >= prev);
            prev = f.time;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Equal-time events preserve FIFO order (determinism invariant).
    #[test]
    fn event_queue_fifo_at_equal_times(n in 1usize..100, t in 0.0f64..100.0) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::new(t), i);
        }
        let popped: Vec<usize> = std::iter::from_fn(|| q.pop().map(|f| f.payload)).collect();
        prop_assert_eq!(popped, (0..n).collect::<Vec<_>>());
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn event_queue_cancellation_subset(
        times in proptest::collection::vec(0.0f64..1e3, 1..100),
        mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times.iter().enumerate()
            .map(|(i, &t)| (i, q.schedule(SimTime::new(t), i)))
            .collect();
        let mut kept = Vec::new();
        for (i, id) in &ids {
            if *mask.get(*i % mask.len()).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
            } else {
                kept.push(*i);
            }
        }
        let mut popped: Vec<usize> = std::iter::from_fn(|| q.pop().map(|f| f.payload)).collect();
        popped.sort_unstable();
        kept.sort_unstable();
        prop_assert_eq!(popped, kept);
    }

    /// The sim clock never runs backwards.
    #[test]
    fn sim_clock_monotone(delays in proptest::collection::vec(0.0f64..100.0, 1..100)) {
        let mut sim: Sim<usize> = Sim::new();
        for (i, &d) in delays.iter().enumerate() {
            sim.schedule_in(d, i);
        }
        let mut prev = SimTime::ZERO;
        while let Some(f) = sim.next() {
            prop_assert!(f.time >= prev);
            prop_assert_eq!(sim.now(), f.time);
            prev = f.time;
        }
    }

    /// All distribution samples are non-negative and finite (except the
    /// explicit "never" exponential, which is excluded by construction).
    #[test]
    fn samples_are_nonnegative(seed in any::<u64>(), mean in 0.001f64..1e4) {
        let mut rng = Rng::seed_from_u64(seed);
        for d in [
            Dist::constant(mean),
            Dist::uniform(0.0, mean),
            Dist::exponential_mean(mean),
            Dist::weibull(1.3, mean),
        ] {
            let x = d.sample(&mut rng);
            prop_assert!(x.is_finite() && x >= 0.0, "{:?} sampled {}", d, x);
        }
    }

    /// CDF is monotone non-decreasing and bounded in [0,1] for all models.
    #[test]
    fn cdf_monotone(mean in 0.01f64..100.0, xs in proptest::collection::vec(0.0f64..500.0, 2..50)) {
        let mut xs = xs;
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for d in [
            Dist::constant(mean),
            Dist::uniform(0.0, mean),
            Dist::exponential_mean(mean),
            Dist::weibull(0.8, mean),
        ] {
            let mut prev = 0.0;
            for &x in &xs {
                let c = d.cdf(x);
                prop_assert!((0.0..=1.0).contains(&c));
                prop_assert!(c >= prev - 1e-12);
                prev = c;
            }
        }
    }

    /// RNG split is a pure function: same (parent, id) -> same stream, and
    /// the parent is never advanced by splitting.
    #[test]
    fn rng_split_pure(seed in any::<u64>(), id in any::<u64>()) {
        let parent = Rng::seed_from_u64(seed);
        let mut c1 = parent.split(id);
        let mut c2 = parent.split(id);
        for _ in 0..8 {
            prop_assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    /// Recorded failure traces always satisfy the trace invariants.
    #[test]
    fn recorded_traces_are_valid(seed in any::<u64>(), mttf in 0.5f64..50.0, down in 0.0f64..20.0) {
        use gridwfs_sim::resource::{GridResource, ResourceId, ResourceSpec};
        let mut res = GridResource::new(
            ResourceId(1),
            ResourceSpec::unreliable("h", mttf, down),
            &Rng::seed_from_u64(seed),
        );
        let t = FailureTrace::record(&mut res, 200.0);
        // from_entries re-validates all invariants; panics fail the test.
        let rebuilt = FailureTrace::from_entries(t.entries().to_vec());
        prop_assert_eq!(rebuilt.len(), t.len());
        // Downtime within the horizon is bounded by the horizon.
        prop_assert!(t.downtime_before(200.0) <= 200.0 + 1e-9);
    }

    /// A trace is down exactly inside its (at, at+down) windows.
    #[test]
    fn trace_up_down_consistency(
        gaps in proptest::collection::vec((0.1f64..10.0, 0.0f64..5.0), 0..20),
        probe in 0.0f64..500.0,
    ) {
        let mut tt = 0.0;
        let mut entries = Vec::new();
        for (up, down) in gaps {
            tt += up;
            entries.push(TraceEntry { at: tt, down });
            tt += down;
        }
        let trace = FailureTrace::from_entries(entries.clone());
        let expect_up = !entries.iter().any(|e| probe > e.at && probe < e.at + e.down);
        prop_assert_eq!(trace.is_up_at(probe), expect_up);
    }
}
