//! Failure traces: recordable, replayable failure schedules.
//!
//! The paper's experiments draw failures on the fly; for engine tests we also
//! want *scripted* failures ("resource crashes exactly at t=7, down for 3")
//! so that recovery-path behaviour is deterministic and assertable.  A
//! [`FailureTrace`] is an explicit list of (crash time, downtime) pairs that
//! can be generated from a resource's stochastic model, hand-written in a
//! test, saved, and replayed.

use serde::{Deserialize, Serialize};

use crate::resource::GridResource;

/// One failure in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Absolute crash time (measured from resource start).
    pub at: f64,
    /// How long the resource stays down.
    pub down: f64,
}

/// A finite schedule of failures, sorted by time.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FailureTrace {
    entries: Vec<TraceEntry>,
}

impl FailureTrace {
    /// An empty trace (failure-free resource).
    pub fn empty() -> Self {
        FailureTrace::default()
    }

    /// Builds a trace from explicit entries.
    ///
    /// # Panics
    /// Panics if entries are not strictly increasing in time, overlap a
    /// preceding downtime window, or contain non-finite/negative values.
    pub fn from_entries(entries: Vec<TraceEntry>) -> Self {
        let mut end_of_prev_down = -1.0;
        for e in &entries {
            assert!(e.at.is_finite() && e.at >= 0.0, "bad crash time {}", e.at);
            assert!(
                e.down.is_finite() && e.down >= 0.0,
                "bad downtime {}",
                e.down
            );
            assert!(
                e.at > end_of_prev_down,
                "crash at {} overlaps previous downtime ending at {}",
                e.at,
                end_of_prev_down
            );
            end_of_prev_down = e.at + e.down;
        }
        FailureTrace { entries }
    }

    /// Records a trace by sampling a resource's up/down cycles until
    /// `horizon` (failure-free resources yield an empty trace).
    pub fn record(resource: &mut GridResource, horizon: f64) -> Self {
        let mut entries = Vec::new();
        if resource.spec.is_failure_free() {
            return FailureTrace { entries };
        }
        let mut clock = 0.0;
        loop {
            let cycle = resource.sample_cycle();
            let at = clock + cycle.up;
            if at >= horizon {
                break;
            }
            entries.push(TraceEntry {
                at,
                down: cycle.down,
            });
            clock = at + cycle.down;
        }
        FailureTrace { entries }
    }

    /// The raw entries in time order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of failures in the trace.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the trace contains no failures.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// First failure at or after `t`, if any.
    pub fn next_failure_after(&self, t: f64) -> Option<TraceEntry> {
        let idx = self.entries.partition_point(|e| e.at < t);
        self.entries.get(idx).copied()
    }

    /// True if the resource is up at instant `t` (boundaries count as up:
    /// the resource crashes immediately *after* `at` and is back at
    /// `at + down`).
    pub fn is_up_at(&self, t: f64) -> bool {
        for e in &self.entries {
            if t > e.at && t < e.at + e.down {
                return false;
            }
            if e.at >= t {
                break;
            }
        }
        true
    }

    /// Total downtime within `[0, horizon)`.
    pub fn downtime_before(&self, horizon: f64) -> f64 {
        self.entries
            .iter()
            .take_while(|e| e.at < horizon)
            .map(|e| (e.at + e.down).min(horizon) - e.at)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::{ResourceId, ResourceSpec};
    use crate::rng::Rng;

    fn trace(entries: &[(f64, f64)]) -> FailureTrace {
        FailureTrace::from_entries(
            entries
                .iter()
                .map(|&(at, down)| TraceEntry { at, down })
                .collect(),
        )
    }

    #[test]
    fn empty_trace_is_always_up() {
        let t = FailureTrace::empty();
        assert!(t.is_empty());
        assert!(t.is_up_at(100.0));
        assert_eq!(t.next_failure_after(0.0), None);
        assert_eq!(t.downtime_before(100.0), 0.0);
    }

    #[test]
    fn up_down_windows() {
        let t = trace(&[(5.0, 2.0), (20.0, 1.0)]);
        assert!(t.is_up_at(4.9));
        assert!(t.is_up_at(5.0), "crash boundary counts as up");
        assert!(!t.is_up_at(6.0));
        assert!(t.is_up_at(7.0), "repair boundary counts as up");
        assert!(t.is_up_at(10.0));
        assert!(!t.is_up_at(20.5));
    }

    #[test]
    fn next_failure_lookup() {
        let t = trace(&[(5.0, 2.0), (20.0, 1.0)]);
        assert_eq!(t.next_failure_after(0.0).unwrap().at, 5.0);
        assert_eq!(t.next_failure_after(5.0).unwrap().at, 5.0);
        assert_eq!(t.next_failure_after(5.1).unwrap().at, 20.0);
        assert_eq!(t.next_failure_after(21.0), None);
    }

    #[test]
    fn downtime_accumulates_and_clips() {
        let t = trace(&[(5.0, 2.0), (20.0, 10.0)]);
        assert_eq!(t.downtime_before(4.0), 0.0);
        assert_eq!(t.downtime_before(6.0), 1.0, "partial window clipped");
        assert_eq!(t.downtime_before(10.0), 2.0);
        assert_eq!(t.downtime_before(25.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "overlaps previous downtime")]
    fn overlapping_entries_rejected() {
        let _ = trace(&[(5.0, 10.0), (7.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "bad crash time")]
    fn negative_time_rejected() {
        let _ = trace(&[(-1.0, 1.0)]);
    }

    #[test]
    fn record_from_failure_free_resource_is_empty() {
        let mut res = GridResource::new(
            ResourceId(1),
            ResourceSpec::reliable("r"),
            &Rng::seed_from_u64(1),
        );
        assert!(FailureTrace::record(&mut res, 1000.0).is_empty());
    }

    #[test]
    fn record_respects_horizon_and_is_valid() {
        let mut res = GridResource::new(
            ResourceId(2),
            ResourceSpec::unreliable("u", 10.0, 3.0),
            &Rng::seed_from_u64(2),
        );
        let t = FailureTrace::record(&mut res, 500.0);
        assert!(!t.is_empty());
        assert!(t.entries().iter().all(|e| e.at < 500.0));
        // from_entries invariants hold on recorded data.
        let rebuilt = FailureTrace::from_entries(t.entries().to_vec());
        assert_eq!(rebuilt, t);
    }

    #[test]
    fn recorded_failure_count_tracks_availability_adjusted_rate() {
        // With MTTF 10 and mean downtime 3 the expected number of failures in
        // [0, H) is about H / (MTTF + D) = 1000 / 13 ≈ 77.
        let grid = Rng::seed_from_u64(3);
        let runs = 50;
        let total: usize = (0..runs)
            .map(|i| {
                let mut res = GridResource::new(
                    ResourceId(i),
                    ResourceSpec::unreliable("u", 10.0, 3.0),
                    &grid.split(i as u64),
                );
                FailureTrace::record(&mut res, 1000.0).len()
            })
            .sum();
        let mean = total as f64 / runs as f64;
        assert!((mean - 77.0).abs() < 8.0, "mean {mean}");
    }
}
