//! Network link model for notification transport.
//!
//! The generic failure detection service (§3, report \[18\]) rides on
//! heartbeats and event-notification messages delivered over the wide-area
//! network.  A crash and a network partition look identical to the receiver
//! — heartbeats stop arriving — which is exactly why the detector presumes a
//! crash after a timeout.  [`LinkModel`] gives the simulated Grid a way to
//! delay or drop messages so engine tests can exercise that ambiguity.

use serde::{Deserialize, Serialize};

use crate::dist::Dist;
use crate::rng::Rng;

/// Delivery model for one logical link (Grid node → workflow engine).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Per-message propagation delay.
    pub delay: Dist,
    /// Probability an individual message is silently dropped.
    pub drop_p: f64,
    /// Probability a delivered message is duplicated (a second copy
    /// arrives after an independently sampled delay).  Jittered delays plus
    /// duplicates also yield reordering: copies overtake each other.
    #[serde(default)]
    pub dup_p: f64,
}

/// Outcome of offering one message to a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delivery {
    /// Message arrives after the given delay.
    After(f64),
    /// Message is lost.
    Dropped,
}

impl LinkModel {
    /// A perfect link: zero delay, no loss.
    pub fn perfect() -> Self {
        LinkModel {
            delay: Dist::constant(0.0),
            drop_p: 0.0,
            dup_p: 0.0,
        }
    }

    /// A lossy link with constant delay.
    ///
    /// # Panics
    /// Panics unless `0 <= drop_p <= 1` and `delay >= 0` finite.
    pub fn lossy(delay: f64, drop_p: f64) -> Self {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "delay must be finite and >= 0"
        );
        assert!((0.0..=1.0).contains(&drop_p), "drop_p must be in [0,1]");
        LinkModel {
            delay: Dist::constant(delay),
            drop_p,
            dup_p: 0.0,
        }
    }

    /// A lossy link whose delay is uniform on `[base, base + jitter)`.
    ///
    /// # Panics
    /// Panics unless `base >= 0`, `jitter >= 0` (both finite) and
    /// `0 <= drop_p <= 1`.
    pub fn jittered(base: f64, jitter: f64, drop_p: f64) -> Self {
        assert!(
            base.is_finite() && base >= 0.0,
            "base delay must be finite and >= 0"
        );
        assert!(
            jitter.is_finite() && jitter >= 0.0,
            "jitter must be finite and >= 0"
        );
        assert!((0.0..=1.0).contains(&drop_p), "drop_p must be in [0,1]");
        let delay = if jitter > 0.0 {
            Dist::uniform(base, base + jitter)
        } else {
            Dist::constant(base)
        };
        LinkModel {
            delay,
            drop_p,
            dup_p: 0.0,
        }
    }

    /// Same link, with a per-message duplication probability.
    ///
    /// # Panics
    /// Panics unless `0 <= dup_p <= 1`.
    pub fn with_duplicates(mut self, dup_p: f64) -> Self {
        assert!((0.0..=1.0).contains(&dup_p), "dup_p must be in [0,1]");
        self.dup_p = dup_p;
        self
    }

    /// A fully partitioned link: everything is dropped.  Heartbeats cease,
    /// which the detector must classify as a presumed crash.
    pub fn partitioned() -> Self {
        LinkModel {
            delay: Dist::constant(0.0),
            drop_p: 1.0,
            dup_p: 0.0,
        }
    }

    /// Offers one message to the link.
    pub fn offer(&self, rng: &mut Rng) -> Delivery {
        if self.drop_p > 0.0 && rng.bernoulli(self.drop_p) {
            Delivery::Dropped
        } else {
            Delivery::After(self.delay.sample(rng))
        }
    }

    /// Offers one message and returns the arrival delay of every copy that
    /// gets through: empty if dropped, one entry normally, two if the link
    /// duplicated the message.  Draw order (drop, delay, dup, dup delay) is
    /// fixed, and the dup draw happens only when `dup_p > 0`, so links
    /// without duplication consume exactly the same RNG stream as
    /// [`LinkModel::offer`].
    pub fn offer_copies(&self, rng: &mut Rng) -> Vec<f64> {
        match self.offer(rng) {
            Delivery::Dropped => Vec::new(),
            Delivery::After(d) => {
                if self.dup_p > 0.0 && rng.bernoulli(self.dup_p) {
                    let extra = self.delay.sample(rng);
                    vec![d, extra]
                } else {
                    vec![d]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_link_always_delivers_instantly() {
        let link = LinkModel::perfect();
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(link.offer(&mut rng), Delivery::After(0.0));
        }
    }

    #[test]
    fn partitioned_link_drops_everything() {
        let link = LinkModel::partitioned();
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(link.offer(&mut rng), Delivery::Dropped);
        }
    }

    #[test]
    fn lossy_link_drop_rate_matches() {
        let link = LinkModel::lossy(0.5, 0.25);
        let mut rng = Rng::seed_from_u64(3);
        let n = 100_000;
        let dropped = (0..n)
            .filter(|_| matches!(link.offer(&mut rng), Delivery::Dropped))
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn delivered_messages_carry_delay() {
        let link = LinkModel::lossy(0.5, 0.0);
        let mut rng = Rng::seed_from_u64(4);
        assert_eq!(link.offer(&mut rng), Delivery::After(0.5));
    }

    #[test]
    #[should_panic(expected = "drop_p must be in [0,1]")]
    fn bad_drop_probability_rejected() {
        let _ = LinkModel::lossy(0.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "delay must be finite and >= 0")]
    fn negative_delay_rejected() {
        let _ = LinkModel::lossy(-1.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "delay must be finite and >= 0")]
    fn non_finite_delay_rejected() {
        let _ = LinkModel::lossy(f64::NAN, 0.1);
    }

    #[test]
    fn jittered_link_delays_within_band() {
        let link = LinkModel::jittered(0.2, 0.4, 0.0);
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..1000 {
            match link.offer(&mut rng) {
                Delivery::After(d) => assert!((0.2..0.6).contains(&d), "delay {d}"),
                Delivery::Dropped => panic!("no drops configured"),
            }
        }
    }

    #[test]
    fn duplicate_rate_matches() {
        let link = LinkModel::jittered(0.1, 0.1, 0.0).with_duplicates(0.3);
        let mut rng = Rng::seed_from_u64(10);
        let n = 100_000;
        let dups = (0..n)
            .filter(|_| link.offer_copies(&mut rng).len() == 2)
            .count();
        let rate = dups as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn offer_copies_without_duplication_matches_offer_stream() {
        let link = LinkModel::jittered(0.1, 0.5, 0.2);
        let mut a = Rng::seed_from_u64(11);
        let mut b = Rng::seed_from_u64(11);
        for _ in 0..1000 {
            let copies = link.offer_copies(&mut a);
            match link.offer(&mut b) {
                Delivery::Dropped => assert!(copies.is_empty()),
                Delivery::After(d) => assert_eq!(copies, vec![d]),
            }
        }
    }

    #[test]
    fn stochastic_delay_link() {
        let link = LinkModel {
            delay: Dist::uniform(0.1, 0.3),
            drop_p: 0.0,
            dup_p: 0.0,
        };
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..1000 {
            match link.offer(&mut rng) {
                Delivery::After(d) => assert!((0.1..0.3).contains(&d)),
                Delivery::Dropped => panic!("no drops configured"),
            }
        }
    }
}
