//! Network link model for notification transport.
//!
//! The generic failure detection service (§3, report \[18\]) rides on
//! heartbeats and event-notification messages delivered over the wide-area
//! network.  A crash and a network partition look identical to the receiver
//! — heartbeats stop arriving — which is exactly why the detector presumes a
//! crash after a timeout.  [`LinkModel`] gives the simulated Grid a way to
//! delay or drop messages so engine tests can exercise that ambiguity.

use serde::{Deserialize, Serialize};

use crate::dist::Dist;
use crate::rng::Rng;

/// Delivery model for one logical link (Grid node → workflow engine).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Per-message propagation delay.
    pub delay: Dist,
    /// Probability an individual message is silently dropped.
    pub drop_p: f64,
}

/// Outcome of offering one message to a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delivery {
    /// Message arrives after the given delay.
    After(f64),
    /// Message is lost.
    Dropped,
}

impl LinkModel {
    /// A perfect link: zero delay, no loss.
    pub fn perfect() -> Self {
        LinkModel {
            delay: Dist::constant(0.0),
            drop_p: 0.0,
        }
    }

    /// A lossy link with constant delay.
    ///
    /// # Panics
    /// Panics unless `0 <= drop_p <= 1` and `delay >= 0` finite.
    pub fn lossy(delay: f64, drop_p: f64) -> Self {
        assert!((0.0..=1.0).contains(&drop_p), "drop_p must be in [0,1]");
        LinkModel {
            delay: Dist::constant(delay),
            drop_p,
        }
    }

    /// A fully partitioned link: everything is dropped.  Heartbeats cease,
    /// which the detector must classify as a presumed crash.
    pub fn partitioned() -> Self {
        LinkModel {
            delay: Dist::constant(0.0),
            drop_p: 1.0,
        }
    }

    /// Offers one message to the link.
    pub fn offer(&self, rng: &mut Rng) -> Delivery {
        if self.drop_p > 0.0 && rng.bernoulli(self.drop_p) {
            Delivery::Dropped
        } else {
            Delivery::After(self.delay.sample(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_link_always_delivers_instantly() {
        let link = LinkModel::perfect();
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(link.offer(&mut rng), Delivery::After(0.0));
        }
    }

    #[test]
    fn partitioned_link_drops_everything() {
        let link = LinkModel::partitioned();
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(link.offer(&mut rng), Delivery::Dropped);
        }
    }

    #[test]
    fn lossy_link_drop_rate_matches() {
        let link = LinkModel::lossy(0.5, 0.25);
        let mut rng = Rng::seed_from_u64(3);
        let n = 100_000;
        let dropped = (0..n)
            .filter(|_| matches!(link.offer(&mut rng), Delivery::Dropped))
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn delivered_messages_carry_delay() {
        let link = LinkModel::lossy(0.5, 0.0);
        let mut rng = Rng::seed_from_u64(4);
        assert_eq!(link.offer(&mut rng), Delivery::After(0.5));
    }

    #[test]
    #[should_panic(expected = "drop_p must be in [0,1]")]
    fn bad_drop_probability_rejected() {
        let _ = LinkModel::lossy(0.0, 1.5);
    }

    #[test]
    fn stochastic_delay_link() {
        let link = LinkModel {
            delay: Dist::uniform(0.1, 0.3),
            drop_p: 0.0,
        };
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..1000 {
            match link.offer(&mut rng) {
                Delivery::After(d) => assert!((0.1..0.3).contains(&d)),
                Delivery::Dropped => panic!("no drops configured"),
            }
        }
    }
}
