//! Deterministic random number generation.
//!
//! The evaluation in the paper is a Monte-Carlo study (100 000 runs per data
//! point), and the engine tests need bit-for-bit reproducible failure
//! injection, so the whole workspace uses one deterministic generator rather
//! than thread-local entropy.  We implement **xoshiro256++** (Blackman &
//! Vigna) seeded through **SplitMix64**, the standard pairing: SplitMix64
//! decorrelates arbitrary user seeds, and xoshiro256++ passes BigCrush while
//! costing a handful of ALU ops per draw — sampling is the hot loop of every
//! figure regeneration, so a cheap generator matters (see the perf-book
//! guidance on hot-path allocation/IO: there is none here).
//!
//! [`Rng::split`] derives statistically independent child streams, which lets
//! each replica / each Monte-Carlo run own its own stream and keeps results
//! independent of scheduling order.

/// Deterministic xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Seeds the generator from a single `u64` via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro's all-zero state is absorbing; SplitMix64 cannot produce
        // four consecutive zeros, but guard anyway for clarity.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Rng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; dividing by 2^53 yields [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `(0, 1]` — convenient for `ln()` without hitting 0.
    #[inline]
    pub fn next_f64_open0(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is non-finite.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Unbiased uniform integer in `[0, bound)` (Lemire's method).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "u64_below(0) is meaningless");
        // Lemire: multiply-shift with rejection of the biased zone.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform index in `[0, len)`.
    pub fn index(&mut self, len: usize) -> usize {
        self.u64_below(len as u64) as usize
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        // p == 1.0 must always hit; next_f64() < 1.0 guarantees it.
        self.next_f64() < p
    }

    /// Derives an independent child stream identified by `stream`.
    ///
    /// Children with distinct ids are decorrelated from each other and from
    /// the parent (the parent state is mixed with the id through SplitMix64).
    /// The parent is not advanced, so the set of children is a pure function
    /// of `(parent state, stream)`.
    pub fn split(&self, stream: u64) -> Rng {
        let mut sm = self
            .s
            .iter()
            .fold(stream ^ 0xA076_1D64_78BD_642F, |acc, &w| {
                acc.rotate_left(7) ^ w
            });
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Rng { s }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f64_open0();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Rng::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        // std-err of the mean is ~1/sqrt(12 n) ≈ 0.0009; 5 sigma bound.
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn u64_below_is_in_range_and_roughly_uniform() {
        let mut r = Rng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        let n = 50_000;
        for _ in 0..n {
            let v = r.u64_below(5);
            assert!(v < 5);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            let expect = n as f64 / 5.0;
            assert!(
                (c as f64 - expect).abs() < expect * 0.1,
                "counts {counts:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "u64_below(0)")]
    fn u64_below_zero_panics() {
        Rng::seed_from_u64(0).u64_below(0);
    }

    #[test]
    fn bernoulli_edges() {
        let mut r = Rng::seed_from_u64(11);
        for _ in 0..100 {
            assert!(r.bernoulli(1.0));
            assert!(!r.bernoulli(0.0));
        }
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let mut r = Rng::seed_from_u64(12);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn split_streams_are_independent_and_stable() {
        let parent = Rng::seed_from_u64(5);
        let mut c1 = parent.split(0);
        let mut c2 = parent.split(1);
        let mut c1_again = parent.split(0);
        let a: Vec<u64> = (0..16).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| c2.next_u64()).collect();
        let a2: Vec<u64> = (0..16).map(|_| c1_again.next_u64()).collect();
        assert_eq!(a, a2, "split is a pure function of (state, id)");
        assert_ne!(a, b, "distinct ids give distinct streams");
    }

    #[test]
    fn split_does_not_advance_parent() {
        let mut p1 = Rng::seed_from_u64(6);
        let mut p2 = Rng::seed_from_u64(6);
        let _ = p1.split(123);
        assert_eq!(p1.next_u64(), p2.next_u64());
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut r = Rng::seed_from_u64(8);
        for _ in 0..10_000 {
            let x = r.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
        // Degenerate range is allowed and returns the point.
        assert_eq!(r.range_f64(1.5, 1.5), 1.5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(21);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    fn index_covers_all_slots() {
        let mut r = Rng::seed_from_u64(22);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
