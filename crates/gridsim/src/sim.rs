//! The simulation driver: a clock plus an event queue.
//!
//! [`Sim`] is intentionally minimal — it owns the virtual clock and the
//! pending-event set, and hands events back to the caller one at a time.
//! Higher layers (the simulated Grid executor in the `grid-wfs` crate, the
//! Monte-Carlo samplers in `gridwfs-eval`) supply the event semantics.  This
//! inversion keeps the substrate free of any workflow knowledge and makes the
//! event loop trivially testable.

use crate::event::{EventId, EventQueue, Fired};
use crate::time::{SimDuration, SimTime};

/// A discrete-event simulation: virtual clock + pending-event set.
#[derive(Debug)]
pub struct Sim<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
}

impl<E> Default for Sim<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Sim<E> {
    /// A fresh simulation at time zero with no pending events.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
        }
    }

    /// Current virtual time.  Advances only when events are popped.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Count of events processed so far (useful for run-length caps).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at}, now={}",
            self.now
        );
        self.queue.schedule(at, payload)
    }

    /// Schedules an event `delay` units from now.
    pub fn schedule_in(&mut self, delay: impl Into<SimDuration>, payload: E) -> EventId {
        let at = self.now + delay.into();
        self.queue.schedule(at, payload)
    }

    /// Cancels a pending event.  Returns `false` if it already fired or was
    /// already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Pops the next event, advancing the clock to its timestamp.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Fired<E>> {
        let fired = self.queue.pop()?;
        debug_assert!(fired.time >= self.now, "event queue returned stale time");
        self.now = fired.time;
        self.processed += 1;
        Some(fired)
    }

    /// Pops the next event only if it fires at or before `horizon`;
    /// otherwise advances the clock to `horizon` and returns `None`.
    pub fn next_until(&mut self, horizon: SimTime) -> Option<Fired<E>> {
        match self.queue.peek_time() {
            Some(t) if t <= horizon => self.next(),
            _ => {
                self.now = self.now.max(horizon);
                None
            }
        }
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// True if no events remain.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule_in(2.0, 1);
        sim.schedule_in(5.0, 2);
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.next().unwrap().payload, 1);
        assert_eq!(sim.now(), SimTime::new(2.0));
        assert_eq!(sim.next().unwrap().payload, 2);
        assert_eq!(sim.now(), SimTime::new(5.0));
        assert!(sim.next().is_none());
        assert_eq!(sim.processed(), 2);
    }

    #[test]
    fn schedule_relative_stacks_on_current_time() {
        let mut sim: Sim<&str> = Sim::new();
        sim.schedule_in(1.0, "a");
        sim.next();
        sim.schedule_in(1.0, "b");
        let b = sim.next().unwrap();
        assert_eq!(b.time, SimTime::new(2.0));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim: Sim<()> = Sim::new();
        sim.schedule_in(5.0, ());
        sim.next();
        sim.schedule_at(SimTime::new(1.0), ());
    }

    #[test]
    fn cancel_through_sim() {
        let mut sim: Sim<&str> = Sim::new();
        let a = sim.schedule_in(1.0, "a");
        sim.schedule_in(2.0, "b");
        assert!(sim.cancel(a));
        assert_eq!(sim.next().unwrap().payload, "b");
    }

    #[test]
    fn next_until_respects_horizon() {
        let mut sim: Sim<&str> = Sim::new();
        sim.schedule_in(10.0, "late");
        assert!(sim.next_until(SimTime::new(5.0)).is_none());
        assert_eq!(sim.now(), SimTime::new(5.0), "clock advanced to horizon");
        let ev = sim.next_until(SimTime::new(20.0)).unwrap();
        assert_eq!(ev.payload, "late");
        assert_eq!(sim.now(), SimTime::new(10.0));
    }

    #[test]
    fn next_until_with_empty_queue_advances_clock() {
        let mut sim: Sim<()> = Sim::new();
        assert!(sim.next_until(SimTime::new(3.0)).is_none());
        assert_eq!(sim.now(), SimTime::new(3.0));
        // Horizon earlier than now: clock must not move backwards.
        assert!(sim.next_until(SimTime::new(1.0)).is_none());
        assert_eq!(sim.now(), SimTime::new(3.0));
    }

    #[test]
    fn pending_and_idle() {
        let mut sim: Sim<()> = Sim::new();
        assert!(sim.is_idle());
        sim.schedule_in(1.0, ());
        assert_eq!(sim.pending(), 1);
        sim.next();
        assert!(sim.is_idle());
    }
}
