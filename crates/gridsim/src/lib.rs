//! # gridwfs-sim — discrete-event Grid simulation substrate
//!
//! This crate provides the simulation substrate that the Grid-WFS reproduction
//! runs on.  The original paper (Hwang & Kesselman, HPDC 2003) evaluated the
//! Grid-WFS prototype with a Monte-Carlo simulation of task completion times
//! under Poisson failure arrivals; the prototype itself ran on the Globus
//! Toolkit.  Neither a 2003 Globus deployment nor the authors' simulator is
//! available, so this crate rebuilds the substrate from scratch:
//!
//! * a deterministic simulation clock and event queue ([`sim::Sim`]),
//! * counter-based deterministic random number streams ([`rng::Rng`]),
//! * the probability distributions the paper's stochastic model needs,
//!   implemented and tested locally ([`dist`]),
//! * Grid resources with failure/repair processes ([`resource`]),
//! * failure traces that can be recorded and replayed ([`trace`]),
//! * a simple network link model for heartbeat/notification transport
//!   ([`net`]).
//!
//! Everything is deterministic given a seed: the same seed always produces
//! the same event order, which the engine tests rely on.
//!
//! ## Quick example
//!
//! ```
//! use gridwfs_sim::{rng::Rng, dist::Dist, sim::Sim, time::SimTime};
//!
//! // Sample a failure process: exponential TTF with MTTF = 25.
//! let mut rng = Rng::seed_from_u64(7);
//! let ttf = Dist::exponential_mean(25.0);
//! let first_failure = ttf.sample(&mut rng);
//! assert!(first_failure > 0.0);
//!
//! // Drive a tiny discrete-event simulation.
//! let mut sim: Sim<&'static str> = Sim::new();
//! sim.schedule_in(first_failure, "host-crash");
//! let ev = sim.next().unwrap();
//! assert_eq!(ev.payload, "host-crash");
//! assert_eq!(sim.now(), SimTime::new(first_failure));
//! ```

pub mod dist;
pub mod event;
pub mod net;
pub mod resource;
pub mod rng;
pub mod sim;
pub mod time;
pub mod trace;

pub use dist::Dist;
pub use event::{EventId, EventQueue};
pub use resource::{GridResource, ResourceId, ResourceSpec};
pub use rng::Rng;
pub use sim::Sim;
pub use time::{SimDuration, SimTime};
pub use trace::{FailureTrace, TraceEntry};
