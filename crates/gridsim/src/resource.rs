//! Simulated Grid resources.
//!
//! A Grid resource (a host reachable through a GRAM-like job manager in the
//! original system) is modelled by the §8.1 parameters: a time-to-failure
//! distribution (Poisson arrivals ⇒ exponential TTF with rate λ = 1/MTTF), a
//! downtime distribution (exponential with mean D), and a relative speed that
//! scales task durations — the paper's motivation is *heterogeneous*
//! execution environments, from reliable Condor pools to donated desktop
//! cycles, and speed/MTTF are the two axes that heterogeneity shows up on.

use serde::{Deserialize, Serialize};

use crate::dist::Dist;
use crate::rng::Rng;
use crate::time::SimDuration;

/// Stable identifier of a resource within a simulated Grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResourceId(pub u32);

impl std::fmt::Display for ResourceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "res#{}", self.0)
    }
}

/// Declarative description of a Grid resource — what a resource catalog
/// entry or a WPDL `<Option hostname=.../>` line ultimately resolves to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceSpec {
    /// DNS-ish name, e.g. `bolas.isi.edu` from the paper's Figure 2.
    pub hostname: String,
    /// Job-manager service name (the paper uses `jobmanager`).
    pub service: String,
    /// Relative speed: a task with nominal duration F takes F/speed here.
    pub speed: f64,
    /// Time-to-failure distribution.  `Dist::exponential_mean(MTTF)` is the
    /// paper's model; `exponential_mean(0)` / rate 0 means failure-free.
    pub ttf: Dist,
    /// Downtime distribution following a crash (mean D in the paper).
    pub downtime: Dist,
    /// Free disk space in abstract units (drives disk-full exceptions).
    pub disk: f64,
}

impl ResourceSpec {
    /// A reliable unit-speed resource that never fails.
    pub fn reliable(hostname: impl Into<String>) -> Self {
        ResourceSpec {
            hostname: hostname.into(),
            service: "jobmanager".to_string(),
            speed: 1.0,
            ttf: Dist::exponential_mean(0.0),
            downtime: Dist::constant(0.0),
            disk: f64::MAX,
        }
    }

    /// A unit-speed resource with exponential failures (mean `mttf`) and
    /// exponential downtime (mean `down`), the exact §8.1 model.
    pub fn unreliable(hostname: impl Into<String>, mttf: f64, down: f64) -> Self {
        ResourceSpec {
            hostname: hostname.into(),
            service: "jobmanager".to_string(),
            speed: 1.0,
            ttf: Dist::exponential_mean(mttf),
            downtime: if down <= 0.0 {
                Dist::constant(0.0)
            } else {
                Dist::exponential_mean(down)
            },
            disk: f64::MAX,
        }
    }

    /// Builder-style speed override.
    pub fn with_speed(mut self, speed: f64) -> Self {
        assert!(speed.is_finite() && speed > 0.0, "speed must be > 0");
        self.speed = speed;
        self
    }

    /// Builder-style disk-capacity override.
    pub fn with_disk(mut self, disk: f64) -> Self {
        assert!(disk >= 0.0, "disk must be >= 0");
        self.disk = disk;
        self
    }

    /// Builder-style TTF override (e.g. a Weibull ablation model).
    pub fn with_ttf(mut self, ttf: Dist) -> Self {
        self.ttf = ttf;
        self
    }

    /// Wall-clock duration of a task with nominal work `nominal` on this
    /// resource (failure-free).
    pub fn scaled_duration(&self, nominal: f64) -> SimDuration {
        SimDuration::new(nominal / self.speed)
    }

    /// True if this resource never crashes.
    pub fn is_failure_free(&self) -> bool {
        self.ttf.is_never()
    }
}

/// A resource instantiated inside a simulation, with its own RNG stream so
/// its failure sequence is independent of everything else in the run.
#[derive(Debug, Clone)]
pub struct GridResource {
    /// Identifier within the simulated Grid.
    pub id: ResourceId,
    /// The declarative spec this instance was built from.
    pub spec: ResourceSpec,
    rng: Rng,
}

/// One up/down cycle of a resource: it stays up for `up` (then crashes) and
/// remains down for `down` before rebooting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpDown {
    /// Uptime preceding the crash.
    pub up: f64,
    /// Downtime following the crash.
    pub down: f64,
}

impl GridResource {
    /// Instantiates a resource with an independent RNG stream derived from
    /// `grid_rng` and the resource id.
    pub fn new(id: ResourceId, spec: ResourceSpec, grid_rng: &Rng) -> Self {
        GridResource {
            id,
            spec,
            rng: grid_rng.split(0x5E50_0000 | id.0 as u64),
        }
    }

    /// Samples the time until the *next* crash (possibly `INFINITY` for a
    /// failure-free resource).
    pub fn sample_ttf(&mut self) -> f64 {
        self.spec.ttf.sample(&mut self.rng)
    }

    /// Samples the downtime that follows a crash.
    pub fn sample_downtime(&mut self) -> f64 {
        self.spec.downtime.sample(&mut self.rng)
    }

    /// Samples the next full up/down cycle.
    ///
    /// # Panics
    /// Panics if the resource is failure-free (there is no next cycle).
    pub fn sample_cycle(&mut self) -> UpDown {
        let up = self.sample_ttf();
        assert!(
            up.is_finite(),
            "sample_cycle on failure-free resource {}",
            self.spec.hostname
        );
        let down = self.sample_downtime();
        UpDown { up, down }
    }

    /// Direct access to the resource's RNG stream (used by executors that
    /// need per-resource draws beyond failures, e.g. exception injection).
    pub fn rng_mut(&mut self) -> &mut Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_resource_never_fails() {
        let spec = ResourceSpec::reliable("bolas.isi.edu");
        assert!(spec.is_failure_free());
        let mut res = GridResource::new(ResourceId(1), spec, &Rng::seed_from_u64(1));
        assert!(res.sample_ttf().is_infinite());
    }

    #[test]
    fn unreliable_ttf_matches_mttf() {
        let spec = ResourceSpec::unreliable("vanuatu.isi.edu", 20.0, 5.0);
        let mut res = GridResource::new(ResourceId(2), spec, &Rng::seed_from_u64(2));
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| res.sample_ttf()).sum::<f64>() / n as f64;
        assert!((mean - 20.0).abs() < 0.4, "mean {mean}");
    }

    #[test]
    fn downtime_mean_matches() {
        let spec = ResourceSpec::unreliable("jupiter.isi.edu", 20.0, 5.0);
        let mut res = GridResource::new(ResourceId(3), spec, &Rng::seed_from_u64(3));
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| res.sample_downtime()).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn zero_downtime_collapses_to_constant() {
        let spec = ResourceSpec::unreliable("x", 20.0, 0.0);
        let mut res = GridResource::new(ResourceId(4), spec, &Rng::seed_from_u64(4));
        assert_eq!(res.sample_downtime(), 0.0);
    }

    #[test]
    fn speed_scales_duration() {
        let spec = ResourceSpec::reliable("fast").with_speed(2.0);
        assert_eq!(spec.scaled_duration(30.0), SimDuration::new(15.0));
    }

    #[test]
    #[should_panic(expected = "speed must be > 0")]
    fn zero_speed_rejected() {
        let _ = ResourceSpec::reliable("x").with_speed(0.0);
    }

    #[test]
    fn cycles_are_deterministic_per_seed() {
        let spec = ResourceSpec::unreliable("h", 10.0, 2.0);
        let mk = |seed| {
            let mut r = GridResource::new(ResourceId(7), spec.clone(), &Rng::seed_from_u64(seed));
            (0..5).map(|_| r.sample_cycle()).collect::<Vec<_>>()
        };
        assert_eq!(mk(42), mk(42));
        assert_ne!(mk(42), mk(43));
    }

    #[test]
    fn distinct_resources_have_independent_streams() {
        let grid_rng = Rng::seed_from_u64(9);
        let spec = ResourceSpec::unreliable("h", 10.0, 2.0);
        let mut a = GridResource::new(ResourceId(1), spec.clone(), &grid_rng);
        let mut b = GridResource::new(ResourceId(2), spec, &grid_rng);
        let xs: Vec<f64> = (0..8).map(|_| a.sample_ttf()).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.sample_ttf()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    #[should_panic(expected = "sample_cycle on failure-free")]
    fn cycle_on_reliable_panics() {
        let mut res = GridResource::new(
            ResourceId(5),
            ResourceSpec::reliable("r"),
            &Rng::seed_from_u64(5),
        );
        res.sample_cycle();
    }

    #[test]
    fn with_ttf_swaps_model() {
        let spec = ResourceSpec::unreliable("h", 10.0, 0.0).with_ttf(Dist::weibull(0.7, 10.0));
        assert!(matches!(spec.ttf, Dist::Weibull { .. }));
        assert!(!spec.is_failure_free());
    }

    #[test]
    fn disk_override() {
        let spec = ResourceSpec::reliable("h").with_disk(100.0);
        assert_eq!(spec.disk, 100.0);
    }
}
