//! Probability distributions for the paper's stochastic model.
//!
//! The evaluation (§8.1) models failures as a Poisson process (exponential
//! time-to-failure with rate λ = 1/MTTF), downtime as exponential with a
//! given mean, checkpoint overhead as a constant, and the disk-full exception
//! of Figure 13 as a Bernoulli process.  We implement these — plus uniform
//! and Weibull (the ablation model motivated by Plank & Elwasif's workstation
//! failure measurements, which the paper cites) — from scratch so the whole
//! stochastic model is visible and tested inside this repository.
//!
//! All distributions sample via inverse-CDF transforms from the
//! deterministic [`rng::Rng`](crate::rng::Rng), so every draw is reproducible.

use serde::{Deserialize, Serialize};

use crate::rng::Rng;
use crate::time::SimDuration;

/// A non-negative continuous distribution over durations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Point mass at `value` (used for checkpoint overhead C, recovery R).
    Constant { value: f64 },
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Exponential with rate `rate` (mean `1/rate`).  Rate 0 means "never":
    /// sampling returns `f64::INFINITY`, modelling a failure-free resource.
    Exponential { rate: f64 },
    /// Weibull with shape `k` and scale `lambda` (mean `lambda·Γ(1+1/k)`).
    Weibull { shape: f64, scale: f64 },
}

impl Dist {
    /// Point mass at `value`.
    ///
    /// # Panics
    /// Panics if `value` is negative or non-finite.
    pub fn constant(value: f64) -> Dist {
        assert!(
            value.is_finite() && value >= 0.0,
            "constant needs finite value >= 0"
        );
        Dist::Constant { value }
    }

    /// Uniform on `[lo, hi)`.
    ///
    /// # Panics
    /// Panics unless `0 <= lo <= hi` and both are finite.
    pub fn uniform(lo: f64, hi: f64) -> Dist {
        assert!(lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi);
        Dist::Uniform { lo, hi }
    }

    /// Exponential with rate λ.  `rate == 0` is the "never happens"
    /// distribution (samples +∞), used for failure-free resources.
    ///
    /// # Panics
    /// Panics if `rate` is negative or non-finite.
    pub fn exponential(rate: f64) -> Dist {
        assert!(rate.is_finite() && rate >= 0.0, "rate must be >= 0");
        Dist::Exponential { rate }
    }

    /// Exponential parameterised by its mean (MTTF).  A non-finite or zero
    /// mean yields the "never happens" distribution.
    pub fn exponential_mean(mean: f64) -> Dist {
        if !mean.is_finite() || mean <= 0.0 {
            Dist::Exponential { rate: 0.0 }
        } else {
            Dist::Exponential { rate: 1.0 / mean }
        }
    }

    /// Weibull(shape k, scale λ).
    ///
    /// # Panics
    /// Panics unless both parameters are finite and positive.
    pub fn weibull(shape: f64, scale: f64) -> Dist {
        assert!(shape.is_finite() && shape > 0.0, "shape must be > 0");
        assert!(scale.is_finite() && scale > 0.0, "scale must be > 0");
        Dist::Weibull { shape, scale }
    }

    /// Draws one sample.  May return `f64::INFINITY` only for
    /// `Exponential { rate: 0 }`.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        match *self {
            Dist::Constant { value } => value,
            Dist::Uniform { lo, hi } => rng.range_f64(lo, hi),
            Dist::Exponential { rate } => {
                if rate == 0.0 {
                    f64::INFINITY
                } else {
                    // Inverse CDF on u ∈ (0,1] avoids ln(0).
                    -rng.next_f64_open0().ln() / rate
                }
            }
            Dist::Weibull { shape, scale } => {
                scale * (-rng.next_f64_open0().ln()).powf(1.0 / shape)
            }
        }
    }

    /// Draws one sample as a [`SimDuration`].
    ///
    /// # Panics
    /// Panics if the sample is infinite (`Exponential { rate: 0 }`); callers
    /// that allow "never" must use [`Dist::sample`] and test for infinity.
    pub fn sample_duration(&self, rng: &mut Rng) -> SimDuration {
        SimDuration::new(self.sample(rng))
    }

    /// Analytical mean (`+∞` for the never-happens exponential).
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant { value } => value,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Exponential { rate } => {
                if rate == 0.0 {
                    f64::INFINITY
                } else {
                    1.0 / rate
                }
            }
            Dist::Weibull { shape, scale } => scale * gamma(1.0 + 1.0 / shape),
        }
    }

    /// Cumulative distribution function `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        match *self {
            Dist::Constant { value } => {
                if x >= value {
                    1.0
                } else {
                    0.0
                }
            }
            Dist::Uniform { lo, hi } => {
                if x < lo {
                    0.0
                } else if x >= hi {
                    1.0
                } else {
                    (x - lo) / (hi - lo)
                }
            }
            Dist::Exponential { rate } => 1.0 - (-rate * x).exp(),
            Dist::Weibull { shape, scale } => 1.0 - (-(x / scale).powf(shape)).exp(),
        }
    }

    /// True if this distribution never produces a sample (failure-free).
    pub fn is_never(&self) -> bool {
        matches!(self, Dist::Exponential { rate } if *rate == 0.0)
    }
}

/// Lanczos approximation of the Gamma function for positive arguments
/// (only needed for the Weibull mean; accurate to ~1e-10 on (0, 30]).
fn gamma(x: f64) -> f64 {
    assert!(x > 0.0, "gamma only implemented for x > 0");
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// A homogeneous Poisson arrival process: an iterator of strictly increasing
/// arrival times with exponential(λ) inter-arrival gaps.
///
/// This is the failure-arrival model of §8.1.  A `rate` of 0 produces an
/// empty process (no failures ever).
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rate: f64,
    now: f64,
    rng: Rng,
}

impl PoissonProcess {
    /// Starts a process at time 0 with the given arrival rate.
    ///
    /// # Panics
    /// Panics if `rate` is negative or non-finite.
    pub fn new(rate: f64, rng: Rng) -> Self {
        assert!(rate.is_finite() && rate >= 0.0);
        PoissonProcess {
            rate,
            now: 0.0,
            rng,
        }
    }

    /// Number of arrivals in `[0, horizon)`, consuming the iterator.
    pub fn count_until(self, horizon: f64) -> usize {
        let mut n = 0;
        for t in self {
            if t >= horizon {
                break;
            }
            n += 1;
        }
        n
    }
}

impl Iterator for PoissonProcess {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        if self.rate == 0.0 {
            return None;
        }
        let gap = -self.rng.next_f64_open0().ln() / self.rate;
        self.now += gap;
        Some(self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(d: &Dist, n: usize, seed: u64) -> f64 {
        let mut rng = Rng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_samples_exactly() {
        let d = Dist::constant(0.5);
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 0.5);
        }
        assert_eq!(d.mean(), 0.5);
    }

    #[test]
    fn exponential_mean_matches_analytic() {
        let d = Dist::exponential_mean(25.0);
        let m = sample_mean(&d, 200_000, 2);
        assert!((m - 25.0).abs() < 0.3, "mean {m}");
        assert_eq!(d.mean(), 25.0);
    }

    #[test]
    fn exponential_variance_matches_analytic() {
        let d = Dist::exponential(0.5); // mean 2, var 4
        let mut rng = Rng::seed_from_u64(3);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_memoryless_cdf() {
        let d = Dist::exponential(2.0);
        assert!((d.cdf(0.5) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert_eq!(d.cdf(-1.0), 0.0);
    }

    #[test]
    fn never_distribution() {
        let d = Dist::exponential_mean(0.0);
        assert!(d.is_never());
        let mut rng = Rng::seed_from_u64(4);
        assert!(d.sample(&mut rng).is_infinite());
        assert!(d.mean().is_infinite());
        let infinite_mean = Dist::exponential_mean(f64::INFINITY);
        assert!(infinite_mean.is_never());
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Dist::uniform(2.0, 6.0);
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..6.0).contains(&x));
        }
        let m = sample_mean(&d, 100_000, 6);
        assert!((m - 4.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        // Weibull(k=1, λ) == Exponential(1/λ).
        let w = Dist::weibull(1.0, 3.0);
        let m = sample_mean(&w, 200_000, 7);
        assert!((m - 3.0).abs() < 0.2, "mean {m}");
        assert!((w.mean() - 3.0).abs() < 1e-9);
        assert!((w.cdf(3.0) - Dist::exponential(1.0 / 3.0).cdf(3.0)).abs() < 1e-12);
    }

    #[test]
    fn weibull_mean_uses_gamma() {
        // Weibull(k=2, λ=1): mean = Γ(1.5) = sqrt(pi)/2.
        let w = Dist::weibull(2.0, 1.0);
        let expect = std::f64::consts::PI.sqrt() / 2.0;
        assert!((w.mean() - expect).abs() < 1e-9);
        let m = sample_mean(&w, 200_000, 8);
        assert!((m - expect).abs() < 0.01, "mean {m}");
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-9);
        assert!((gamma(2.0) - 1.0).abs() < 1e-9);
        assert!((gamma(5.0) - 24.0).abs() < 1e-6);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_monotone() {
        for d in [
            Dist::constant(1.0),
            Dist::uniform(0.0, 2.0),
            Dist::exponential(0.7),
            Dist::weibull(1.5, 2.0),
        ] {
            let mut prev = -0.1;
            let mut prev_cdf = 0.0;
            for i in 0..100 {
                let x = i as f64 * 0.1;
                let c = d.cdf(x);
                assert!(
                    c >= prev_cdf - 1e-12,
                    "{d:?} cdf not monotone at {x} (prev {prev})"
                );
                assert!((0.0..=1.0).contains(&c));
                prev = x;
                prev_cdf = c;
            }
        }
    }

    #[test]
    fn poisson_process_is_increasing() {
        let p = PoissonProcess::new(0.5, Rng::seed_from_u64(9));
        let arrivals: Vec<f64> = p.take(100).collect();
        for w in arrivals.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn poisson_process_count_matches_rate() {
        // E[N(0,T)] = λT = 0.2 * 1000 = 200; average over streams.
        let parent = Rng::seed_from_u64(10);
        let runs = 200;
        let total: usize = (0..runs)
            .map(|i| PoissonProcess::new(0.2, parent.split(i)).count_until(1000.0))
            .sum();
        let mean = total as f64 / runs as f64;
        assert!((mean - 200.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn zero_rate_process_is_empty() {
        let mut p = PoissonProcess::new(0.0, Rng::seed_from_u64(11));
        assert_eq!(p.next(), None);
    }

    #[test]
    fn weibull_ablation_shape_below_one_has_heavier_tail() {
        // Plank & Elwasif observed decreasing hazard rates on workstations;
        // Weibull with k < 1 models that.  Its CDF at small x should exceed
        // the exponential of equal mean (more early failures).
        let w = Dist::weibull(0.7, 1.0);
        let e = Dist::exponential_mean(w.mean());
        assert!(w.cdf(0.1) > e.cdf(0.1));
    }
}
