//! Simulation time.
//!
//! Simulated time is a non-negative, finite `f64` measured in abstract time
//! units (the paper's evaluation uses unit-free durations such as `F = 30`).
//! [`SimTime`] is a point on the simulation clock; [`SimDuration`] is a span
//! between two points.  Both types reject NaN on construction so they can
//! implement `Ord` safely.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time.
///
/// Construction panics on NaN; the simulator never manufactures NaN times, so
/// hitting that panic always indicates a bug in caller arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

/// A span of simulated time (always finite, may be zero, never negative).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimDuration(f64);

impl SimTime {
    /// Time zero — the instant every simulation starts at.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point from raw units.
    ///
    /// # Panics
    /// Panics if `t` is NaN, infinite, or negative.
    pub fn new(t: f64) -> Self {
        assert!(t.is_finite(), "SimTime must be finite, got {t}");
        assert!(t >= 0.0, "SimTime must be non-negative, got {t}");
        SimTime(t)
    }

    /// Raw value in simulation units.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "since() requires earlier ({}) <= self ({})",
            earlier.0,
            self.0
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The later of two time points.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration from raw units.
    ///
    /// # Panics
    /// Panics if `d` is NaN, infinite, or negative.
    pub fn new(d: f64) -> Self {
        assert!(d.is_finite(), "SimDuration must be finite, got {d}");
        assert!(d >= 0.0, "SimDuration must be non-negative, got {d}");
        SimDuration(d)
    }

    /// Raw value in simulation units.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// True if this duration is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

// SimTime/SimDuration are finite non-NaN by construction, so a total order
// is safe; PartialOrd delegates to Ord to keep the two consistent.
impl Eq for SimTime {}
impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl Eq for SimDuration {}
impl PartialOrd for SimDuration {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime::new(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration::new(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::new(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::new(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::new(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.4}", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl From<f64> for SimDuration {
    fn from(d: f64) -> Self {
        SimDuration::new(d)
    }
}

impl From<f64> for SimTime {
    fn from(t: f64) -> Self {
        SimTime::new(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_constants() {
        assert_eq!(SimTime::ZERO.as_f64(), 0.0);
        assert_eq!(SimDuration::ZERO.as_f64(), 0.0);
        assert!(SimDuration::ZERO.is_zero());
    }

    #[test]
    fn time_plus_duration() {
        let t = SimTime::new(10.0) + SimDuration::new(5.5);
        assert_eq!(t, SimTime::new(15.5));
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::new(1.0);
        t += SimDuration::new(2.0);
        assert_eq!(t.as_f64(), 3.0);
        let mut d = SimDuration::new(1.0);
        d += SimDuration::new(0.5);
        assert_eq!(d.as_f64(), 1.5);
    }

    #[test]
    fn since_and_sub() {
        let a = SimTime::new(3.0);
        let b = SimTime::new(7.5);
        assert_eq!(b.since(a), SimDuration::new(4.5));
        assert_eq!(b - a, SimDuration::new(4.5));
    }

    #[test]
    #[should_panic(expected = "since() requires")]
    fn since_rejects_future() {
        let _ = SimTime::new(1.0).since(SimTime::new(2.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::new(-0.1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_rejected() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_duration_rejected() {
        let _ = SimDuration::new(f64::INFINITY);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![SimTime::new(3.0), SimTime::new(1.0), SimTime::new(2.0)];
        v.sort();
        assert_eq!(
            v,
            vec![SimTime::new(1.0), SimTime::new(2.0), SimTime::new(3.0)]
        );
    }

    #[test]
    fn duration_scaling() {
        assert_eq!((SimDuration::new(3.0) * 2.0).as_f64(), 6.0);
        assert_eq!((SimDuration::new(3.0) / 2.0).as_f64(), 1.5);
    }

    #[test]
    fn max_picks_later() {
        assert_eq!(SimTime::new(2.0).max(SimTime::new(5.0)), SimTime::new(5.0));
        assert_eq!(SimTime::new(5.0).max(SimTime::new(2.0)), SimTime::new(5.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::new(1.5)), "t=1.5000");
        assert_eq!(format!("{}", SimDuration::new(0.25)), "0.2500");
    }

    #[test]
    fn from_f64_conversions() {
        let t: SimTime = 4.0.into();
        let d: SimDuration = 2.0.into();
        assert_eq!((t + d).as_f64(), 6.0);
    }
}
