//! The discrete-event queue.
//!
//! A classic pending-event set: events are `(time, payload)` pairs popped in
//! time order, with **FIFO tie-breaking** (two events scheduled for the same
//! instant pop in scheduling order) so simulations are deterministic.
//! Cancellation — needed when the engine cancels outstanding replicas after
//! the first one finishes (§4.2) — is implemented by lazy deletion: a
//! cancelled id stays in the heap but is skipped on pop, which keeps both
//! `schedule` and `cancel` O(log n) amortised with no rebalancing.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::SimTime;

/// Opaque handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug)]
struct Slot<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

/// A pending-event set ordered by simulation time.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    slots: std::collections::HashMap<u64, Slot<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

/// An event popped from the queue.
#[derive(Debug, PartialEq, Eq)]
pub struct Fired<E> {
    /// When the event fires.
    pub time: SimTime,
    /// The handle it was scheduled under.
    pub id: EventId,
    /// The scheduled payload.
    pub payload: E,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: std::collections::HashMap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.  Returns a handle for
    /// cancellation.  Events at equal times fire in scheduling order.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots.insert(seq, Slot { time, seq, payload });
        self.heap.push(Reverse((time, seq)));
        EventId(seq)
    }

    /// Cancels a scheduled event.  Returns `true` if the event was still
    /// pending (and is now guaranteed never to fire), `false` if it already
    /// fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.slots.remove(&id.0).is_some() {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Pops the earliest pending event, skipping cancelled ones.
    pub fn pop(&mut self) -> Option<Fired<E>> {
        while let Some(Reverse((_, seq))) = self.heap.pop() {
            if self.cancelled.remove(&seq) {
                continue;
            }
            if let Some(slot) = self.slots.remove(&seq) {
                return Some(Fired {
                    time: slot.time,
                    id: EventId(slot.seq),
                    payload: slot.payload,
                });
            }
        }
        None
    }

    /// Time of the earliest pending event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((t, seq))) = self.heap.peek() {
            if self.slots.contains_key(&seq) {
                return Some(t);
            }
            // Drop stale cancelled entry and keep looking.
            self.heap.pop();
            self.cancelled.remove(&seq);
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> SimTime {
        SimTime::new(x)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|f| f.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|f| f.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_is_idempotent_and_reports_status() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "second cancel reports not-pending");
        let b = q.schedule(t(1.0), ());
        assert_eq!(q.pop().unwrap().id, b);
        assert!(!q.cancel(b), "cancelling a fired event reports not-pending");
    }

    #[test]
    fn len_tracks_pending_only() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(t(1.0), ());
        let _b = q.schedule(t(2.0), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), ());
        q.schedule(t(2.0), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        assert_eq!(q.pop().unwrap().time, t(2.0));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn ids_are_unique() {
        let mut q = EventQueue::new();
        let ids: Vec<EventId> = (0..100).map(|i| q.schedule(t(i as f64), i)).collect();
        let set: HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10.0), "late");
        q.schedule(t(1.0), "early");
        assert_eq!(q.pop().unwrap().payload, "early");
        q.schedule(t(5.0), "mid");
        assert_eq!(q.pop().unwrap().payload, "mid");
        assert_eq!(q.pop().unwrap().payload, "late");
    }

    #[test]
    fn large_volume_stays_sorted() {
        let mut rng = crate::rng::Rng::seed_from_u64(13);
        let mut q = EventQueue::new();
        for _ in 0..10_000 {
            let tt = rng.next_f64() * 1000.0;
            q.schedule(t(tt), ());
        }
        let mut prev = t(0.0);
        while let Some(f) = q.pop() {
            assert!(f.time >= prev);
            prev = f.time;
        }
    }
}
