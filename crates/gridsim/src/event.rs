//! The discrete-event queue.
//!
//! A classic pending-event set: events are `(time, payload)` pairs popped in
//! time order, with **FIFO tie-breaking** (two events scheduled for the same
//! instant pop in scheduling order) so simulations are deterministic.
//! Cancellation — needed when the engine cancels outstanding replicas after
//! the first one finishes (§4.2) — is implemented by lazy deletion: a
//! cancelled event's heap entry stays in the heap but is skipped on pop.
//!
//! Storage is a **generational slab**: payloads live in a `Vec` indexed by a
//! reusable slot, and every scheduling gets a fresh monotonically increasing
//! sequence number that doubles as the slot's generation.  A heap entry is
//! valid iff its slot still holds its sequence number, so `schedule`,
//! `cancel` and `pop` are a couple of array accesses plus the heap work —
//! the earlier `HashMap`/`HashSet` bookkeeping hashed on every engine event,
//! which dominated the simulator hot path.  Memory stays bounded by the
//! maximum number of *concurrently pending* events (freed slots are reused
//! through a free list), not by the total scheduled over a run.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Opaque handle to a scheduled event, usable for cancellation.
///
/// Ordering follows scheduling order (earlier-scheduled handles compare
/// smaller), as before the slab rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId {
    seq: u64,
    slot: u32,
}

/// One slab cell: either a pending event or a link in the free list.
#[derive(Debug)]
enum Entry<E> {
    /// Free cell; `next` chains the free list.
    Vacant { next: Option<u32> },
    /// Pending event; its time lives in the heap key.  `seq` is the
    /// generation guard: a stale heap entry (cancelled, or popped and the
    /// slot since reused) carries a sequence number that no longer matches
    /// and is skipped.
    Occupied { seq: u64, payload: E },
}

/// A pending-event set ordered by simulation time.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Min-heap on `(time, seq)`; `slot` rides along to reach the slab cell
    /// without hashing.  `seq` is unique, so ties never reach `slot`.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    slots: Vec<Entry<E>>,
    free_head: Option<u32>,
    next_seq: u64,
    pending: usize,
}

/// An event popped from the queue.
#[derive(Debug, PartialEq, Eq)]
pub struct Fired<E> {
    /// When the event fires.
    pub time: SimTime,
    /// The handle it was scheduled under.
    pub id: EventId,
    /// The scheduled payload.
    pub payload: E,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free_head: None,
            next_seq: 0,
            pending: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.  Returns a handle for
    /// cancellation.  Events at equal times fire in scheduling order.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry::Occupied { seq, payload };
        let slot = match self.free_head {
            Some(idx) => {
                self.free_head = match self.slots[idx as usize] {
                    Entry::Vacant { next } => next,
                    Entry::Occupied { .. } => unreachable!("free list points at occupied slot"),
                };
                self.slots[idx as usize] = entry;
                idx
            }
            None => {
                let idx =
                    u32::try_from(self.slots.len()).expect("more than u32::MAX pending events");
                self.slots.push(entry);
                idx
            }
        };
        self.heap.push(Reverse((time, seq, slot)));
        self.pending += 1;
        EventId { seq, slot }
    }

    /// Frees `slot`, returning its payload.  The caller has already checked
    /// the generation.
    fn vacate(&mut self, slot: u32) -> E {
        let entry = std::mem::replace(
            &mut self.slots[slot as usize],
            Entry::Vacant {
                next: self.free_head,
            },
        );
        self.free_head = Some(slot);
        self.pending -= 1;
        match entry {
            Entry::Occupied { payload, .. } => payload,
            Entry::Vacant { .. } => unreachable!("vacate() of a vacant slot"),
        }
    }

    /// True if `slot` currently holds generation `seq`.
    fn is_live(&self, slot: u32, seq: u64) -> bool {
        matches!(
            self.slots.get(slot as usize),
            Some(Entry::Occupied { seq: s, .. }) if *s == seq
        )
    }

    /// Cancels a scheduled event.  Returns `true` if the event was still
    /// pending (and is now guaranteed never to fire), `false` if it already
    /// fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.is_live(id.slot, id.seq) {
            // The heap entry goes stale and is skipped on pop/peek.
            self.vacate(id.slot);
            true
        } else {
            false
        }
    }

    /// Pops the earliest pending event, skipping cancelled ones.
    pub fn pop(&mut self) -> Option<Fired<E>> {
        while let Some(Reverse((time, seq, slot))) = self.heap.pop() {
            if self.is_live(slot, seq) {
                let payload = self.vacate(slot);
                return Some(Fired {
                    time,
                    id: EventId { seq, slot },
                    payload,
                });
            }
        }
        None
    }

    /// Time of the earliest pending event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((t, seq, slot))) = self.heap.peek() {
            if self.is_live(slot, seq) {
                return Some(t);
            }
            // Drop the stale cancelled entry and keep looking.
            self.heap.pop();
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn t(x: f64) -> SimTime {
        SimTime::new(x)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|f| f.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|f| f.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn equal_times_fire_fifo_across_slot_reuse() {
        // Slot reuse must not disturb FIFO tie-breaking: after a cancel
        // frees slot 0, the *later-scheduled* event that reuses the slot
        // still fires after events scheduled before it.
        let mut q = EventQueue::new();
        let a = q.schedule(t(5.0), "a");
        q.schedule(t(5.0), "b");
        assert!(q.cancel(a));
        q.schedule(t(5.0), "c"); // reuses a's slot
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|f| f.payload)).collect();
        assert_eq!(order, vec!["b", "c"]);
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_is_idempotent_and_reports_status() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "second cancel reports not-pending");
        let b = q.schedule(t(1.0), ());
        assert_eq!(q.pop().unwrap().id, b);
        assert!(!q.cancel(b), "cancelling a fired event reports not-pending");
    }

    #[test]
    fn stale_handle_cannot_cancel_slot_reuser() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), "a");
        assert!(q.cancel(a));
        let b = q.schedule(t(2.0), "b"); // reuses a's slot, new generation
        assert!(!q.cancel(a), "stale handle must not hit the reused slot");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().id, b);
    }

    #[test]
    fn len_tracks_pending_only() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(t(1.0), ());
        let _b = q.schedule(t(2.0), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1.0), ());
        q.schedule(t(2.0), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        assert_eq!(q.pop().unwrap().time, t(2.0));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn ids_are_unique() {
        let mut q = EventQueue::new();
        let ids: Vec<EventId> = (0..100).map(|i| q.schedule(t(i as f64), i)).collect();
        let set: HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn ids_stay_unique_across_slot_reuse() {
        let mut q = EventQueue::new();
        let mut seen = HashSet::new();
        for round in 0..50 {
            let id = q.schedule(t(round as f64), round);
            assert!(seen.insert(id), "handle reused: {id:?}");
            q.pop();
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10.0), "late");
        q.schedule(t(1.0), "early");
        assert_eq!(q.pop().unwrap().payload, "early");
        q.schedule(t(5.0), "mid");
        assert_eq!(q.pop().unwrap().payload, "mid");
        assert_eq!(q.pop().unwrap().payload, "late");
    }

    #[test]
    fn slab_reuses_slots_instead_of_growing() {
        let mut q = EventQueue::new();
        for i in 0..10_000 {
            let id = q.schedule(t(i as f64), i);
            if i % 2 == 0 {
                q.cancel(id);
            } else {
                q.pop();
            }
        }
        assert!(
            q.slots.len() <= 2,
            "at most one pending event at a time, slab grew to {}",
            q.slots.len()
        );
    }

    #[test]
    fn large_volume_stays_sorted() {
        let mut rng = crate::rng::Rng::seed_from_u64(13);
        let mut q = EventQueue::new();
        for _ in 0..10_000 {
            let tt = rng.next_f64() * 1000.0;
            q.schedule(t(tt), ());
        }
        let mut prev = t(0.0);
        while let Some(f) = q.pop() {
            assert!(f.time >= prev);
            prev = f.time;
        }
    }

    #[test]
    fn randomized_against_reference_model() {
        // Drive the slab queue and a naive reference (sorted Vec with FIFO
        // tie-break) with the same random operation stream; they must agree
        // on every pop, cancel result, and length.
        let mut rng = crate::rng::Rng::seed_from_u64(0x51AB);
        let mut q = EventQueue::new();
        // Reference: (time, schedule_order, payload), popped min-first.
        let mut reference: Vec<(SimTime, u64, u32)> = Vec::new();
        let mut ids: Vec<(EventId, u64)> = Vec::new(); // (handle, schedule order)
        let mut order = 0u64;
        for step in 0..20_000u32 {
            match rng.index(4) {
                // Schedule (twice as likely as each other op).
                0 | 1 => {
                    // Coarse grid so equal timestamps actually occur.
                    let time = t((rng.index(32) as f64) * 0.5);
                    let id = q.schedule(time, step);
                    reference.push((time, order, step));
                    ids.push((id, order));
                    order += 1;
                }
                2 => {
                    let expect = reference
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| a.cmp(b))
                        .map(|(i, _)| i);
                    match (q.pop(), expect) {
                        (None, None) => {}
                        (Some(f), Some(i)) => {
                            let (rt, _, rp) = reference.remove(i);
                            assert_eq!(f.time, rt, "pop time at step {step}");
                            assert_eq!(f.payload, rp, "pop payload at step {step}");
                        }
                        (got, want) => panic!("pop mismatch at {step}: {got:?} vs {want:?}"),
                    }
                }
                _ => {
                    if !ids.is_empty() {
                        let (id, ord) = ids[rng.index(ids.len())];
                        let still = reference.iter().position(|&(_, o, _)| o == ord);
                        assert_eq!(
                            q.cancel(id),
                            still.is_some(),
                            "cancel status at step {step}"
                        );
                        if let Some(i) = still {
                            reference.remove(i);
                        }
                    }
                }
            }
            assert_eq!(q.len(), reference.len(), "len at step {step}");
        }
    }
}
