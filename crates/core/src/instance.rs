//! Runtime state of one workflow execution.
//!
//! [`Instance`] is the annotated parse tree of the paper's §7: the static
//! [`Workflow`] plus, per activity, a runtime status, and per transition, an
//! edge state.  The engine's navigator asks the instance two questions —
//! *which activities are ready?* and *is the workflow finished, and how did
//! it end?* — and informs it of one kind of fact: *this activity settled
//! with this terminal status*.
//!
//! ## Edge-firing semantics
//!
//! Every transition starts `Pending`.  When its source activity settles,
//! the edge either **fires** (trigger matches the outcome and the guard
//! condition, if any, evaluates true) or **dies**.  A skipped source kills
//! all its outgoing edges.  An activity with incoming edges becomes:
//!
//! * **ready** when its join is satisfied — AND: every incoming edge fired;
//!   OR: at least one fired (Figure 5's OR relationship) — and it is still
//!   `Pending`;
//! * **skipped** when its join can no longer be satisfied — AND: any edge
//!   died; OR: every edge died.  Skipping cascades.
//!
//! This is exactly the semantics the paper's figures rely on: in Figure 4
//! the `on='failed'` edge to the alternative task dies when the fast task
//! succeeds (so the alternative is skipped), and fires when it fails
//! terminally (so the alternative runs and the OR-join still completes).
//!
//! ## Workflow outcome
//!
//! The workflow **succeeds** when every sink activity is `Done` or
//! `Skipped` and at least one sink is `Done`.  It **fails** when all
//! activities are settled (or unreachable) and that condition does not
//! hold — the diagnostic lists every unhandled terminal failure.

use std::collections::HashMap;

use gridwfs_wpdl::ast::{JoinMode, Trigger, Workflow};
use gridwfs_wpdl::expr::{Env, EvalError, Value};
use gridwfs_wpdl::validate::Validated;

/// Runtime status of an activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeStatus {
    /// Not yet ready or not yet submitted.
    Pending,
    /// Submitted; attempts are in flight.
    Running,
    /// Completed successfully.
    Done,
    /// Crashed terminally (task-level masking exhausted).
    Failed,
    /// Raised the named user-defined exception (terminally).
    Exception(String),
    /// Never ran because its triggers died (e.g. an alternative task whose
    /// primary succeeded).
    Skipped,
}

impl NodeStatus {
    /// True for statuses that admit no further change.
    pub fn is_settled(&self) -> bool {
        !matches!(self, NodeStatus::Pending | NodeStatus::Running)
    }

    /// The `status('name')` string exposed to condition expressions.
    pub fn as_expr_str(&self) -> &'static str {
        match self {
            NodeStatus::Pending => "pending",
            NodeStatus::Running => "running",
            NodeStatus::Done => "done",
            NodeStatus::Failed => "failed",
            NodeStatus::Exception(_) => "exception",
            NodeStatus::Skipped => "skipped",
        }
    }
}

/// Runtime state of one `foreach` item.  `Pending` covers everything
/// non-terminal (unlaunched, in flight, waiting on a retry timer) — the
/// distinction is engine-local and deliberately not checkpointed: an
/// in-flight attempt interrupted by a crash is simply re-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ItemState {
    /// Not yet settled.
    #[default]
    Pending,
    /// Completed successfully.
    Done,
    /// Exhausted recovery under `on_item_failure='skip'`.
    Skipped,
    /// Exhausted recovery and landed in the dead-letter queue.
    DeadLettered,
    /// Cancelled because the activity failed (threshold breach or `stop`).
    Cancelled,
    /// The item whose exhaustion tripped `on_item_failure='stop'`.
    Failed,
}

impl ItemState {
    /// True once the item can no longer change state (this run).
    pub fn is_terminal(self) -> bool {
        self != ItemState::Pending
    }

    /// Stable wire string used in checkpoints and DLQ records.
    pub fn wire_str(self) -> &'static str {
        match self {
            ItemState::Pending => "pending",
            ItemState::Done => "done",
            ItemState::Skipped => "skipped",
            ItemState::DeadLettered => "dlq",
            ItemState::Cancelled => "cancelled",
            ItemState::Failed => "failed",
        }
    }

    /// Parses the wire string back.
    pub fn parse_wire(s: &str) -> Option<ItemState> {
        match s {
            "pending" => Some(ItemState::Pending),
            "done" => Some(ItemState::Done),
            "skipped" => Some(ItemState::Skipped),
            "dlq" => Some(ItemState::DeadLettered),
            "cancelled" => Some(ItemState::Cancelled),
            "failed" => Some(ItemState::Failed),
            _ => None,
        }
    }
}

/// Per-item progress of a `foreach` activity.  Checkpointed with the
/// instance so restarts neither re-run settled items nor forget banked
/// attempts, and so `dlq retry` can flip dead-lettered items back to
/// pending without touching anything else.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ItemProgress {
    /// Current state.
    pub state: ItemState,
    /// Attempts consumed (primary + failover), surviving restarts up to
    /// the last checkpoint.
    pub attempts: u32,
    /// True once the item switched to the failover program.
    pub failover: bool,
    /// True when a `dlq retry` reset this item; the engine records an
    /// `item_reprocess` trace event on its first re-submission.
    pub reprocess: bool,
    /// Last failure classification (dead-lettered items).
    pub reason: String,
}

/// State of one transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeState {
    /// Source not settled yet.
    Pending,
    /// Trigger matched; the dependency is satisfied.
    Fired,
    /// Trigger can never match (or guard was false).
    Dead,
}

/// How an activity's completion interacted with its loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompleteResult {
    /// The do-while condition held: the activity was reset and must run again.
    LoopAgain,
    /// The activity settled as `Done` and its outgoing edges were resolved.
    Settled,
}

/// Final outcome of a workflow execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Every sink finished or was legitimately bypassed, and at least one
    /// sink produced a result.
    Success,
    /// The workflow cannot complete; diagnostics list terminal failures
    /// that no workflow-level handler consumed.
    Failure {
        /// `(activity, status-string)` of each unhandled terminal failure.
        unhandled: Vec<(String, String)>,
    },
}

/// Runtime instance: static workflow + runtime annotations.
#[derive(Debug, Clone)]
pub struct Instance {
    workflow: Workflow,
    topo: Vec<String>,
    status: HashMap<String, NodeStatus>,
    edges: Vec<EdgeState>,
    runs: HashMap<String, u32>,
    vars: HashMap<String, Value>,
    items: HashMap<String, Vec<ItemProgress>>,
    /// Expression-evaluation problems encountered while resolving guards
    /// (logged, and the offending edge dies).
    eval_errors: Vec<String>,
}

impl Instance {
    /// Builds a fresh instance from a validated workflow.
    pub fn new(validated: Validated) -> Self {
        let topo = validated.topological_order().to_vec();
        let workflow = validated.into_workflow();
        let status = workflow
            .activities
            .iter()
            .map(|a| (a.name.clone(), NodeStatus::Pending))
            .collect();
        let runs = workflow
            .activities
            .iter()
            .map(|a| (a.name.clone(), 0u32))
            .collect();
        let vars = workflow
            .variables
            .iter()
            .map(|v| (v.name.clone(), v.value.clone()))
            .collect();
        let edges = vec![EdgeState::Pending; workflow.transitions.len()];
        let items = workflow
            .activities
            .iter()
            .filter_map(|a| {
                a.foreach
                    .as_ref()
                    .map(|f| (a.name.clone(), vec![ItemProgress::default(); f.items.len()]))
            })
            .collect();
        Instance {
            workflow,
            topo,
            status,
            edges,
            runs,
            vars,
            items,
            eval_errors: Vec::new(),
        }
    }

    /// The underlying definition.
    pub fn workflow(&self) -> &Workflow {
        &self.workflow
    }

    /// Topological order of activities.
    pub fn topological_order(&self) -> &[String] {
        &self.topo
    }

    /// Current status of an activity.
    ///
    /// # Panics
    /// Panics on an unknown activity name (engine-internal misuse).
    pub fn status(&self, name: &str) -> &NodeStatus {
        self.status
            .get(name)
            .unwrap_or_else(|| panic!("unknown activity '{name}'"))
    }

    /// Completion count of an activity (drives `runs('name')` and loops).
    pub fn runs(&self, name: &str) -> u32 {
        self.runs.get(name).copied().unwrap_or(0)
    }

    /// Reads a workflow variable.
    pub fn var(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    /// Sets a workflow variable (engine extension: tasks may export values).
    pub fn set_var(&mut self, name: impl Into<String>, value: Value) {
        self.vars.insert(name.into(), value);
    }

    /// Guard-evaluation problems encountered so far.
    pub fn eval_errors(&self) -> &[String] {
        &self.eval_errors
    }

    /// State of edge `i` (index into `workflow().transitions`).
    pub fn edge_state(&self, i: usize) -> EdgeState {
        self.edges[i]
    }

    fn join_satisfied(&self, name: &str) -> bool {
        let act = self.workflow.activity(name).expect("known activity");
        let mut any_incoming = false;
        let mut all_fired = true;
        let mut any_fired = false;
        for (i, t) in self.workflow.transitions.iter().enumerate() {
            if t.to == name {
                any_incoming = true;
                match self.edges[i] {
                    EdgeState::Fired => any_fired = true,
                    _ => all_fired = false,
                }
            }
        }
        if !any_incoming {
            return true; // roots are immediately ready
        }
        match act.join {
            JoinMode::And => all_fired,
            JoinMode::Or => any_fired,
        }
    }

    fn join_impossible(&self, name: &str) -> bool {
        let act = self.workflow.activity(name).expect("known activity");
        let mut any_incoming = false;
        let mut any_dead = false;
        let mut all_dead = true;
        for (i, t) in self.workflow.transitions.iter().enumerate() {
            if t.to == name {
                any_incoming = true;
                match self.edges[i] {
                    EdgeState::Dead => any_dead = true,
                    _ => all_dead = false,
                }
            }
        }
        if !any_incoming {
            return false;
        }
        match act.join {
            JoinMode::And => any_dead,
            JoinMode::Or => all_dead,
        }
    }

    /// Activities that are `Pending` with a satisfied join, in topological
    /// order.  The engine submits these (or completes them instantly if
    /// they are dummies).
    pub fn ready_nodes(&self) -> Vec<String> {
        self.topo
            .iter()
            .filter(|n| self.status[n.as_str()] == NodeStatus::Pending && self.join_satisfied(n))
            .cloned()
            .collect()
    }

    /// Marks an activity as submitted.
    ///
    /// # Panics
    /// Panics unless the activity is `Pending`.
    pub fn mark_running(&mut self, name: &str) {
        let s = self.status.get_mut(name).expect("known activity");
        assert_eq!(
            *s,
            NodeStatus::Pending,
            "mark_running on non-pending '{name}'"
        );
        *s = NodeStatus::Running;
    }

    /// Settles an activity with a terminal status, resolving its outgoing
    /// edges and cascading skips.  Returns the names of activities newly
    /// `Skipped` as a consequence (callers log them).
    ///
    /// For `Done` with an attached do-while loop whose condition holds, the
    /// activity is *reset* instead (status back to `Pending`, `runs`
    /// incremented, outgoing edges untouched) and `CompleteResult::LoopAgain`
    /// is returned with no skips.
    pub fn settle(&mut self, name: &str, status: NodeStatus) -> (CompleteResult, Vec<String>) {
        assert!(status.is_settled(), "settle() requires a terminal status");
        {
            let s = self.status.get_mut(name).expect("known activity");
            assert!(
                !s.is_settled(),
                "activity '{name}' is already settled as {s:?}"
            );
            *s = status.clone();
        }
        if status == NodeStatus::Done {
            *self.runs.get_mut(name).expect("known activity") += 1;
            if let Some(l) = self.workflow.loop_for(name) {
                let cond = l.condition.clone();
                match cond.eval_bool(&EnvView { instance: self }) {
                    Ok(true) => {
                        *self.status.get_mut(name).expect("known") = NodeStatus::Pending;
                        return (CompleteResult::LoopAgain, Vec::new());
                    }
                    Ok(false) => {}
                    Err(e) => {
                        // A broken loop condition stops iteration (logged);
                        // the completion still settles normally.
                        self.eval_errors
                            .push(format!("loop condition on '{name}': {e}"));
                    }
                }
            }
        }
        // Resolve outgoing edges.
        let outcome = status;
        let mut to_eval: Vec<(usize, bool)> = Vec::new();
        for (i, t) in self.workflow.transitions.iter().enumerate() {
            if t.from != name {
                continue;
            }
            debug_assert_eq!(self.edges[i], EdgeState::Pending, "edge resolved twice");
            let trigger_matches = match (&t.trigger, &outcome) {
                (_, NodeStatus::Skipped) => false,
                (Trigger::Done, NodeStatus::Done) => true,
                (Trigger::Failed, NodeStatus::Failed) => true,
                (Trigger::Exception(want), NodeStatus::Exception(got)) => want == got,
                (Trigger::Always, _) => true,
                _ => false,
            };
            to_eval.push((i, trigger_matches));
        }
        for (i, trigger_matches) in to_eval {
            let fired = if !trigger_matches {
                false
            } else if let Some(cond) = self.workflow.transitions[i].condition.clone() {
                match cond.eval_bool(&EnvView { instance: self }) {
                    Ok(b) => b,
                    Err(e) => {
                        let t = &self.workflow.transitions[i];
                        self.eval_errors.push(format!(
                            "condition on transition {} -> {}: {e}",
                            t.from, t.to
                        ));
                        false
                    }
                }
            } else {
                true
            };
            self.edges[i] = if fired {
                EdgeState::Fired
            } else {
                EdgeState::Dead
            };
        }
        // Cascade skips until a fixpoint (one pass per wave is enough
        // because we re-scan from the start after each settle).
        let mut skipped = Vec::new();
        loop {
            let next: Option<String> = self
                .topo
                .iter()
                .find(|n| self.status[n.as_str()] == NodeStatus::Pending && self.join_impossible(n))
                .cloned();
            match next {
                Some(n) => {
                    let (_, mut more) = self.settle(&n, NodeStatus::Skipped);
                    skipped.push(n);
                    skipped.append(&mut more);
                }
                None => break,
            }
        }
        (CompleteResult::Settled, skipped)
    }

    /// True when no activity is `Pending`-and-reachable or `Running` —
    /// i.e. navigation has nothing left to do.
    pub fn is_finished(&self) -> bool {
        self.status.values().all(|s| s.is_settled())
    }

    /// Whether anything is currently running.
    pub fn has_running(&self) -> bool {
        self.status.values().any(|s| *s == NodeStatus::Running)
    }

    /// Final outcome.  Meaningful once [`Instance::is_finished`] is true.
    pub fn outcome(&self) -> Outcome {
        let sinks = self.workflow.sinks();
        let any_done = sinks
            .iter()
            .any(|a| self.status[&a.name] == NodeStatus::Done);
        let all_ok = sinks
            .iter()
            .all(|a| matches!(self.status[&a.name], NodeStatus::Done | NodeStatus::Skipped));
        if any_done && all_ok {
            Outcome::Success
        } else {
            // An unhandled failure is a terminal failure/exception none of
            // whose outgoing edges fired.
            let mut unhandled = Vec::new();
            for a in &self.workflow.activities {
                let st = &self.status[&a.name];
                let is_failure = matches!(st, NodeStatus::Failed | NodeStatus::Exception(_));
                if is_failure {
                    let handled = self
                        .workflow
                        .transitions
                        .iter()
                        .enumerate()
                        .any(|(i, t)| t.from == a.name && self.edges[i] == EdgeState::Fired);
                    if !handled {
                        unhandled.push((a.name.clone(), st.as_expr_str().to_string()));
                    }
                }
            }
            Outcome::Failure { unhandled }
        }
    }

    /// Snapshot of all node statuses (for reports and checkpointing).
    pub fn statuses(&self) -> impl Iterator<Item = (&str, &NodeStatus)> {
        self.topo
            .iter()
            .map(move |n| (n.as_str(), &self.status[n.as_str()]))
    }

    /// Per-item progress of a `foreach` activity, indexed like its item
    /// list.  `None` for ordinary activities.
    pub fn items(&self, name: &str) -> Option<&[ItemProgress]> {
        self.items.get(name).map(|v| v.as_slice())
    }

    /// `foreach` activities with their item progress, in topological order
    /// (for checkpointing and report building).
    pub fn items_iter(&self) -> impl Iterator<Item = (&str, &[ItemProgress])> {
        self.topo.iter().filter_map(move |n| {
            self.items
                .get(n.as_str())
                .map(|v| (n.as_str(), v.as_slice()))
        })
    }

    /// Mutable per-item progress (engine bookkeeping).
    ///
    /// # Panics
    /// Panics if the activity has no `foreach` or the index is out of range.
    pub(crate) fn item_mut(&mut self, name: &str, idx: usize) -> &mut ItemProgress {
        &mut self
            .items
            .get_mut(name)
            .unwrap_or_else(|| panic!("activity '{name}' has no foreach items"))[idx]
    }

    /// Restores one item's progress (engine-checkpoint restart path).
    pub(crate) fn force_item(&mut self, name: &str, idx: usize, progress: ItemProgress) {
        if let Some(v) = self.items.get_mut(name) {
            if idx < v.len() {
                v[idx] = progress;
            }
        }
    }

    /// Restores a node's status directly (engine-checkpoint restart path).
    /// Unlike [`Instance::settle`] this does not touch edges — the caller
    /// replays edge resolution by re-settling in topological order.
    pub(crate) fn force_status(&mut self, name: &str, status: NodeStatus) {
        *self.status.get_mut(name).expect("known activity") = status;
    }

    /// Restores a run counter (engine-checkpoint restart path).
    pub(crate) fn force_runs(&mut self, name: &str, runs: u32) {
        *self.runs.get_mut(name).expect("known activity") = runs;
    }

    /// Workflow variables in sorted-name order (for checkpointing).
    pub fn vars_iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        let mut pairs: Vec<(&str, &Value)> =
            self.vars.iter().map(|(k, v)| (k.as_str(), v)).collect();
        pairs.sort_by_key(|(k, _)| *k);
        pairs.into_iter()
    }

    /// Recomputes every edge state from the current node statuses — the
    /// engine-checkpoint restart path, after statuses were force-restored.
    /// Edges from unsettled sources stay `Pending`; edges from settled
    /// sources fire or die exactly as [`Instance::settle`] would have
    /// resolved them (guards are re-evaluated against the restored
    /// variables and run counts).
    pub(crate) fn recompute_edges(&mut self) {
        for i in 0..self.workflow.transitions.len() {
            let t = self.workflow.transitions[i].clone();
            let source_status = self.status[&t.from].clone();
            if !source_status.is_settled() {
                self.edges[i] = EdgeState::Pending;
                continue;
            }
            let trigger_matches = match (&t.trigger, &source_status) {
                (_, NodeStatus::Skipped) => false,
                (Trigger::Done, NodeStatus::Done) => true,
                (Trigger::Failed, NodeStatus::Failed) => true,
                (Trigger::Exception(want), NodeStatus::Exception(got)) => want == got,
                (Trigger::Always, _) => true,
                _ => false,
            };
            let fired = if !trigger_matches {
                false
            } else if let Some(cond) = &t.condition {
                match cond.eval_bool(&EnvView { instance: self }) {
                    Ok(b) => b,
                    Err(e) => {
                        self.eval_errors.push(format!(
                            "condition on transition {} -> {} (restore): {e}",
                            t.from, t.to
                        ));
                        false
                    }
                }
            } else {
                true
            };
            self.edges[i] = if fired {
                EdgeState::Fired
            } else {
                EdgeState::Dead
            };
        }
    }
}

/// `Env` view for condition evaluation.
struct EnvView<'a> {
    instance: &'a Instance,
}

impl Env for EnvView<'_> {
    fn var(&self, name: &str) -> Option<Value> {
        self.instance.vars.get(name).cloned()
    }

    fn call(&self, name: &str, args: &[Value]) -> Result<Value, EvalError> {
        let activity_arg = |args: &[Value]| -> Result<String, EvalError> {
            match args {
                [Value::Str(s)] => Ok(s.clone()),
                _ => Err(EvalError::Type(format!(
                    "{name}() takes one activity-name string"
                ))),
            }
        };
        match name {
            "status" => {
                let a = activity_arg(args)?;
                match self.instance.status.get(&a) {
                    Some(s) => Ok(Value::Str(s.as_expr_str().to_string())),
                    None => Err(EvalError::Type(format!("status(): unknown activity '{a}'"))),
                }
            }
            "runs" => {
                let a = activity_arg(args)?;
                if self.instance.status.contains_key(&a) {
                    Ok(Value::Num(self.instance.runs(&a) as f64))
                } else {
                    Err(EvalError::Type(format!("runs(): unknown activity '{a}'")))
                }
            }
            other => Err(EvalError::UnknownFn(other.to_string())),
        }
    }
}

/// Evaluates an expression against an instance (used by the engine for
/// loop conditions and by tests).
pub fn eval_in(instance: &Instance, expr: &gridwfs_wpdl::expr::Expr) -> Result<Value, EvalError> {
    expr.eval(&EnvView { instance })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwfs_wpdl::builder::{figure4, figure5, figure6, WorkflowBuilder};
    use gridwfs_wpdl::validate::validate;

    fn instance(w: Workflow) -> Instance {
        Instance::new(validate(w).expect("test workflows validate"))
    }

    fn fig4() -> Instance {
        instance(figure4(30.0, 150.0))
    }

    #[test]
    fn roots_are_ready_initially() {
        let inst = fig4();
        assert_eq!(inst.ready_nodes(), vec!["fast_task"]);
        assert_eq!(*inst.status("fast_task"), NodeStatus::Pending);
    }

    #[test]
    fn figure4_success_path_skips_alternative() {
        let mut inst = fig4();
        inst.mark_running("fast_task");
        let (r, skipped) = inst.settle("fast_task", NodeStatus::Done);
        assert_eq!(r, CompleteResult::Settled);
        assert_eq!(skipped, vec!["slow_task"], "alternative is bypassed");
        assert_eq!(inst.ready_nodes(), vec!["join_task"], "OR-join ready");
        inst.mark_running("join_task");
        inst.settle("join_task", NodeStatus::Done);
        assert!(inst.is_finished());
        assert_eq!(inst.outcome(), Outcome::Success);
    }

    #[test]
    fn figure4_failure_path_activates_alternative() {
        let mut inst = fig4();
        inst.mark_running("fast_task");
        let (_, skipped) = inst.settle("fast_task", NodeStatus::Failed);
        assert!(
            skipped.is_empty(),
            "nothing skipped: alternative takes over"
        );
        assert_eq!(inst.ready_nodes(), vec!["slow_task"]);
        inst.mark_running("slow_task");
        inst.settle("slow_task", NodeStatus::Done);
        assert_eq!(inst.ready_nodes(), vec!["join_task"]);
        inst.mark_running("join_task");
        inst.settle("join_task", NodeStatus::Done);
        assert_eq!(inst.outcome(), Outcome::Success, "failure was handled");
    }

    #[test]
    fn figure4_double_failure_is_unhandled() {
        let mut inst = fig4();
        inst.mark_running("fast_task");
        inst.settle("fast_task", NodeStatus::Failed);
        inst.mark_running("slow_task");
        let (_, skipped) = inst.settle("slow_task", NodeStatus::Failed);
        assert_eq!(skipped, vec!["join_task"], "join unreachable");
        assert!(inst.is_finished());
        match inst.outcome() {
            Outcome::Failure { unhandled } => {
                assert_eq!(
                    unhandled,
                    vec![("slow_task".to_string(), "failed".to_string())]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn figure5_redundancy_first_success_wins() {
        let mut inst = instance(figure5(30.0, 150.0));
        assert_eq!(inst.ready_nodes(), vec!["split_task"]);
        inst.mark_running("split_task");
        inst.settle("split_task", NodeStatus::Done);
        assert_eq!(inst.ready_nodes(), vec!["fast_task", "slow_task"]);
        inst.mark_running("fast_task");
        inst.mark_running("slow_task");
        inst.settle("fast_task", NodeStatus::Done);
        // OR-join is ready even though slow_task is still running.
        assert_eq!(inst.ready_nodes(), vec!["join_task"]);
        inst.mark_running("join_task");
        inst.settle("join_task", NodeStatus::Done);
        inst.settle("slow_task", NodeStatus::Done);
        assert_eq!(inst.outcome(), Outcome::Success);
    }

    #[test]
    fn figure5_one_branch_may_fail() {
        let mut inst = instance(figure5(30.0, 150.0));
        inst.mark_running("split_task");
        inst.settle("split_task", NodeStatus::Done);
        inst.mark_running("fast_task");
        inst.mark_running("slow_task");
        inst.settle("fast_task", NodeStatus::Failed);
        assert!(inst.ready_nodes().is_empty(), "join waits for slow branch");
        inst.settle("slow_task", NodeStatus::Done);
        assert_eq!(inst.ready_nodes(), vec!["join_task"]);
        inst.mark_running("join_task");
        inst.settle("join_task", NodeStatus::Done);
        assert_eq!(inst.outcome(), Outcome::Success);
    }

    #[test]
    fn figure6_exception_routes_to_handler() {
        let mut inst = instance(figure6(30.0, 150.0));
        inst.mark_running("fast_task");
        inst.settle("fast_task", NodeStatus::Exception("disk_full".into()));
        assert_eq!(inst.ready_nodes(), vec!["slow_task"]);
        inst.mark_running("slow_task");
        inst.settle("slow_task", NodeStatus::Done);
        inst.mark_running("join_task");
        inst.settle("join_task", NodeStatus::Done);
        assert_eq!(inst.outcome(), Outcome::Success);
    }

    #[test]
    fn figure6_wrong_exception_name_is_unhandled() {
        let mut inst = instance(figure6(30.0, 150.0));
        inst.mark_running("fast_task");
        let (_, skipped) = inst.settle("fast_task", NodeStatus::Exception("oom".into()));
        // Handler edge requires disk_full; everything downstream dies.
        assert_eq!(skipped.len(), 2);
        match inst.outcome() {
            Outcome::Failure { unhandled } => {
                assert_eq!(unhandled[0].0, "fast_task");
                assert_eq!(unhandled[0].1, "exception");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn and_join_waits_for_all() {
        let mut b = WorkflowBuilder::new("and");
        b.activity("a", "p");
        b.activity("b", "p");
        b.dummy("j");
        let w = b.edge("a", "j").edge("b", "j").build_unchecked();
        let mut w2 = w;
        w2.programs
            .push(gridwfs_wpdl::ast::Program::new("p", 1.0, "h"));
        let mut inst = instance(w2);
        inst.mark_running("a");
        inst.mark_running("b");
        inst.settle("a", NodeStatus::Done);
        assert!(inst.ready_nodes().is_empty());
        inst.settle("b", NodeStatus::Done);
        assert_eq!(inst.ready_nodes(), vec!["j"]);
    }

    #[test]
    fn and_join_dies_on_any_failure() {
        let mut b = WorkflowBuilder::new("and");
        b.activity("a", "p");
        b.activity("b", "p");
        b.dummy("j");
        let mut w = b.edge("a", "j").edge("b", "j").build_unchecked();
        w.programs
            .push(gridwfs_wpdl::ast::Program::new("p", 1.0, "h"));
        let mut inst = instance(w);
        inst.mark_running("a");
        inst.mark_running("b");
        let (_, skipped) = inst.settle("a", NodeStatus::Failed);
        assert_eq!(skipped, vec!["j"]);
        inst.settle("b", NodeStatus::Done);
        assert!(matches!(inst.outcome(), Outcome::Failure { .. }));
    }

    #[test]
    fn conditional_edge_routes_if_then_else() {
        let mut b = WorkflowBuilder::new("cond").variable("big", Value::Bool(true));
        b.activity("a", "p");
        b.activity("yes", "p");
        b.activity("no", "p");
        let mut w = b
            .edge_if("a", "yes", "$big")
            .edge_if("a", "no", "!$big")
            .build_unchecked();
        w.programs
            .push(gridwfs_wpdl::ast::Program::new("p", 1.0, "h"));
        let mut inst = instance(w);
        inst.mark_running("a");
        let (_, skipped) = inst.settle("a", NodeStatus::Done);
        assert_eq!(skipped, vec!["no"]);
        assert_eq!(inst.ready_nodes(), vec!["yes"]);
    }

    #[test]
    fn broken_condition_kills_edge_and_is_logged() {
        let mut b = WorkflowBuilder::new("bad");
        b.activity("a", "p");
        b.activity("b", "p");
        let mut w = b.edge_if("a", "b", "$undefined_var").build_unchecked();
        w.programs
            .push(gridwfs_wpdl::ast::Program::new("p", 1.0, "h"));
        let mut inst = instance(w);
        inst.mark_running("a");
        let (_, skipped) = inst.settle("a", NodeStatus::Done);
        assert_eq!(skipped, vec!["b"]);
        assert_eq!(inst.eval_errors().len(), 1);
        assert!(inst.eval_errors()[0].contains("undefined_var"));
    }

    #[test]
    fn do_while_loops_until_condition_false() {
        let mut b = WorkflowBuilder::new("loop");
        b.activity("a", "p");
        b.activity("b", "p");
        let mut w = b
            .edge("a", "b")
            .do_while("a", "runs('a') < 3")
            .build_unchecked();
        w.programs
            .push(gridwfs_wpdl::ast::Program::new("p", 1.0, "h"));
        let mut inst = instance(w);
        for expected_runs in 1..=2 {
            inst.mark_running("a");
            let (r, _) = inst.settle("a", NodeStatus::Done);
            assert_eq!(r, CompleteResult::LoopAgain);
            assert_eq!(inst.runs("a"), expected_runs);
            assert_eq!(inst.ready_nodes(), vec!["a"], "a re-queued");
        }
        inst.mark_running("a");
        let (r, _) = inst.settle("a", NodeStatus::Done);
        assert_eq!(r, CompleteResult::Settled);
        assert_eq!(inst.runs("a"), 3);
        assert_eq!(inst.ready_nodes(), vec!["b"], "downstream released");
    }

    #[test]
    fn loop_does_not_rerun_on_failure() {
        let mut b = WorkflowBuilder::new("loop");
        b.activity("a", "p");
        let mut w = b.do_while("a", "true").build_unchecked();
        w.programs
            .push(gridwfs_wpdl::ast::Program::new("p", 1.0, "h"));
        let mut inst = instance(w);
        inst.mark_running("a");
        let (r, _) = inst.settle("a", NodeStatus::Failed);
        assert_eq!(r, CompleteResult::Settled, "failures are not looped");
        assert!(inst.is_finished());
    }

    #[test]
    fn always_edge_fires_on_any_terminal() {
        for terminal in [
            NodeStatus::Done,
            NodeStatus::Failed,
            NodeStatus::Exception("e".into()),
        ] {
            let mut b = WorkflowBuilder::new("w").exception("e", false);
            b.activity("a", "p");
            b.activity("cleanup", "p");
            let mut w = b.always("a", "cleanup").build_unchecked();
            w.programs
                .push(gridwfs_wpdl::ast::Program::new("p", 1.0, "h"));
            let mut inst = instance(w);
            inst.mark_running("a");
            inst.settle("a", terminal.clone());
            assert_eq!(
                inst.ready_nodes(),
                vec!["cleanup"],
                "cleanup must follow {terminal:?}"
            );
        }
    }

    #[test]
    fn skip_cascades_through_chains() {
        let mut b = WorkflowBuilder::new("chain");
        for n in ["a", "b", "c", "d"] {
            b.activity(n, "p");
        }
        let mut w = b
            .edge("a", "b")
            .edge("b", "c")
            .edge("c", "d")
            .build_unchecked();
        w.programs
            .push(gridwfs_wpdl::ast::Program::new("p", 1.0, "h"));
        let mut inst = instance(w);
        inst.mark_running("a");
        let (_, skipped) = inst.settle("a", NodeStatus::Failed);
        assert_eq!(skipped, vec!["b", "c", "d"]);
        assert!(inst.is_finished());
    }

    #[test]
    fn status_function_visible_to_conditions() {
        let mut b = WorkflowBuilder::new("w");
        b.activity("a", "p");
        b.activity("b", "p");
        b.activity("c", "p");
        let mut w = b
            .edge("a", "b")
            .edge_if("b", "c", "status('a') == 'done'")
            .build_unchecked();
        w.programs
            .push(gridwfs_wpdl::ast::Program::new("p", 1.0, "h"));
        let mut inst = instance(w);
        inst.mark_running("a");
        inst.settle("a", NodeStatus::Done);
        inst.mark_running("b");
        inst.settle("b", NodeStatus::Done);
        assert_eq!(inst.ready_nodes(), vec!["c"]);
    }

    #[test]
    #[should_panic(expected = "already settled")]
    fn double_settle_panics() {
        let mut inst = fig4();
        inst.mark_running("fast_task");
        inst.settle("fast_task", NodeStatus::Done);
        inst.settle("fast_task", NodeStatus::Done);
    }

    #[test]
    #[should_panic(expected = "mark_running on non-pending")]
    fn mark_running_twice_panics() {
        let mut inst = fig4();
        inst.mark_running("fast_task");
        inst.mark_running("fast_task");
    }

    #[test]
    fn settling_from_pending_is_allowed() {
        // A submission that fails before the node was ever marked running
        // (e.g. unknown host) settles straight from Pending.
        let mut inst = fig4();
        let (_, _) = inst.settle("fast_task", NodeStatus::Failed);
        assert_eq!(*inst.status("fast_task"), NodeStatus::Failed);
    }

    #[test]
    fn outcome_requires_at_least_one_done_sink() {
        // Single activity that fails: no sink done -> failure.
        let mut b = WorkflowBuilder::new("w");
        b.activity("only", "p");
        let mut w = b.build_unchecked();
        w.programs
            .push(gridwfs_wpdl::ast::Program::new("p", 1.0, "h"));
        let mut inst = instance(w);
        inst.mark_running("only");
        inst.settle("only", NodeStatus::Failed);
        assert!(matches!(inst.outcome(), Outcome::Failure { .. }));
    }

    #[test]
    fn variables_readable_and_writable() {
        let mut inst = fig4();
        assert!(inst.var("x").is_none());
        inst.set_var("x", Value::Num(5.0));
        assert_eq!(inst.var("x"), Some(&Value::Num(5.0)));
    }
}
