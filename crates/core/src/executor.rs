//! The task-submission abstraction.
//!
//! The original engine submitted tasks through the Globus GRAM protocol and
//! learned their fate through the failure-detection service.  This crate
//! talks to a Grid through the [`Executor`] trait instead: `submit` plays
//! GRAM, `cancel` plays job cancellation, and `next_notification` is the
//! delivery side of the notification transport.  Two implementations ship:
//!
//! * [`crate::sim_executor::SimGrid`] — a deterministic simulated Grid
//!   (failure injection, heartbeat loss, exceptions) built on `gridwfs-sim`;
//! * [`crate::thread_executor::ThreadExecutor`] — real OS threads running
//!   Rust closures, for using the engine as an actual local workflow runner.
//!
//! The engine is written against the trait only, which is what makes its
//! recovery logic testable to the last branch.

use gridwfs_detect::notify::{Envelope, TaskId};

/// A request to run one task attempt on one resource.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Fresh attempt id (engine-assigned; retries and replicas differ).
    pub task: TaskId,
    /// Activity this attempt executes.
    pub activity: String,
    /// Logical program name.
    pub program: String,
    /// Target host.
    pub hostname: String,
    /// Job-manager service on the host.
    pub service: String,
    /// Nominal (unit-speed) duration of the program.
    pub nominal_duration: f64,
    /// Checkpoint flag from a previous attempt; the task resumes from this
    /// state instead of starting over (paper §4.3).
    pub checkpoint_flag: Option<String>,
    /// Expected heartbeat period (0 = no heartbeats).
    pub heartbeat_interval: f64,
    /// Adaptive checkpoint interval for this attempt (nominal task
    /// seconds), from the resilience-aware scheduler's observed-MTTF
    /// estimate (Young's √(2·C·MTTF)).  `None` keeps the executor's own
    /// cadence; only effective for tasks that are checkpoint-enabled.
    pub checkpoint_hint: Option<f64>,
}

/// Result of a non-blocking notification poll (see
/// [`Executor::poll_notification`]).
#[derive(Debug)]
pub enum Polled {
    /// A notification delivered at this executor time (the clock advances).
    Delivered(f64, Envelope),
    /// The deadline passed (or nothing can ever arrive): the caller should
    /// run its timeout work — fire timers, sweep the detector.
    TimedOut,
    /// Nothing is deliverable *yet*, but something may still arrive: the
    /// caller should step other work and come back.  `wake_at` is the
    /// executor-clock instant by which a re-poll is guaranteed to observe
    /// the timeout (the deadline that was passed in), or `None` when the
    /// poll is waiting on in-flight work with no deadline.
    Pending {
        /// Executor-clock re-poll deadline, if one exists.
        wake_at: Option<f64>,
    },
}

/// A notification transport + job submission endpoint.
pub trait Executor {
    /// Current time on the executor's clock (simulated or wall-clock
    /// seconds since start).
    fn now(&self) -> f64;

    /// Submits one task attempt.  Must not block.
    fn submit(&mut self, req: SubmitRequest);

    /// Cancels an attempt: best effort; no further notifications for it are
    /// required to arrive, but stale ones may.
    fn cancel(&mut self, task: TaskId);

    /// Best-effort cancel of an *orphaned* attempt — one the engine has
    /// presumed dead and superseded.  Unlike [`Executor::cancel`] (an
    /// engine-side decision that takes effect immediately), an orphan
    /// cancel is a message to a possibly-alive remote task: it travels the
    /// same unreliable network as everything else, so notifications the
    /// orphan already sent may still arrive, and the cancel itself may be
    /// lost.  The default forwards to `cancel` for executors without a
    /// network model.
    fn orphan_cancel(&mut self, task: TaskId) {
        self.cancel(task);
    }

    /// Delivers the next notification at or before `deadline`.
    ///
    /// * `Some((t, env))` — a notification delivered at time `t` (the clock
    ///   advances to `t`).
    /// * `None` — no notification arrives by `deadline`; the clock advances
    ///   to the deadline (or, with no deadline, to idleness).
    fn next_notification(&mut self, deadline: Option<f64>) -> Option<(f64, Envelope)>;

    /// Non-blocking variant of [`Executor::next_notification`], the heart of
    /// [`crate::engine::Engine::step`]: instead of sleeping until `deadline`
    /// it reports [`Polled::Pending`] so a cooperative scheduler can run
    /// other engines on the same OS thread and re-poll later.
    ///
    /// The default delegates to `next_notification` and never returns
    /// `Pending` — correct for executors whose delivery already never
    /// blocks (the simulated Grid advances virtual time instead of
    /// waiting).  Executors that wait on real wall time (the thread
    /// executor) must override this.
    fn poll_notification(&mut self, deadline: Option<f64>) -> Polled {
        match self.next_notification(deadline) {
            Some((t, env)) => Polled::Delivered(t, env),
            None => Polled::TimedOut,
        }
    }

    /// True if no notification can ever arrive again (nothing in flight).
    fn is_idle(&self) -> bool;
}
