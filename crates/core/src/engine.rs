//! The workflow engine: navigation + two-level failure recovery.
//!
//! The engine is the paper's §7 component: it walks the validated parse
//! tree, submits ready tasks through an [`Executor`], classifies their fate
//! with the generic failure [`Detector`], and applies the recovery policy
//! the workflow structure encodes:
//!
//! * **task level** (masking, §4) — retrying with `max_tries`/`interval`
//!   (cycling through the program's resource options), replication across
//!   all options with first-success-wins and cancellation of the losers,
//!   and checkpoint-flag round-tripping so retries resume rather than
//!   restart;
//! * **workflow level** (non-masking, §5) — what the [`Instance`] edge
//!   semantics do once a failure the task level could not mask settles the
//!   node: alternative-task edges, OR-join redundancy, user-defined
//!   exception handlers.
//!
//! The engine itself is fault tolerant: after every task termination it can
//! persist the annotated parse tree to an XML file ([`crate::checkpoint`])
//! and a restarted engine resumes navigation from where it left off.

use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use gridwfs_detect::detector::{CrashReason, Detection, Detector, DetectorPolicy};
use gridwfs_detect::exception::{ExceptionDef, ExceptionRegistry, Severity};
use gridwfs_detect::heartbeat::Liveness;
use gridwfs_detect::notify::TaskId;
use gridwfs_detect::transport::ReorderBuffer;
use gridwfs_trace::{TaskOutcome, TraceEvent, TraceKind, TraceSink};
use gridwfs_wpdl::ast::{ForeachSpec, ItemAction, Policy, Trigger};
use gridwfs_wpdl::validate::Validated;

use crate::executor::{Executor, Polled, SubmitRequest};
use crate::instance::{CompleteResult, EdgeState, Instance, ItemState, NodeStatus, Outcome};
use crate::timeline::{Span, SpanOutcome};

/// What a log entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogKind {
    /// An attempt was submitted.
    Submit,
    /// A detection arrived from the failure detection service.
    Detect,
    /// An activity settled (or looped).
    Settle,
    /// A task-level recovery action was scheduled.
    Recovery,
    /// Live attempts were cancelled (replica lost the race, node settled).
    Cancel,
    /// A checkpoint flag was recorded.
    Checkpoint,
    /// The engine declared a stall (nothing can ever make progress).
    Stall,
    /// A do-while loop re-queued its activity.
    Loop,
}

/// One entry in the engine's event log.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Executor time of the event.
    pub at: f64,
    /// Category.
    pub kind: LogKind,
    /// Human-readable detail.
    pub message: String,
}

/// One item of a `<Foreach>` fan-out that exhausted every recovery avenue
/// (retries, then failover) and was parked for offline reprocessing.
#[derive(Debug, Clone, PartialEq)]
pub struct DlqEntry {
    /// The fan-out activity the item belongs to.
    pub activity: String,
    /// Zero-based index into the activity's `<Item>` list.
    pub index: usize,
    /// The item payload, verbatim.
    pub item: String,
    /// Attempts consumed before the item was parked.
    pub attempts: u32,
    /// Terminal classification of the last attempt
    /// (`heartbeat-loss`, `exception:<name>`, ...).
    pub reason: String,
}

/// Result of a completed engine run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Success/failure with diagnostics.
    pub outcome: Outcome,
    /// `Some(reason)` when navigation was aborted before the workflow
    /// reached a natural terminal state: `"stop"` (cooperative
    /// cancellation), `"deadline"` (time budget exhausted) or
    /// `"max_settlements"` (simulated engine crash).  `None` for runs that
    /// terminated on their own.
    pub aborted: Option<String>,
    /// Executor time when navigation finished.
    pub finished_at: f64,
    /// Wall (executor) time from start to finish.
    pub makespan: f64,
    /// Final status of every activity, in topological order.
    pub node_status: Vec<(String, String)>,
    /// Full event log.
    pub log: Vec<LogEntry>,
    /// One span per task attempt (for timeline rendering and accounting).
    /// Derived from `trace` — the flight journal is the single source of
    /// truth for attempt lifetimes.
    pub spans: Vec<Span>,
    /// The flight journal: every recovery-relevant decision, in order.
    pub trace: Vec<TraceEvent>,
    /// Guard-evaluation problems (empty in healthy runs).
    pub eval_errors: Vec<String>,
    /// Dead-lettered `<Foreach>` items, in (topological activity, item
    /// index) order — the host persists these so `dlq retry` can
    /// reprocess exactly the failed slice of the fan-out.
    pub dlq: Vec<DlqEntry>,
}

impl Report {
    /// Convenience: did the workflow succeed?
    pub fn is_success(&self) -> bool {
        self.outcome == Outcome::Success
    }

    /// Final status string of one activity.
    pub fn status_of(&self, name: &str) -> Option<&str> {
        self.node_status
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.as_str())
    }

    /// Number of `Submit` log entries for an activity (attempt count).
    pub fn submissions_of(&self, name: &str) -> usize {
        self.log
            .iter()
            .filter(|e| e.kind == LogKind::Submit && e.message.starts_with(&format!("{name} ")))
            .count()
    }

    /// Attempts the engine cancelled (losing replicas etc.).
    pub fn cancellations(&self) -> usize {
        self.spans
            .iter()
            .filter(|s| s.outcome == SpanOutcome::Cancelled)
            .count()
    }

    /// Renders the execution as an ASCII timeline (see [`crate::timeline`]).
    pub fn timeline(&self, width: usize) -> String {
        crate::timeline::render(self, width)
    }

    /// The flight journal rendered as JSONL (one event per line).  For a
    /// fixed workflow and seed this string is byte-identical across runs
    /// and thread counts — the determinism oracle.
    pub fn trace_jsonl(&self) -> String {
        gridwfs_trace::to_jsonl(&self.trace)
    }

    /// Busy time per host, derived from the attempt spans (sorted by
    /// hostname).  Redundancy strategies buy latency with exactly this
    /// extra CPU consumption — the §5.2 trade-off, quantified.
    pub fn host_utilization(&self) -> Vec<(String, f64)> {
        let mut busy: std::collections::BTreeMap<&str, f64> = std::collections::BTreeMap::new();
        for s in &self.spans {
            *busy.entry(s.host.as_str()).or_default() += s.end - s.start;
        }
        busy.into_iter().map(|(h, t)| (h.to_string(), t)).collect()
    }
}

/// Where the engine hands finished checkpoint XML when the host, not the
/// engine, owns durability.  The callback must be cheap and non-blocking
/// (the serve worker just replaces a staging cell); any error is logged
/// and traced exactly like a failed direct checkpoint write.
#[derive(Clone)]
pub struct CheckpointSink(Arc<dyn Fn(String) -> std::io::Result<()> + Send + Sync>);

impl CheckpointSink {
    pub fn new(f: impl Fn(String) -> std::io::Result<()> + Send + Sync + 'static) -> Self {
        CheckpointSink(Arc::new(f))
    }

    /// Offer one serialized checkpoint to the host.
    pub fn save(&self, xml: String) -> std::io::Result<()> {
        (self.0)(xml)
    }
}

impl fmt::Debug for CheckpointSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CheckpointSink(..)")
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Write an engine checkpoint here after every task termination
    /// (paper §7's engine fault tolerance).
    pub checkpoint_path: Option<PathBuf>,
    /// Hand checkpoints to a host-provided sink instead of (or as well
    /// as — the sink wins when both are set) writing `checkpoint_path`
    /// directly.  The serve worker uses this to stage checkpoint XML into
    /// the scheduler's group-committed state batch, so checkpoint
    /// durability costs one shared fsync per tick instead of a private
    /// tmp→rename→fsync per settlement.
    pub checkpoint_sink: Option<CheckpointSink>,
    /// Safety cap on do-while iterations per activity.
    pub max_loop_iterations: u32,
    /// Hold notifications this long and deliver them in send order —
    /// protects the `Done`-without-`Task End` crash rule from transport
    /// reordering (see [`gridwfs_detect::transport`]).  `None` = deliver
    /// immediately (the prototype's behaviour).
    pub reorder_settle: Option<f64>,
    /// Extension: when an OR-join becomes ready, cancel still-running
    /// sibling branches whose only remaining consumer is that join — the
    /// Figure 5 redundancy then stops paying for the slow branch the
    /// moment the fast one wins.  The paper's prototype (and the default)
    /// lets redundant branches run to completion.
    pub cancel_redundant: bool,
    /// Abort navigation after this many activity settlements (testing
    /// hook: simulates the engine host dying mid-run, so the §7 restart
    /// path can be exercised at arbitrary cut points).  In-flight attempts
    /// are abandoned exactly as a crashed engine would abandon them.
    pub max_settlements: Option<u64>,
    /// Cooperative cancellation: a service hosting this engine sets the
    /// flag and the run loop aborts at its next iteration, cancelling
    /// live attempts.  Node statuses are left as-is, so a checkpointed
    /// engine can be resumed later (the service shutdown/cancel path).
    pub stop: Option<Arc<AtomicBool>>,
    /// Executor-clock budget from run start: once `now() - start` reaches
    /// this, the run aborts with reason `"deadline"`.  Virtual seconds for
    /// the simulated Grid, wall seconds for the thread executor.
    pub deadline: Option<f64>,
    /// Per-host circuit breaker (see [`crate::breaker`]): consecutive
    /// failures open a host's breaker and simple-policy option cycling
    /// skips it until a decorrelated-jitter backoff elapses and a
    /// half-open probe succeeds.  `None` (the default) disables breakers
    /// entirely and leaves existing traces byte-identical.
    pub breaker: Option<crate::breaker::BreakerConfig>,
    /// Crash-presumption policy (see [`gridwfs_detect::detector::DetectorPolicy`]):
    /// the classic fixed timeout (`interval × tolerance`, the default — keeps
    /// existing traces byte-identical) or adaptive φ-accrual suspicion that
    /// learns the observed heartbeat inter-arrival distribution and resists
    /// false presumptions under jittery, lossy links.
    pub detector: DetectorPolicy,
    /// Placement policy (see [`crate::sched_score`]): `Oblivious` (the
    /// default — blind option cycling plus breaker-skip, byte-identical
    /// journals to engines built before the scorer existed) or
    /// `Resilient`, which scores every candidate host from live failure
    /// evidence, steers retries away from suspected hosts, decorrelates
    /// replica placement, pre-emptively re-replicates when φ rises, and
    /// adapts per-host checkpoint intervals to observed MTTF.
    pub scheduler: crate::sched_score::SchedulerPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            checkpoint_path: None,
            checkpoint_sink: None,
            max_loop_iterations: 10_000,
            reorder_settle: None,
            cancel_redundant: false,
            max_settlements: None,
            stop: None,
            deadline: None,
            breaker: None,
            detector: DetectorPolicy::default(),
            scheduler: crate::sched_score::SchedulerPolicy::default(),
        }
    }
}

/// What one non-blocking [`Engine::step`] accomplished.
#[derive(Debug)]
pub enum StepOutcome {
    /// The engine did work (delivered a notification, fired timers, swept
    /// the detector, or launched tasks): step again soon.
    Progressed,
    /// Nothing is deliverable yet.  `wake_at` is the executor-clock instant
    /// by which the engine wants to be stepped again (its next timer /
    /// detector / deadline edge), and is only reported when that instant
    /// is a *safe* park bound — no in-flight completion can arrive
    /// earlier.  `None` means "poll again soon": the engine is waiting on
    /// in-flight work that may deliver at any moment.
    Idle {
        /// Executor-clock re-step deadline, if one exists.
        wake_at: Option<f64>,
    },
    /// Navigation terminated; the report is final.  The engine must not be
    /// stepped again.
    Finished(Box<Report>),
}

/// Per-run navigation state, created lazily on the first step so that
/// `started_at` (and hence the deadline clamp) matches what `run()` always
/// measured: the executor clock at entry.
#[derive(Debug)]
struct RunState {
    started_at: f64,
    deadline_abs: Option<f64>,
    reorder: Option<ReorderBuffer>,
    done: bool,
}

#[derive(Debug)]
struct Slot {
    tries_used: u32,
    live: Option<TaskId>,
    exhausted: bool,
    ckpt_flag: Option<String>,
    /// A retry timer is pending for this slot.  Only `<Foreach>` slots set
    /// it: a waiting item keeps holding its `max_parallel` token so the
    /// fan-out never runs more than the bound when the timer fires.
    waiting: bool,
}

impl Slot {
    fn idle() -> Self {
        Slot {
            tries_used: 0,
            live: None,
            exhausted: false,
            ckpt_flag: None,
            waiting: false,
        }
    }
}

#[derive(Debug)]
struct NodeRt {
    slots: Vec<Slot>,
    loop_iterations: u32,
}

/// Timer heap key: earliest time first, FIFO within a time.
#[derive(Debug, PartialEq)]
struct TimerKey(f64, u64);

impl Eq for TimerKey {}
impl PartialOrd for TimerKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for the max-heap: smallest time pops first.
        other
            .0
            .total_cmp(&self.0)
            .then_with(|| other.1.cmp(&self.1))
    }
}

#[derive(Debug)]
struct Timer {
    key: TimerKey,
    activity: String,
    slot: usize,
}

impl PartialEq for Timer {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Timer {}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// The Grid-WFS workflow engine.
pub struct Engine<X: Executor> {
    executor: X,
    detector: Detector,
    instance: Instance,
    nodes: HashMap<String, NodeRt>,
    attempts: HashMap<TaskId, (String, usize)>,
    attempt_hosts: HashMap<TaskId, String>,
    /// Activity of each attempt presumed dead by the detector — post-mortem
    /// evidence from such an attempt (a zombie completion, a late heartbeat)
    /// is journalled under this name even though the attempt has long been
    /// removed from `attempts`.
    presumed: HashMap<TaskId, String>,
    breakers: Option<crate::breaker::HostBreakers>,
    /// The resilience-aware host scorer (`Some` only under
    /// `SchedulerPolicy::Resilient`; `None` leaves every placement path
    /// byte-identical to the oblivious engine).
    scorer: Option<crate::sched_score::HostScorer>,
    /// Pre-emptive moves consumed per `(activity, slot)` — bounded by
    /// `ScorerConfig::max_rereplications` so a flapping φ cannot thrash.
    rereplications: HashMap<(String, usize), u32>,
    /// Last adaptive checkpoint interval journalled per host (dedup for
    /// `ckpt_interval_adapted` events).
    ckpt_hints: HashMap<String, f64>,
    timers: BinaryHeap<Timer>,
    timer_seq: u64,
    next_task: u64,
    log: Vec<LogEntry>,
    trace: Vec<TraceEvent>,
    sink: Option<Arc<dyn TraceSink>>,
    open_attempts: std::collections::HashSet<TaskId>,
    settlements: u64,
    config: EngineConfig,
    run_state: Option<RunState>,
}

impl<X: Executor> Engine<X> {
    /// Builds an engine for a validated workflow.
    pub fn new(validated: Validated, executor: X) -> Self {
        Self::from_instance(Instance::new(validated), executor)
    }

    /// Builds an engine around an existing instance — the restart path:
    /// [`crate::checkpoint::load`] reconstructs the instance from the saved
    /// parse tree and navigation resumes from where it left off.
    pub fn from_instance(instance: Instance, executor: X) -> Self {
        let mut registry = ExceptionRegistry::new();
        for e in &instance.workflow().exceptions {
            let def = if e.fatal {
                ExceptionDef::fatal(e.name.clone(), e.description.clone())
            } else {
                ExceptionDef::recoverable(e.name.clone(), e.description.clone())
            };
            registry.register(def).expect("validated: unique names");
        }
        Engine {
            executor,
            detector: Detector::with_registry(registry),
            instance,
            nodes: HashMap::new(),
            attempts: HashMap::new(),
            attempt_hosts: HashMap::new(),
            presumed: HashMap::new(),
            breakers: None,
            scorer: None,
            rereplications: HashMap::new(),
            ckpt_hints: HashMap::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            next_task: 1,
            log: Vec::new(),
            trace: Vec::new(),
            sink: None,
            open_attempts: std::collections::HashSet::new(),
            settlements: 0,
            config: EngineConfig::default(),
            run_state: None,
        }
    }

    /// Sets the configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.breakers = config
            .breaker
            .clone()
            .map(crate::breaker::HostBreakers::new);
        self.detector.set_policy(config.detector.clone());
        self.scorer = match &config.scheduler {
            crate::sched_score::SchedulerPolicy::Resilient(cfg) => {
                Some(crate::sched_score::HostScorer::new(cfg.clone()))
            }
            crate::sched_score::SchedulerPolicy::Oblivious => None,
        };
        self.config = config;
        self
    }

    /// Enables engine checkpointing to `path`.
    pub fn with_checkpointing(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.checkpoint_path = Some(path.into());
        self
    }

    /// Enables engine checkpointing through a host-owned sink (see
    /// [`CheckpointSink`]); takes precedence over `checkpoint_path`.
    pub fn with_checkpoint_sink(mut self, sink: CheckpointSink) -> Self {
        self.config.checkpoint_sink = Some(sink);
        self
    }

    /// Streams trace events into `sink` as they are recorded, in addition
    /// to the journal returned in [`Report::trace`].  The sink sees events
    /// live (a serve worker tees them into the job's JSONL file and the
    /// metrics deriver); it is deliberately not part of [`EngineConfig`],
    /// which stays `Clone + Debug`.
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    fn log(&mut self, kind: LogKind, message: String) {
        self.log.push(LogEntry {
            at: self.executor.now(),
            kind,
            message,
        });
    }

    fn trace(&mut self, kind: TraceKind) {
        let event = TraceEvent {
            at: self.executor.now(),
            kind,
        };
        if let Some(sink) = &self.sink {
            sink.record(&event);
        }
        self.trace.push(event);
    }

    fn fresh_task(&mut self) -> TaskId {
        let id = TaskId(self.next_task);
        self.next_task += 1;
        id
    }

    // ------------------------------------------------------- submission ---

    /// Launches every ready activity; dummies complete instantly, which can
    /// ready further activities, so this loops to a fixpoint.
    fn launch_ready(&mut self) {
        loop {
            let ready = self.instance.ready_nodes();
            if ready.is_empty() {
                return;
            }
            let mut launched_real = false;
            for name in ready {
                let act = self
                    .instance
                    .workflow()
                    .activity(&name)
                    .expect("ready node exists")
                    .clone();
                if act.is_dummy() {
                    self.instance.mark_running(&name);
                    self.trace_launch(&name);
                    self.settle_node(&name, NodeStatus::Done);
                } else {
                    self.start_activity(&name);
                    launched_real = true;
                }
            }
            if launched_real {
                // Real launches do not change readiness synchronously; only
                // dummy completion does, and that path re-enters the loop.
                if self.instance.ready_nodes().is_empty() {
                    return;
                }
            }
        }
    }

    fn start_activity(&mut self, name: &str) {
        let act = self
            .instance
            .workflow()
            .activity(name)
            .expect("known activity")
            .clone();
        if act.foreach.is_some() {
            self.start_foreach(name);
            return;
        }
        let program = self
            .instance
            .workflow()
            .program(act.implement.as_deref().expect("non-dummy"))
            .expect("validated reference")
            .clone();
        let n_slots = match act.policy {
            Policy::Simple => 1,
            Policy::Replica => program.options.len(),
        };
        self.nodes.insert(
            name.to_string(),
            NodeRt {
                slots: (0..n_slots).map(|_| Slot::idle()).collect(),
                loop_iterations: self.nodes.get(name).map(|n| n.loop_iterations).unwrap_or(0),
            },
        );
        self.instance.mark_running(name);
        self.trace_launch(name);
        for slot in 0..n_slots {
            self.submit_slot(name, slot);
        }
    }

    /// Records why an activity is starting: a plain `running` transition,
    /// preceded by an `alternative_task` event for every incoming
    /// `on="failed"` edge that fired (Figure 4's switchover) and a
    /// `handler_fired` event for every fired `on="exception:<name>"` edge
    /// (Figure 6's handler).
    fn trace_launch(&mut self, name: &str) {
        let mut switchovers: Vec<TraceKind> = Vec::new();
        for (i, t) in self.instance.workflow().transitions.iter().enumerate() {
            if t.to != name || self.instance.edge_state(i) != EdgeState::Fired {
                continue;
            }
            match &t.trigger {
                Trigger::Failed => switchovers.push(TraceKind::AlternativeTask {
                    from: t.from.clone(),
                    to: name.to_string(),
                }),
                Trigger::Exception(exc) => switchovers.push(TraceKind::HandlerFired {
                    from: t.from.clone(),
                    to: name.to_string(),
                    exception: exc.clone(),
                }),
                _ => {}
            }
        }
        for kind in switchovers {
            self.trace(kind);
        }
        self.trace(TraceKind::NodeState {
            activity: name.to_string(),
            state: "running".to_string(),
        });
    }

    // ---------------------------------------------- resilient placement ---

    /// Live evidence snapshot per host: the max φ and jitter over attempts
    /// currently watched on each host.  Max-aggregation is
    /// order-independent, so the engine's `HashMap` iteration order cannot
    /// leak into placement.
    fn host_health(&self, now: f64) -> gridwfs_detect::HostHealth {
        let mut health = gridwfs_detect::HostHealth::new();
        for (task, host) in &self.attempt_hosts {
            health.observe(
                host,
                self.detector.phi_level(*task, now),
                self.detector.jitter(*task),
            );
        }
        health
    }

    /// Hosts this node's *other* live slots run on — the exclusion set
    /// that keeps a replica set failure-decorrelated.
    fn sibling_hosts(&self, name: &str, slot: usize) -> Vec<String> {
        let Some(rt) = self.nodes.get(name) else {
            return Vec::new();
        };
        rt.slots
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != slot)
            .filter_map(|(_, s)| s.live)
            .filter_map(|t| self.attempt_hosts.get(&t).cloned())
            .collect()
    }

    /// Scores `program`'s options from live evidence (breaker state, φ,
    /// jitter, windowed failure rate, simulator priors) and asks the
    /// scorer for a placement.  `None` when the scorer is disabled or
    /// abstains because every candidate is blocked, suspect or excluded —
    /// the caller then degrades to oblivious cycling.
    fn scored_option(
        &self,
        program: &gridwfs_wpdl::ast::Program,
        base: usize,
        exclude: &[String],
    ) -> Option<crate::sched_score::Placement> {
        let scorer = self.scorer.as_ref()?;
        let now = self.executor.now();
        let health = self.host_health(now);
        let candidates: Vec<(&str, crate::sched_score::HostEvidence)> = program
            .options
            .iter()
            .map(|o| {
                let host = o.hostname.as_str();
                let sig = health.signal(host);
                (
                    host,
                    crate::sched_score::HostEvidence {
                        blocked: self
                            .breakers
                            .as_ref()
                            .is_some_and(|b| b.is_blocked(host, now)),
                        half_open: self.breakers.as_ref().is_some_and(|b| b.is_half_open(host)),
                        phi: sig.phi,
                        jitter: sig.jitter,
                    },
                )
            })
            .collect();
        let exclude: Vec<&str> = exclude.iter().map(String::as_str).collect();
        scorer.choose_excluding(&candidates, base, program.nominal_duration, &exclude)
    }

    /// The adaptive checkpoint hint for `host` — Young's √(2·C·MTTF) over
    /// the scorer's observed MTTF — journalling `ckpt_interval_adapted`
    /// whenever a host's interval changes.  `None` (keep the executor's
    /// own cadence) under the oblivious scheduler or when no failure
    /// evidence or prior exists for the host.
    fn adapt_checkpoint_hint(&mut self, host: &str) -> Option<f64> {
        let (interval, mttf) = {
            let sc = self.scorer.as_ref()?;
            (
                sc.checkpoint_interval(host)?,
                sc.observed_mttf(host).unwrap_or(0.0),
            )
        };
        if self.ckpt_hints.get(host) != Some(&interval) {
            self.ckpt_hints.insert(host.to_string(), interval);
            self.trace(TraceKind::CkptIntervalAdapted {
                host: host.to_string(),
                interval,
                mttf,
            });
        }
        Some(interval)
    }

    fn submit_slot(&mut self, name: &str, slot: usize) {
        self.submit_slot_inner(name, slot, None);
    }

    /// The body of [`Self::submit_slot`].  `forced_option` pins the
    /// placement to one resource option — used by pre-emptive
    /// re-replication, whose target the scorer already chose (and whose
    /// decision the `rereplicate` trace event already journals, so no
    /// `placement_scored` is emitted for it).
    fn submit_slot_inner(&mut self, name: &str, slot: usize, forced_option: Option<usize>) {
        let act = self
            .instance
            .workflow()
            .activity(name)
            .expect("known activity")
            .clone();
        let program = self
            .instance
            .workflow()
            .program(act.implement.as_deref().expect("non-dummy"))
            .expect("validated reference")
            .clone();
        let task = self.fresh_task();
        let now = self.executor.now();
        let (tries_used, flag) = {
            let rt = self.nodes.get_mut(name).expect("runtime exists");
            let s = &mut rt.slots[slot];
            s.live = Some(task);
            (s.tries_used, s.ckpt_flag.clone())
        };
        // Simple policy cycles through the options on retry ("retrying on
        // different resources by simply defining multiple Grid resources",
        // Figure 2 caption); replicas are pinned to their own option.  With
        // breakers enabled, cycling additionally skips hosts whose breaker
        // is open — unless every candidate is open, in which case the
        // cycled choice goes ahead as a forced probe (a breaker degrades
        // placement, it never deadlocks it).
        let obl_base = match act.policy {
            Policy::Simple => (tries_used as usize) % program.options.len(),
            Policy::Replica => slot,
        };
        // The resilient scheduler scores every candidate from live
        // evidence; replicas additionally exclude their live siblings'
        // hosts so the replica set stays failure-decorrelated.  When the
        // scorer abstains (every candidate blocked or suspect) the
        // oblivious path below takes over: steered, never deadlocked.
        let scored = if forced_option.is_none() && self.scorer.is_some() {
            let exclude = match act.policy {
                Policy::Replica => self.sibling_hosts(name, slot),
                Policy::Simple => Vec::new(),
            };
            self.scored_option(&program, obl_base, &exclude)
        } else {
            None
        };
        let option_index = if let Some(i) = forced_option {
            i
        } else if let Some(p) = &scored {
            p.index
        } else {
            match act.policy {
                Policy::Simple => {
                    let n = program.options.len();
                    match &self.breakers {
                        Some(br) => (0..n)
                            .map(|k| (obl_base + k) % n)
                            .find(|&i| !br.is_blocked(&program.options[i].hostname, now))
                            .unwrap_or(obl_base),
                        None => obl_base,
                    }
                }
                Policy::Replica => slot,
            }
        };
        let option = &program.options[option_index];
        let attempt = tries_used + 1;
        let is_probe = match &mut self.breakers {
            Some(br) => br.on_submit(&option.hostname, now),
            None => false,
        };
        self.attempts.insert(task, (name.to_string(), slot));
        self.attempt_hosts.insert(task, option.hostname.clone());
        let replaced = self.detector.register_task(
            task,
            act.heartbeat_interval,
            act.heartbeat_tolerance,
            self.executor.now(),
        );
        let checkpoint_hint = self.adapt_checkpoint_hint(&option.hostname);
        let req = SubmitRequest {
            task,
            activity: name.to_string(),
            program: program.name.clone(),
            hostname: option.hostname.clone(),
            service: option.service.clone(),
            nominal_duration: program.nominal_duration,
            checkpoint_flag: flag.clone(),
            heartbeat_interval: act.heartbeat_interval,
            checkpoint_hint,
        };
        let host = option.hostname.clone();
        self.open_attempts.insert(task);
        self.executor.submit(req);
        if let Some(liveness) = replaced {
            // Task ids are fresh per attempt, so this cannot fire in the
            // engine's own flow — it journals the heartbeat monitor's
            // re-registration disclosure (a silently revived presumed-dead
            // attempt is exactly the bug the disclosure exists to catch).
            self.trace(TraceKind::WatchReplaced {
                task: task.0,
                was_presumed_dead: liveness == Liveness::PresumedDead,
            });
        }
        if is_probe {
            self.trace(TraceKind::BreakerProbe { host: host.clone() });
        }
        if let Some(p) = &scored {
            self.trace(TraceKind::PlacementScored {
                activity: name.to_string(),
                slot,
                attempt,
                host: host.clone(),
                score: p.score,
                steered: p.steered,
            });
        }
        self.trace(TraceKind::TaskSubmitted {
            activity: name.to_string(),
            slot,
            attempt,
            task: task.0,
            host: host.clone(),
            resume: flag.clone(),
        });
        self.log(
            LogKind::Submit,
            format!(
                "{name} slot={slot} try={attempt} task={task} host={host}{}",
                flag.map(|f| format!(" resume={f}")).unwrap_or_default()
            ),
        );
    }

    // ----------------------------------------------------------- foreach ---

    fn foreach_spec(&self, name: &str) -> ForeachSpec {
        self.instance
            .workflow()
            .activity(name)
            .expect("known activity")
            .foreach
            .clone()
            .expect("foreach activity")
    }

    fn is_foreach(&self, name: &str) -> bool {
        self.instance
            .workflow()
            .activity(name)
            .and_then(|a| a.foreach.as_ref())
            .is_some()
    }

    /// Launches a `<Foreach>` fan-out: one slot per item.  Items restored
    /// from a checkpoint keep their terminal state (their slots start
    /// exhausted); everything else is launched in index order under the
    /// `max_parallel` bound.  Routing the launch through
    /// [`Self::foreach_after_item`] makes a fresh start, a restart and a
    /// dead-letter reprocess the same code path — including the case where
    /// the checkpoint already holds a settled item set and the node must
    /// settle without submitting anything.
    fn start_foreach(&mut self, name: &str) {
        let states: Vec<ItemState> = self
            .instance
            .items(name)
            .expect("foreach activity has items")
            .iter()
            .map(|p| p.state)
            .collect();
        self.nodes.insert(
            name.to_string(),
            NodeRt {
                slots: states
                    .iter()
                    .map(|st| {
                        let mut s = Slot::idle();
                        s.exhausted = st.is_terminal();
                        s
                    })
                    .collect(),
                loop_iterations: 0,
            },
        );
        self.instance.mark_running(name);
        self.trace_launch(name);
        let pending = states.iter().filter(|st| !st.is_terminal()).count();
        self.trace(TraceKind::ForeachStarted {
            activity: name.to_string(),
            items: states.len(),
            pending,
        });
        self.foreach_after_item(name);
    }

    /// The fan-out's settlement policy, re-evaluated after every item
    /// transition: a `stop` item or a breached failure budget fails the
    /// node (remaining items are cancelled by [`Self::settle_node`]), a
    /// fully-terminal item set completes it — dead-lettered items do not
    /// block completion, they are reported for offline reprocessing — and
    /// otherwise the next pending items launch under `max_parallel`.
    fn foreach_after_item(&mut self, name: &str) {
        let spec = self.foreach_spec(name);
        let (failures, stop, terminal, total) = {
            let items = self.instance.items(name).expect("foreach activity");
            let failures = items
                .iter()
                .filter(|p| {
                    matches!(
                        p.state,
                        ItemState::DeadLettered | ItemState::Skipped | ItemState::Failed
                    )
                })
                .count();
            let stop = items.iter().any(|p| p.state == ItemState::Failed);
            let terminal = items.iter().filter(|p| p.state.is_terminal()).count();
            (failures, stop, terminal, items.len())
        };
        let breached = spec.max_failures.is_some_and(|m| failures > m as usize)
            || spec
                .failure_threshold
                .is_some_and(|t| failures as f64 / total as f64 > t);
        if stop || breached {
            if breached && !stop {
                self.log(
                    LogKind::Recovery,
                    format!("{name} failure budget breached ({failures}/{total} items failed)"),
                );
            }
            self.settle_node(name, NodeStatus::Failed);
        } else if terminal == total {
            self.settle_node(name, NodeStatus::Done);
        } else {
            self.pump_foreach(name);
        }
    }

    /// Launches unlaunched pending items in index order while the fan-out
    /// has `max_parallel` tokens free (0 = unbounded).  A slot waiting on
    /// a retry timer keeps holding its token, so firing timers never push
    /// the fan-out over the bound.
    fn pump_foreach(&mut self, name: &str) {
        let spec = self.foreach_spec(name);
        loop {
            let idx = {
                let rt = self.nodes.get(name).expect("runtime exists");
                let active = rt
                    .slots
                    .iter()
                    .filter(|s| s.live.is_some() || s.waiting)
                    .count();
                if spec.max_parallel != 0 && active >= spec.max_parallel {
                    return;
                }
                let items = self.instance.items(name).expect("foreach activity");
                rt.slots.iter().zip(items.iter()).position(|(s, p)| {
                    s.live.is_none() && !s.waiting && !s.exhausted && p.state == ItemState::Pending
                })
            };
            match idx {
                Some(i) => self.submit_item(name, i),
                None => return,
            }
        }
    }

    /// Submits one attempt for a fan-out item.  Mirrors
    /// [`Self::submit_slot`] with the item's own bookkeeping: the durable
    /// attempt counter lives in the instance (so option cycling and retry
    /// budgets survive engine restarts), and an item that failed over runs
    /// the alternative program instead of the primary.
    fn submit_item(&mut self, name: &str, idx: usize) {
        let act = self
            .instance
            .workflow()
            .activity(name)
            .expect("known activity")
            .clone();
        let spec = act.foreach.clone().expect("foreach activity");
        let progress = self.instance.items(name).expect("foreach activity")[idx].clone();
        if progress.reprocess && progress.attempts == 0 {
            self.trace(TraceKind::ItemReprocessed {
                activity: name.to_string(),
                item: idx,
            });
            self.log(
                LogKind::Submit,
                format!("{name} item={idx} reprocessing from the dead-letter queue"),
            );
        }
        let program_name = if progress.failover {
            spec.failover
                .as_deref()
                .expect("failover only when declared")
        } else {
            act.implement.as_deref().expect("non-dummy")
        };
        let program = self
            .instance
            .workflow()
            .program(program_name)
            .expect("validated reference")
            .clone();
        let task = self.fresh_task();
        let now = self.executor.now();
        let flag = {
            let rt = self.nodes.get_mut(name).expect("runtime exists");
            let s = &mut rt.slots[idx];
            s.live = Some(task);
            s.waiting = false;
            s.ckpt_flag.clone()
        };
        // Items cycle through the chosen program's options exactly like the
        // simple policy, keyed on the durable attempt counter; open host
        // breakers are skipped the same way.  The resilient scheduler
        // scores the options first, falling back to the cycling below when
        // it abstains.
        let n = program.options.len();
        let base = (progress.attempts as usize) % n;
        let scored = self.scored_option(&program, base, &[]);
        let option_index = if let Some(p) = &scored {
            p.index
        } else {
            match &self.breakers {
                Some(br) => (0..n)
                    .map(|k| (base + k) % n)
                    .find(|&i| !br.is_blocked(&program.options[i].hostname, now))
                    .unwrap_or(base),
                None => base,
            }
        };
        let option = &program.options[option_index];
        let attempt = progress.attempts + 1;
        let is_probe = match &mut self.breakers {
            Some(br) => br.on_submit(&option.hostname, now),
            None => false,
        };
        self.attempts.insert(task, (name.to_string(), idx));
        self.attempt_hosts.insert(task, option.hostname.clone());
        let replaced = self.detector.register_task(
            task,
            act.heartbeat_interval,
            act.heartbeat_tolerance,
            self.executor.now(),
        );
        let checkpoint_hint = self.adapt_checkpoint_hint(&option.hostname);
        let req = SubmitRequest {
            task,
            activity: name.to_string(),
            program: program.name.clone(),
            hostname: option.hostname.clone(),
            service: option.service.clone(),
            nominal_duration: program.nominal_duration,
            checkpoint_flag: flag.clone(),
            heartbeat_interval: act.heartbeat_interval,
            checkpoint_hint,
        };
        let host = option.hostname.clone();
        self.open_attempts.insert(task);
        self.executor.submit(req);
        if let Some(liveness) = replaced {
            self.trace(TraceKind::WatchReplaced {
                task: task.0,
                was_presumed_dead: liveness == Liveness::PresumedDead,
            });
        }
        if is_probe {
            self.trace(TraceKind::BreakerProbe { host: host.clone() });
        }
        if let Some(p) = &scored {
            self.trace(TraceKind::PlacementScored {
                activity: name.to_string(),
                slot: idx,
                attempt,
                host: host.clone(),
                score: p.score,
                steered: p.steered,
            });
        }
        self.trace(TraceKind::TaskSubmitted {
            activity: name.to_string(),
            slot: idx,
            attempt,
            task: task.0,
            host: host.clone(),
            resume: flag.clone(),
        });
        self.log(
            LogKind::Submit,
            format!(
                "{name} slot={idx} try={attempt} task={task} host={host}{}{}",
                if progress.failover { " failover" } else { "" },
                flag.map(|f| format!(" resume={f}")).unwrap_or_default()
            ),
        );
    }

    /// A fan-out item's attempt completed: settle the item `done` and
    /// re-evaluate the fan-out.  The checkpoint written here is what makes
    /// item settlement exactly-once across engine incarnations — a crash
    /// after it can only re-run items that never durably settled.
    fn foreach_item_done(&mut self, name: &str, idx: usize) {
        // Item settlements count toward `max_settlements`, so the simulated
        // engine crash can land in the middle of a fan-out.
        self.settlements += 1;
        let attempts = {
            let p = self.instance.item_mut(name, idx);
            p.attempts += 1;
            p.state = ItemState::Done;
            p.reason.clear();
            p.attempts
        };
        self.nodes.get_mut(name).expect("runtime exists").slots[idx].exhausted = true;
        self.trace(TraceKind::ItemSettled {
            activity: name.to_string(),
            item: idx,
            outcome: "done".to_string(),
            attempts,
        });
        self.log(
            LogKind::Settle,
            format!("{name} item={idx} done after {attempts} attempt(s)"),
        );
        self.write_checkpoint();
        self.foreach_after_item(name);
    }

    /// Task-level recovery for a failed fan-out item: retry on the current
    /// program while its `max_attempts` budget lasts, then fail over to
    /// the alternative program on a fresh budget if one is declared, then
    /// apply the exhaustion action.  `maskable` is false for fatal
    /// exceptions — retrying the same program cannot mask those, so the
    /// remaining retry budget is forfeited and the item goes straight to
    /// failover (a different program may well succeed) or exhaustion.
    fn foreach_item_failed(&mut self, name: &str, idx: usize, reason: &str, maskable: bool) {
        let spec = self.foreach_spec(name);
        self.nodes.get_mut(name).expect("runtime exists").slots[idx].live = None;
        let (attempts, failover) = {
            let p = self.instance.item_mut(name, idx);
            p.attempts += 1;
            p.reason = reason.to_string();
            (p.attempts, p.failover)
        };
        let budget = if failover {
            spec.max_attempts.saturating_mul(2)
        } else {
            spec.max_attempts
        };
        if maskable && attempts < budget {
            self.schedule_item_retry(name, idx, &spec, attempts);
        } else if !failover && spec.failover.is_some() {
            let program = spec.failover.clone().expect("just checked");
            let attempts = {
                let p = self.instance.item_mut(name, idx);
                p.failover = true;
                // Forfeit any unused primary budget (non-maskable path) so
                // the failover phase is always attempts max+1 ..= 2*max —
                // a fresh `max_attempts` budget on the alternative program.
                p.attempts = p.attempts.max(spec.max_attempts);
                p.attempts
            };
            self.trace(TraceKind::ItemFailover {
                activity: name.to_string(),
                item: idx,
                program: program.clone(),
            });
            self.log(
                LogKind::Recovery,
                format!("{name} item={idx} failing over to '{program}'"),
            );
            self.schedule_item_retry(name, idx, &spec, attempts);
        } else {
            self.foreach_item_exhaust(name, idx);
        }
    }

    fn schedule_item_retry(&mut self, name: &str, idx: usize, spec: &ForeachSpec, attempts: u32) {
        let delay = spec.retry_interval;
        let at = self.executor.now() + delay;
        let seq = self.timer_seq;
        self.timer_seq += 1;
        self.timers.push(Timer {
            key: TimerKey(at, seq),
            activity: name.to_string(),
            slot: idx,
        });
        self.nodes.get_mut(name).expect("runtime exists").slots[idx].waiting = true;
        self.trace(TraceKind::RetryScheduled {
            activity: name.to_string(),
            slot: idx,
            attempt: attempts + 1,
            fire_at: at,
        });
        self.log(
            LogKind::Recovery,
            format!(
                "{name} item={idx} retry (attempt {}) in {delay}",
                attempts + 1
            ),
        );
    }

    /// Every recovery avenue for the item is spent: apply the fan-out's
    /// exhaustion action and re-evaluate the node.
    fn foreach_item_exhaust(&mut self, name: &str, idx: usize) {
        self.settlements += 1;
        let spec = self.foreach_spec(name);
        let (attempts, reason) = {
            let p = self.instance.item_mut(name, idx);
            p.state = match spec.on_exhausted {
                ItemAction::DeadLetter => ItemState::DeadLettered,
                ItemAction::Skip => ItemState::Skipped,
                ItemAction::Stop => ItemState::Failed,
            };
            (p.attempts, p.reason.clone())
        };
        self.nodes.get_mut(name).expect("runtime exists").slots[idx].exhausted = true;
        match spec.on_exhausted {
            ItemAction::DeadLetter => {
                self.trace(TraceKind::ItemDeadLettered {
                    activity: name.to_string(),
                    item: idx,
                    attempts,
                    reason: reason.clone(),
                });
                self.log(
                    LogKind::Recovery,
                    format!(
                        "{name} item={idx} dead-lettered after {attempts} attempt(s): {reason}"
                    ),
                );
            }
            ItemAction::Skip => {
                self.trace(TraceKind::ItemSettled {
                    activity: name.to_string(),
                    item: idx,
                    outcome: "skipped".to_string(),
                    attempts,
                });
                self.log(
                    LogKind::Settle,
                    format!("{name} item={idx} skipped after {attempts} attempt(s)"),
                );
            }
            ItemAction::Stop => {
                self.trace(TraceKind::ItemSettled {
                    activity: name.to_string(),
                    item: idx,
                    outcome: "failed".to_string(),
                    attempts,
                });
                self.log(
                    LogKind::Settle,
                    format!("{name} item={idx} failed; stopping the fan-out"),
                );
            }
        }
        self.write_checkpoint();
        self.foreach_after_item(name);
    }

    /// Marks every non-terminal item of a settling fan-out `cancelled` —
    /// the one funnel every node-settling route (stop items, breached
    /// budgets, stalls, redundant-branch pruning) passes through, so the
    /// per-item accounting invariant (every instantiated item reaches
    /// exactly one terminal state) holds no matter why the node settled.
    fn cancel_foreach_items(&mut self, name: &str) {
        if !self.is_foreach(name) {
            return;
        }
        let n = self.instance.items(name).map(|it| it.len()).unwrap_or(0);
        for idx in 0..n {
            let attempts = {
                let p = self.instance.item_mut(name, idx);
                if p.state.is_terminal() {
                    None
                } else {
                    p.state = ItemState::Cancelled;
                    Some(p.attempts)
                }
            };
            if let Some(attempts) = attempts {
                self.trace(TraceKind::ItemSettled {
                    activity: name.to_string(),
                    item: idx,
                    outcome: "cancelled".to_string(),
                    attempts,
                });
                self.log(
                    LogKind::Settle,
                    format!("{name} item={idx} cancelled (node settled)"),
                );
            }
        }
    }

    // -------------------------------------------------------- settlement ---

    /// Journals an attempt's terminal classification exactly once (the
    /// `open_attempts` guard absorbs duplicate settlement paths).  Spans
    /// are no longer tracked separately — [`Report::spans`] derives from
    /// these events.
    fn settle_attempt(&mut self, name: &str, task: TaskId, outcome: TaskOutcome, reason: &str) {
        if self.open_attempts.remove(&task) {
            self.trace(TraceKind::TaskSettled {
                activity: name.to_string(),
                task: task.0,
                outcome,
                reason: reason.to_string(),
            });
        }
    }

    /// Feeds a task success on `host` to the breaker registry (if enabled)
    /// and the host scorer, and journals any breaker transition it caused.
    fn breaker_success(&mut self, host: Option<&str>) {
        let Some(host) = host else { return };
        if let Some(sc) = self.scorer.as_mut() {
            sc.record_success(host);
        }
        let ev = match self.breakers.as_mut() {
            Some(br) => br.record_success(host),
            None => return,
        };
        if let Some(ev) = ev {
            self.trace_breaker(ev);
        }
    }

    /// Feeds a task failure (crash / presumed-dead) on `host` to the
    /// breaker registry and the host scorer, and journals any breaker
    /// transition it caused.
    fn breaker_failure(&mut self, host: Option<&str>) {
        let Some(host) = host else { return };
        let now = self.executor.now();
        if let Some(sc) = self.scorer.as_mut() {
            sc.record_failure(host, now);
        }
        let ev = match self.breakers.as_mut() {
            Some(br) => br.record_failure(host, now),
            None => return,
        };
        if let Some(ev) = ev {
            self.trace_breaker(ev);
        }
    }

    /// Pre-emptive re-replication: when a live attempt's host shows a φ
    /// level at or above [`crate::sched_score::ScorerConfig::rereplicate_phi`],
    /// evacuate the attempt to the best failure-decorrelated host *before*
    /// the presumption fires — the replacement resumes from the slot's
    /// last checkpoint flag instead of losing the work to a crash.
    /// Budgeted per slot by `max_rereplications`, and the move consumes no
    /// retry (`tries_used` is untouched: nothing has failed yet).  Only
    /// the φ-accrual detector produces a live suspicion level, so this is
    /// a no-op under the fixed-timeout policy.
    fn preemptive_rereplicate(&mut self) {
        let Some(cfg) = self.scorer.as_ref().map(|s| s.config().clone()) else {
            return;
        };
        let now = self.executor.now();
        // Deterministic visiting order: ascending task id.
        let mut live: Vec<(TaskId, String, usize)> = self
            .attempts
            .iter()
            .map(|(t, (name, slot))| (*t, name.clone(), *slot))
            .collect();
        live.sort_by_key(|(t, _, _)| t.0);
        for (task, name, slot) in live {
            if self.is_foreach(&name) {
                continue;
            }
            let Some(phi) = self.detector.phi_level(task, now) else {
                continue;
            };
            if phi < cfg.rereplicate_phi {
                continue;
            }
            let key = (name.clone(), slot);
            if self.rereplications.get(&key).copied().unwrap_or(0) >= cfg.max_rereplications {
                continue;
            }
            let Some(from) = self.attempt_hosts.get(&task).cloned() else {
                continue;
            };
            let act = self
                .instance
                .workflow()
                .activity(&name)
                .expect("known activity")
                .clone();
            let program = self
                .instance
                .workflow()
                .program(act.implement.as_deref().expect("non-dummy"))
                .expect("validated reference")
                .clone();
            let base = match act.policy {
                Policy::Simple => {
                    let tries = self
                        .nodes
                        .get(&name)
                        .map(|rt| rt.slots[slot].tries_used)
                        .unwrap_or(0);
                    (tries as usize) % program.options.len()
                }
                Policy::Replica => slot,
            };
            // Exclude the suspected host and every sibling's host; if no
            // healthy decorrelated target exists, stay put — the detector
            // will presume in its own time and the ordinary retry path
            // takes over.
            let mut exclude = self.sibling_hosts(&name, slot);
            exclude.push(from.clone());
            let Some(placement) = self.scored_option(&program, base, &exclude) else {
                continue;
            };
            let to = program.options[placement.index].hostname.clone();
            self.attempts.remove(&task);
            self.attempt_hosts.remove(&task);
            if let Some(rt) = self.nodes.get_mut(&name) {
                rt.slots[slot].live = None;
            }
            self.executor.cancel(task);
            self.settle_attempt(&name, task, TaskOutcome::Cancelled, "rereplicate");
            self.trace(TraceKind::Rereplicate {
                activity: name.clone(),
                slot,
                from: from.clone(),
                to: to.clone(),
                phi,
            });
            self.log(
                LogKind::Recovery,
                format!("{name} slot={slot} phi={phi:.2} rereplicate {from} -> {to}"),
            );
            *self.rereplications.entry(key).or_insert(0) += 1;
            self.submit_slot_inner(&name, slot, Some(placement.index));
        }
    }

    fn trace_breaker(&mut self, ev: crate::breaker::BreakerEvent) {
        let kind = match ev {
            crate::breaker::BreakerEvent::Opened { host, until } => {
                TraceKind::BreakerOpen { host, until }
            }
            crate::breaker::BreakerEvent::Closed { host } => TraceKind::BreakerClosed { host },
        };
        self.trace(kind);
    }

    fn cancel_live(&mut self, name: &str) {
        if let Some(rt) = self.nodes.get_mut(name) {
            let live: Vec<TaskId> = rt.slots.iter_mut().filter_map(|s| s.live.take()).collect();
            for task in live {
                self.attempts.remove(&task);
                self.attempt_hosts.remove(&task);
                self.executor.cancel(task);
                self.settle_attempt(name, task, TaskOutcome::Cancelled, "node-settled");
                self.log(LogKind::Cancel, format!("{name} cancelled {task}"));
            }
        }
    }

    fn settle_node(&mut self, name: &str, status: NodeStatus) {
        self.settlements += 1;
        self.cancel_foreach_items(name);
        self.cancel_live(name);
        let status_str = status.as_expr_str().to_string();
        let (state_full, exc_detail) = match &status {
            NodeStatus::Exception(n) => (format!("exception:{n}"), format!(" ({n})")),
            other => (other.as_expr_str().to_string(), String::new()),
        };
        let (result, skipped) = self.instance.settle(name, status);
        match result {
            CompleteResult::LoopAgain => {
                let rt = self.nodes.get_mut(name).expect("looped node ran");
                rt.loop_iterations += 1;
                let iterations = rt.loop_iterations;
                if iterations >= self.config.max_loop_iterations {
                    self.log(
                        LogKind::Stall,
                        format!("{name} exceeded max_loop_iterations; failing"),
                    );
                    self.trace(TraceKind::EngineStalled {
                        activity: name.to_string(),
                    });
                    // The node is Pending again; settle it as failed so the
                    // workflow terminates deterministically.
                    let (_, skipped) = self.instance.settle(name, NodeStatus::Failed);
                    self.trace(TraceKind::NodeState {
                        activity: name.to_string(),
                        state: "failed".to_string(),
                    });
                    for s in skipped {
                        self.log(LogKind::Settle, format!("{s} skipped"));
                        self.trace(TraceKind::NodeState {
                            activity: s,
                            state: "skipped".to_string(),
                        });
                    }
                } else {
                    self.log(
                        LogKind::Loop,
                        format!("{name} loops (iteration {})", iterations + 1),
                    );
                    self.trace(TraceKind::LoopIteration {
                        activity: name.to_string(),
                        iteration: iterations + 1,
                    });
                }
            }
            CompleteResult::Settled => {
                self.log(LogKind::Settle, format!("{name} {status_str}{exc_detail}"));
                self.trace(TraceKind::NodeState {
                    activity: name.to_string(),
                    state: state_full,
                });
                for s in skipped {
                    self.log(LogKind::Settle, format!("{s} skipped"));
                    self.trace(TraceKind::NodeState {
                        activity: s,
                        state: "skipped".to_string(),
                    });
                }
                if self.config.cancel_redundant {
                    self.prune_redundant_branches();
                }
            }
        }
        self.write_checkpoint();
    }

    /// Extension (`cancel_redundant`): running activities whose every
    /// outgoing edge leads into an OR-join that is already satisfied (or a
    /// node already settled) contribute nothing further — cancel them and
    /// settle them as skipped.
    fn prune_redundant_branches(&mut self) {
        loop {
            let victim: Option<String> = self
                .instance
                .workflow()
                .activities
                .iter()
                .filter(|a| self.instance.status(&a.name) == &NodeStatus::Running)
                .find(|a| {
                    let mut outgoing = self.instance.workflow().outgoing(&a.name).peekable();
                    if outgoing.peek().is_none() {
                        return false; // sinks always matter
                    }
                    outgoing.all(|t| {
                        let target = self.instance.workflow().activity(&t.to).expect("validated");
                        let target_status = self.instance.status(&t.to);
                        // The edge is pointless if its target already fired
                        // past Pending (an OR-join that went ready/settled
                        // without this branch).
                        target.join == gridwfs_wpdl::ast::JoinMode::Or
                            && *target_status != NodeStatus::Pending
                    })
                })
                .map(|a| a.name.clone());
            match victim {
                Some(name) => {
                    self.log(
                        LogKind::Cancel,
                        format!("{name} redundant (its OR-joins are satisfied); cancelling"),
                    );
                    self.settle_node(&name, NodeStatus::Skipped);
                }
                None => return,
            }
        }
    }

    fn write_checkpoint(&mut self) {
        if let Some(sink) = self.config.checkpoint_sink.clone() {
            // The log message is a constant, never a path: sink hosts
            // assert journals byte-identical across state-dir locations.
            let ok = match sink.save(crate::checkpoint::to_xml(&self.instance)) {
                Err(e) => {
                    self.log(LogKind::Checkpoint, format!("checkpoint stage failed: {e}"));
                    false
                }
                Ok(()) => {
                    self.log(LogKind::Checkpoint, "staged for group commit".to_string());
                    true
                }
            };
            self.trace(TraceKind::EngineCheckpoint { ok });
        } else if let Some(path) = self.config.checkpoint_path.clone() {
            let ok = match crate::checkpoint::save(&self.instance, &path) {
                Err(e) => {
                    self.log(LogKind::Checkpoint, format!("checkpoint write failed: {e}"));
                    false
                }
                Ok(()) => {
                    self.log(LogKind::Checkpoint, format!("saved to {}", path.display()));
                    true
                }
            };
            self.trace(TraceKind::EngineCheckpoint { ok });
        }
    }

    // ---------------------------------------------------------- recovery ---

    /// Task-level recovery for a crashed (or retryably-excepted) attempt.
    fn recover_or_fail(&mut self, name: &str, slot: usize, final_status: NodeStatus) {
        let act = self
            .instance
            .workflow()
            .activity(name)
            .expect("known activity")
            .clone();
        let rt = self.nodes.get_mut(name).expect("runtime exists");
        let s = &mut rt.slots[slot];
        s.live = None;
        s.tries_used += 1;
        if s.tries_used < act.max_tries {
            // Retry n waits interval * backoff^(n-1) (backoff 1.0 = paper).
            let delay = act.retry_interval * act.retry_backoff.powi(s.tries_used as i32 - 1);
            let at = self.executor.now() + delay;
            let seq = self.timer_seq;
            self.timer_seq += 1;
            self.timers.push(Timer {
                key: TimerKey(at, seq),
                activity: name.to_string(),
                slot,
            });
            self.trace(TraceKind::RetryScheduled {
                activity: name.to_string(),
                slot,
                attempt: self.nodes[name].slots[slot].tries_used + 1,
                fire_at: at,
            });
            self.log(
                LogKind::Recovery,
                format!(
                    "{name} slot={slot} retry {}/{} in {delay}",
                    self.nodes[name].slots[slot].tries_used + 1,
                    act.max_tries
                ),
            );
        } else {
            let rt = self.nodes.get_mut(name).expect("runtime exists");
            rt.slots[slot].exhausted = true;
            let all_exhausted = rt.slots.iter().all(|s| s.exhausted);
            if all_exhausted {
                self.trace(TraceKind::RecoveryExhausted {
                    activity: name.to_string(),
                });
                self.log(
                    LogKind::Recovery,
                    format!("{name} task-level recovery exhausted"),
                );
                self.settle_node(name, final_status);
            } else {
                self.log(
                    LogKind::Recovery,
                    format!("{name} slot={slot} exhausted; other replicas still racing"),
                );
            }
        }
    }

    fn handle(&mut self, detection: Detection) {
        let task = detection.task();
        // Post-mortem evidence from presumed-dead attempts is handled before
        // the `attempts` lookup: the attempt was removed at presumption, so
        // these would otherwise vanish as "stale".  The attempt stays settled
        // — fencing means the evidence is journalled and discarded, never
        // allowed to re-settle a node or resurrect a cancelled replica.
        match &detection {
            Detection::Zombie { body, .. } => {
                let activity = self
                    .presumed
                    .get(&task)
                    .cloned()
                    .unwrap_or_else(|| "?".to_string());
                self.log(
                    LogKind::Detect,
                    format!("{activity} {task} zombie {body} discarded (presumed dead)"),
                );
                self.trace(TraceKind::ZombieCompletion {
                    activity,
                    task: task.0,
                    body: (*body).to_string(),
                });
                return;
            }
            Detection::LateHeartbeat { seq, .. } => {
                let activity = self
                    .presumed
                    .get(&task)
                    .cloned()
                    .unwrap_or_else(|| "?".to_string());
                self.trace(TraceKind::LateHeartbeat {
                    activity,
                    task: task.0,
                    seq: *seq,
                });
                return;
            }
            _ => {}
        }
        let Some(&(ref name, slot)) = self.attempts.get(&task) else {
            return; // stale: attempt was cancelled or node already settled
        };
        let name = name.clone();
        let is_foreach = self.is_foreach(&name);
        match detection {
            Detection::Completed { .. } => {
                self.log(LogKind::Detect, format!("{name} {task} completed"));
                // The winner is no longer live; cancel_live must only touch
                // the losing replicas.
                self.attempts.remove(&task);
                let host = self.attempt_hosts.remove(&task);
                if let Some(rt) = self.nodes.get_mut(&name) {
                    rt.slots[slot].live = None;
                }
                self.settle_attempt(&name, task, TaskOutcome::Completed, "task-end");
                self.breaker_success(host.as_deref());
                if is_foreach {
                    self.foreach_item_done(&name, slot);
                } else {
                    self.settle_node(&name, NodeStatus::Done);
                }
            }
            Detection::Crashed { reason, .. } => {
                let (why, reason_str) = match reason {
                    CrashReason::DoneWithoutTaskEnd => {
                        ("crash (Done without Task End)", "done-without-task-end")
                    }
                    CrashReason::HeartbeatLoss => {
                        ("presumed crash (heartbeat loss)", "heartbeat-loss")
                    }
                };
                self.log(LogKind::Detect, format!("{name} {task} {why}"));
                if reason == CrashReason::HeartbeatLoss {
                    // A presumption, not an observation: the attempt may be
                    // alive behind a flaky link.  Journal the evidence that
                    // convicted it and remember its activity so post-mortem
                    // messages can be attributed when they surface later.
                    let suspicion = self.detector.suspicion(task);
                    self.trace(TraceKind::SuspicionRaised {
                        activity: name.clone(),
                        task: task.0,
                        silence: suspicion.map(|s| s.silence).unwrap_or(0.0),
                        phi: suspicion.and_then(|s| s.phi),
                    });
                    self.presumed.insert(task, name.clone());
                }
                self.attempts.remove(&task);
                let host = self.attempt_hosts.remove(&task);
                self.settle_attempt(&name, task, TaskOutcome::Crashed, reason_str);
                if reason == CrashReason::HeartbeatLoss {
                    // Best-effort cancel to the possibly-alive orphan — it
                    // travels the same unreliable network, so it may be lost
                    // and messages already in flight still arrive.
                    self.executor.orphan_cancel(task);
                    self.trace(TraceKind::OrphanCancelled {
                        activity: name.clone(),
                        task: task.0,
                    });
                }
                self.breaker_failure(host.as_deref());
                if is_foreach {
                    self.foreach_item_failed(&name, slot, reason_str, true);
                } else {
                    self.recover_or_fail(&name, slot, NodeStatus::Failed);
                }
            }
            Detection::ExceptionRaised {
                name: exc, known, ..
            } => {
                self.log(
                    LogKind::Detect,
                    format!(
                        "{name} {task} exception '{exc}'{}",
                        if known { "" } else { " (undeclared)" }
                    ),
                );
                self.attempts.remove(&task);
                // Exceptions are application-level outcomes, not host
                // flakiness: they neither trip nor reset the host breaker.
                self.attempt_hosts.remove(&task);
                self.settle_attempt(&name, task, TaskOutcome::Exception, &exc);
                let severity = self
                    .detector
                    .registry()
                    .get(&exc)
                    .map(|d| d.severity)
                    .unwrap_or(Severity::Fatal);
                match severity {
                    // Recoverable exceptions are maskable: retrying may
                    // encounter a different environment (§2.1's transient
                    // failures).  Exhaustion still surfaces the exception so
                    // on='exception:<name>' handlers can catch it.
                    Severity::Recoverable => {
                        if is_foreach {
                            self.foreach_item_failed(&name, slot, &format!("exception:{exc}"), true)
                        } else {
                            self.recover_or_fail(&name, slot, NodeStatus::Exception(exc))
                        }
                    }
                    // Fatal (and undeclared) exceptions cannot be masked by
                    // retrying — straight to the workflow level (§5.3); for
                    // a fan-out item that means forfeiting retries and going
                    // straight to failover or the exhaustion action.
                    Severity::Fatal => {
                        if is_foreach {
                            self.foreach_item_failed(
                                &name,
                                slot,
                                &format!("exception:{exc}"),
                                false,
                            )
                        } else {
                            self.settle_node(&name, NodeStatus::Exception(exc))
                        }
                    }
                }
            }
            Detection::CheckpointRecorded { flag, .. } => {
                if let Some(rt) = self.nodes.get_mut(&name) {
                    rt.slots[slot].ckpt_flag = Some(flag.clone());
                }
                self.trace(TraceKind::CheckpointFlag {
                    activity: name.clone(),
                    task: task.0,
                    flag: flag.clone(),
                });
                self.log(LogKind::Checkpoint, format!("{name} {task} flag={flag}"));
            }
            Detection::Zombie { .. } | Detection::LateHeartbeat { .. } => {
                unreachable!("post-mortem evidence is handled before the attempts lookup")
            }
        }
    }

    // -------------------------------------------------------------- loop ---

    fn next_deadline(&self, reorder: Option<&ReorderBuffer>) -> Option<f64> {
        [
            self.timers.peek().map(|t| t.key.0),
            self.detector.next_deadline(),
            reorder.and_then(|b| b.next_due()),
        ]
        .into_iter()
        .flatten()
        .min_by(f64::total_cmp)
    }

    fn observe(&mut self, env: &gridwfs_detect::notify::Envelope, at: f64) {
        let detections = self.detector.observe(env, at);
        for d in detections {
            self.handle(d);
        }
    }

    /// Fires all timers due at or before `now`.  Returns how many fired.
    fn fire_timers(&mut self, now: f64) -> usize {
        let mut fired = 0;
        while self.timers.peek().map(|t| t.key.0 <= now).unwrap_or(false) {
            let t = self.timers.pop().expect("peeked");
            // The node may have settled since the retry was scheduled
            // (e.g. a sibling replica won): skip stale timers.
            if self.instance.status(&t.activity) != &NodeStatus::Running {
                continue;
            }
            if self.is_foreach(&t.activity) {
                if let Some(rt) = self.nodes.get_mut(&t.activity) {
                    rt.slots[t.slot].waiting = false;
                }
                // The item may have settled since (node-level cancellation
                // races the timer): only still-pending items resubmit.
                let pending = self
                    .instance
                    .items(&t.activity)
                    .map(|it| it[t.slot].state == ItemState::Pending)
                    .unwrap_or(false);
                if pending {
                    self.submit_item(&t.activity, t.slot);
                    fired += 1;
                }
            } else {
                self.submit_slot(&t.activity, t.slot);
                fired += 1;
            }
        }
        fired
    }

    /// Abandons every live attempt (service-side abort): cancels them on
    /// the executor so real threads stop, closes their spans, and writes a
    /// final checkpoint so a later resume sees current state.  Node
    /// statuses are untouched — running nodes checkpoint as `pending` and
    /// are resubmitted on restart, exactly like a crashed engine.
    fn abort_live(&mut self) {
        let live: Vec<(TaskId, String)> = self
            .attempts
            .iter()
            .map(|(t, (n, _))| (*t, n.clone()))
            .collect();
        for (task, name) in live {
            self.executor.cancel(task);
            self.settle_attempt(&name, task, TaskOutcome::Cancelled, "abort");
            self.log(LogKind::Cancel, format!("{name} cancelled {task} (abort)"));
        }
        self.attempts.clear();
        self.attempt_hosts.clear();
        self.write_checkpoint();
    }

    fn fail_stalled(&mut self) {
        let running: Vec<String> = self
            .instance
            .statuses()
            .filter(|(_, s)| **s == NodeStatus::Running)
            .map(|(n, _)| n.to_string())
            .collect();
        for name in running {
            self.log(
                LogKind::Stall,
                format!("{name} cannot make progress (no notifications, no timers); failing"),
            );
            self.trace(TraceKind::EngineStalled {
                activity: name.clone(),
            });
            self.settle_node(&name, NodeStatus::Failed);
        }
    }

    /// Runs the workflow to completion and returns the report.
    ///
    /// A thin blocking driver over the same slice of work [`Engine::step`]
    /// performs: each iteration is exactly one turn of the historical event
    /// loop, with the executor allowed to park inside `next_notification`,
    /// so the trace (and therefore the JSONL journal) is byte-identical to
    /// what the monolithic loop produced.
    pub fn run(mut self) -> Report {
        loop {
            match self.step_inner(true) {
                StepOutcome::Finished(report) => return *report,
                StepOutcome::Progressed => {}
                StepOutcome::Idle { .. } => unreachable!("blocking step never reports Idle"),
            }
        }
    }

    /// Performs one bounded slice of navigation without blocking.
    ///
    /// Where [`Engine::run`] parks the calling thread inside the executor's
    /// `next_notification`, `step` polls ([`Executor::poll_notification`])
    /// and hands control back with [`StepOutcome::Idle`] instead — the hook
    /// a cooperative scheduler needs to multiplex many engines over a few
    /// worker threads.  `Idle::wake_at` is on the executor's clock; convert
    /// with [`Engine::now`].  Stepping again after
    /// [`StepOutcome::Finished`] panics.
    pub fn step(&mut self) -> StepOutcome {
        self.step_inner(false)
    }

    /// Current executor-clock time (virtual seconds for the simulated Grid,
    /// wall seconds since construction for the thread executor) — the clock
    /// [`StepOutcome::Idle`]'s `wake_at` is expressed in.
    pub fn now(&self) -> f64 {
        self.executor.now()
    }

    fn step_inner(&mut self, block: bool) -> StepOutcome {
        if self.run_state.is_none() {
            let started_at = self.executor.now();
            self.run_state = Some(RunState {
                started_at,
                deadline_abs: self.config.deadline.map(|d| started_at + d),
                reorder: self.config.reorder_settle.map(ReorderBuffer::new),
                done: false,
            });
        }
        let state = self.run_state.as_ref().expect("just initialised");
        assert!(!state.done, "Engine stepped after StepOutcome::Finished");
        let deadline_abs = state.deadline_abs;
        if let Some(limit) = self.config.max_settlements {
            if self.settlements >= limit {
                self.log(
                    LogKind::Stall,
                    format!("aborting after {limit} settlements (simulated engine crash)"),
                );
                self.trace(TraceKind::EngineAborted {
                    reason: "max_settlements".to_string(),
                });
                return self.finish(Some("max_settlements".to_string()));
            }
        }
        if self
            .config
            .stop
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
        {
            self.log(LogKind::Stall, "stop requested; aborting".to_string());
            self.trace(TraceKind::EngineAborted {
                reason: "stop".to_string(),
            });
            self.abort_live();
            return self.finish(Some("stop".to_string()));
        }
        if let Some(d) = deadline_abs {
            if self.executor.now() >= d {
                self.log(LogKind::Stall, format!("deadline reached at {d}; aborting"));
                self.trace(TraceKind::EngineAborted {
                    reason: "deadline".to_string(),
                });
                self.abort_live();
                return self.finish(Some("deadline".to_string()));
            }
        }
        self.launch_ready();
        if self.instance.is_finished() {
            return self.finish(None);
        }
        // Clamp the wait so the engine wakes up (and aborts) at the
        // deadline even if no notification ever arrives.
        let deadline = {
            let reorder = self.run_state.as_ref().expect("stepping").reorder.as_ref();
            match (self.next_deadline(reorder), deadline_abs) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
        };
        let polled = if block {
            match self.executor.next_notification(deadline) {
                Some((t, env)) => Polled::Delivered(t, env),
                None => Polled::TimedOut,
            }
        } else {
            self.executor.poll_notification(deadline)
        };
        match polled {
            Polled::Pending { wake_at } => return StepOutcome::Idle { wake_at },
            Polled::Delivered(t, env) => {
                // The buffer is lifted out of `run_state` while its releases
                // are observed (observe needs `&mut self`), then put back.
                let mut reorder = self.run_state.as_mut().expect("stepping").reorder.take();
                match &mut reorder {
                    Some(buf) => {
                        buf.accept(env, t);
                        for e in buf.release(t) {
                            self.observe(&e, t);
                        }
                    }
                    None => self.observe(&env, t),
                }
                self.run_state.as_mut().expect("stepping").reorder = reorder;
                self.preemptive_rereplicate();
            }
            Polled::TimedOut => {
                let now = self.executor.now();
                let mut released = 0;
                let mut reorder = self.run_state.as_mut().expect("stepping").reorder.take();
                if let Some(buf) = &mut reorder {
                    for e in buf.release(now) {
                        released += 1;
                        self.observe(&e, now);
                    }
                }
                self.run_state.as_mut().expect("stepping").reorder = reorder;
                let fired = self.fire_timers(now);
                let swept = self.detector.sweep(now);
                let any_swept = !swept.is_empty();
                for d in swept {
                    self.handle(d);
                }
                self.preemptive_rereplicate();
                if fired == 0
                    && !any_swept
                    && released == 0
                    && deadline.is_none()
                    && self.executor.is_idle()
                {
                    self.fail_stalled();
                }
            }
        }
        StepOutcome::Progressed
    }

    /// Seals the run and builds the final report (the tail of the old
    /// monolithic `run`): flushes the sink, then moves the log and trace
    /// out of the engine so `step` can return [`StepOutcome::Finished`]
    /// without consuming `self`.
    fn finish(&mut self, aborted: Option<String>) -> StepOutcome {
        let state = self.run_state.as_mut().expect("stepping");
        state.done = true;
        let started_at = state.started_at;
        let finished_at = self.executor.now();
        if let Some(sink) = &self.sink {
            sink.flush();
        }
        let trace = std::mem::take(&mut self.trace);
        let mut dlq = Vec::new();
        for (name, items) in self.instance.items_iter() {
            let Some(spec) = self
                .instance
                .workflow()
                .activity(name)
                .and_then(|a| a.foreach.as_ref())
            else {
                continue;
            };
            for (idx, p) in items.iter().enumerate() {
                if p.state == ItemState::DeadLettered {
                    dlq.push(DlqEntry {
                        activity: name.to_string(),
                        index: idx,
                        item: spec.items[idx].clone(),
                        attempts: p.attempts,
                        reason: p.reason.clone(),
                    });
                }
            }
        }
        StepOutcome::Finished(Box::new(Report {
            outcome: self.instance.outcome(),
            aborted,
            finished_at,
            makespan: finished_at - started_at,
            spans: crate::timeline::spans_from_trace(&trace),
            node_status: self
                .instance
                .statuses()
                .map(|(n, s)| {
                    let s = match s {
                        NodeStatus::Exception(e) => format!("exception:{e}"),
                        other => other.as_expr_str().to_string(),
                    };
                    (n.to_string(), s)
                })
                .collect(),
            log: std::mem::take(&mut self.log),
            trace,
            eval_errors: self.instance.eval_errors().to_vec(),
            dlq,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_key_orders_earliest_first_fifo_ties() {
        let mut heap = BinaryHeap::new();
        for (i, t) in [(0u64, 5.0), (1, 1.0), (2, 5.0), (3, 3.0)] {
            heap.push(Timer {
                key: TimerKey(t, i),
                activity: format!("a{i}"),
                slot: 0,
            });
        }
        let order: Vec<String> = std::iter::from_fn(|| heap.pop().map(|t| t.activity)).collect();
        assert_eq!(
            order,
            vec!["a1", "a3", "a0", "a2"],
            "time asc, FIFO at ties"
        );
    }

    #[test]
    fn config_defaults_match_paper_behaviour() {
        let c = EngineConfig::default();
        assert!(c.checkpoint_path.is_none());
        assert!(
            c.reorder_settle.is_none(),
            "prototype delivered immediately"
        );
        assert!(
            !c.cancel_redundant,
            "prototype let redundant branches finish"
        );
        assert!(c.breaker.is_none(), "breakers are opt-in");
        assert!(
            matches!(c.scheduler, crate::sched_score::SchedulerPolicy::Oblivious),
            "resilient scheduling is opt-in: default journals stay byte-identical"
        );
        assert!(c.max_loop_iterations >= 1000);
    }

    #[test]
    fn report_helpers() {
        let report = Report {
            outcome: Outcome::Success,
            aborted: None,
            finished_at: 10.0,
            makespan: 10.0,
            node_status: vec![("a".into(), "done".into())],
            log: vec![
                LogEntry {
                    at: 0.0,
                    kind: LogKind::Submit,
                    message: "a slot=0".into(),
                },
                LogEntry {
                    at: 1.0,
                    kind: LogKind::Submit,
                    message: "ab slot=0".into(),
                },
            ],
            spans: vec![crate::timeline::Span {
                activity: "a".into(),
                task: 1,
                host: "h".into(),
                start: 0.0,
                end: 10.0,
                outcome: crate::timeline::SpanOutcome::Completed,
            }],
            trace: vec![],
            eval_errors: vec![],
            dlq: vec![],
        };
        assert!(report.is_success());
        assert_eq!(report.status_of("a"), Some("done"));
        assert_eq!(report.status_of("zz"), None);
        assert_eq!(
            report.submissions_of("a"),
            1,
            "prefix match must not catch 'ab'"
        );
        assert_eq!(report.submissions_of("ab"), 1);
        assert_eq!(report.cancellations(), 0);
        assert_eq!(report.host_utilization(), vec![("h".to_string(), 10.0)]);
    }
}
