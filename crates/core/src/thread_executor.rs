//! A real executor: tasks as Rust closures on OS threads.
//!
//! The simulated Grid proves the engine's recovery logic; [`ThreadExecutor`]
//! proves the engine is a real workflow runner.  Each submitted attempt
//! spawns a thread running the closure registered for its program.  The
//! closure receives a [`TaskContext`] — the Rust face of the paper's
//! task-side notification API — through which it heartbeats, records
//! checkpoints, and raises user-defined exceptions; its return value
//! becomes `Task End` + `Done`, a crash, or an exception.
//!
//! Time is wall-clock seconds since executor construction, so the same
//! engine code drives simulated and real runs unchanged.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use gridwfs_detect::notify::{Envelope, Notification, TaskId};

use crate::executor::{Executor, Polled, SubmitRequest};

/// How a task closure finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskResult {
    /// Application-level success: `Task End` then `Done`.
    Success,
    /// Simulated process death: `Done` without `Task End`.
    Crash,
    /// User-defined exception.
    Exception {
        /// Registered exception name.
        name: String,
        /// Free-form detail.
        detail: String,
    },
}

/// The task-side API handed to closures (the `globus_FDS_task_*` analogue).
pub struct TaskContext {
    task: TaskId,
    host: String,
    start: Instant,
    epoch: Instant,
    tx: Sender<Envelope>,
    cancelled: Arc<AtomicBool>,
    hb_seq: u64,
    /// Checkpoint flag from the previous attempt, if the engine is asking
    /// this task to resume.
    pub resume_flag: Option<String>,
}

impl TaskContext {
    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    fn send(&self, body: Notification) {
        // A send failure means the engine is gone; the task just runs out.
        let _ = self.tx.send(Envelope::new(
            self.task,
            self.host.clone(),
            self.now(),
            body,
        ));
    }

    /// Emits one heartbeat.
    pub fn heartbeat(&mut self) {
        let seq = self.hb_seq;
        self.hb_seq += 1;
        self.send(Notification::Heartbeat { seq });
    }

    /// Records a checkpoint with an opaque flag.
    pub fn checkpoint(&mut self, flag: impl Into<String>) {
        self.send(Notification::Checkpoint { flag: flag.into() });
    }

    /// True once the engine cancelled this attempt (losing replica); a
    /// polite task checks this and returns early.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Elapsed seconds since this attempt started.
    pub fn elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Sleeps for `secs`, heartbeating every `hb_every` seconds, returning
    /// early (false) if cancelled.
    pub fn work_for(&mut self, secs: f64, hb_every: f64) -> bool {
        let target = self.start.elapsed().as_secs_f64() + secs;
        let mut next_hb = self.start.elapsed().as_secs_f64() + hb_every;
        loop {
            if self.is_cancelled() {
                return false;
            }
            let now = self.start.elapsed().as_secs_f64();
            if now >= target {
                return true;
            }
            let until_hb = (next_hb - now).max(0.0);
            let until_end = target - now;
            std::thread::sleep(Duration::from_secs_f64(until_hb.min(until_end).min(0.05)));
            if self.start.elapsed().as_secs_f64() >= next_hb {
                self.heartbeat();
                next_hb += hb_every;
            }
        }
    }
}

/// A program body.
pub type TaskFn = dyn Fn(&mut TaskContext) -> TaskResult + Send + Sync;

/// A fault the chaos harness injects into one task attempt (decided per
/// [`SubmitRequest`] by a [`FaultHook`] before the task thread starts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectedTaskFault {
    /// The task body panics instead of running — exercising the executor's
    /// `catch_unwind` isolation (the attempt is classified as a crash).
    PanicBody,
    /// The task stalls this many seconds after `Task Start` without
    /// heartbeating — long enough stalls trip the heartbeat monitor's
    /// presumed-dead rule while the thread is still alive.
    Stall(f64),
}

/// Decides, per submission, whether to inject a fault into the attempt.
pub type FaultHook = dyn Fn(&SubmitRequest) -> Option<InjectedTaskFault> + Send + Sync;

/// Executor running program closures on OS threads.
pub struct ThreadExecutor {
    programs: HashMap<String, Arc<TaskFn>>,
    tx: Sender<Envelope>,
    rx: Receiver<Envelope>,
    epoch: Instant,
    cancel_flags: HashMap<TaskId, Arc<AtomicBool>>,
    outstanding: HashMap<TaskId, std::thread::JoinHandle<()>>,
    fault_hook: Option<Arc<FaultHook>>,
}

impl Default for ThreadExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreadExecutor {
    /// An executor with no registered programs.
    pub fn new() -> Self {
        let (tx, rx) = unbounded();
        ThreadExecutor {
            programs: HashMap::new(),
            tx,
            rx,
            epoch: Instant::now(),
            cancel_flags: HashMap::new(),
            outstanding: HashMap::new(),
            fault_hook: None,
        }
    }

    /// Installs a chaos fault hook, consulted once per submission before
    /// the task thread starts.  `None` decisions run the task untouched.
    pub fn set_fault_hook(&mut self, hook: Arc<FaultHook>) {
        self.fault_hook = Some(hook);
    }

    /// Registers the closure implementing a program.
    pub fn register(
        &mut self,
        program: impl Into<String>,
        body: impl Fn(&mut TaskContext) -> TaskResult + Send + Sync + 'static,
    ) {
        self.programs.insert(program.into(), Arc::new(body));
    }

    fn reap_finished(&mut self) {
        let done: Vec<TaskId> = self
            .outstanding
            .iter()
            .filter(|(_, h)| h.is_finished())
            .map(|(&t, _)| t)
            .collect();
        for t in done {
            if let Some(h) = self.outstanding.remove(&t) {
                let _ = h.join();
            }
            self.cancel_flags.remove(&t);
        }
    }
}

impl Executor for ThreadExecutor {
    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    fn submit(&mut self, req: SubmitRequest) {
        self.reap_finished();
        let Some(body) = self.programs.get(&req.program).cloned() else {
            // Unregistered program behaves like an unknown host: the job
            // bounces as a crash.
            let _ = self.tx.send(Envelope::new(
                req.task,
                req.hostname.clone(),
                self.now(),
                Notification::Done,
            ));
            return;
        };
        let cancelled = Arc::new(AtomicBool::new(false));
        self.cancel_flags.insert(req.task, cancelled.clone());
        let tx = self.tx.clone();
        let epoch = self.epoch;
        let fault = self.fault_hook.as_ref().and_then(|h| h(&req));
        let handle = std::thread::spawn(move || {
            let mut ctx = TaskContext {
                task: req.task,
                host: req.hostname.clone(),
                start: Instant::now(),
                epoch,
                tx,
                cancelled,
                hb_seq: 0,
                resume_flag: req.checkpoint_flag.clone(),
            };
            ctx.send(Notification::TaskStart);
            // Panics (the closure's or an injected one) must kill only this
            // attempt, never the executor: the unwind is caught and the
            // attempt classified as a crash (`Done` without `Task End`), so
            // the engine's normal task-level recovery takes over.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                match fault {
                    Some(InjectedTaskFault::Stall(secs)) => {
                        // Heartbeat-starving stall: the thread lives, the
                        // monitor hears nothing.
                        std::thread::sleep(Duration::from_secs_f64(secs));
                    }
                    Some(InjectedTaskFault::PanicBody) => {
                        panic!("chaos: injected task panic");
                    }
                    None => {}
                }
                body(&mut ctx)
            }));
            if ctx.is_cancelled() {
                // The engine no longer cares; stay silent like a killed job.
                return;
            }
            match result {
                Ok(TaskResult::Success) => {
                    ctx.send(Notification::TaskEnd);
                    ctx.send(Notification::Done);
                }
                Ok(TaskResult::Crash) | Err(_) => {
                    ctx.send(Notification::Done);
                }
                Ok(TaskResult::Exception { name, detail }) => {
                    ctx.send(Notification::Exception { name, detail });
                    ctx.send(Notification::Done);
                }
            }
        });
        self.outstanding.insert(req.task, handle);
    }

    fn cancel(&mut self, task: TaskId) {
        if let Some(flag) = self.cancel_flags.get(&task) {
            flag.store(true, Ordering::Relaxed);
        }
    }

    fn next_notification(&mut self, deadline: Option<f64>) -> Option<(f64, Envelope)> {
        self.reap_finished();
        let env = match deadline {
            Some(d) => {
                let wait = (d - self.now()).max(0.0);
                match self.rx.recv_timeout(Duration::from_secs_f64(wait)) {
                    Ok(env) => env,
                    Err(RecvTimeoutError::Timeout) => return None,
                    Err(RecvTimeoutError::Disconnected) => return None,
                }
            }
            None => {
                if self.outstanding.is_empty() || self.outstanding.values().all(|h| h.is_finished())
                {
                    // Only drain what is already queued; nothing new will come.
                    match self.rx.try_recv() {
                        Ok(env) => env,
                        Err(_) => return None,
                    }
                } else {
                    match self.rx.recv() {
                        Ok(env) => env,
                        Err(_) => return None,
                    }
                }
            }
        };
        Some((self.now(), env))
    }

    /// Non-blocking poll: where [`ThreadExecutor::next_notification`] parks
    /// the OS thread in `recv_timeout`, this returns [`Polled::Pending`] so
    /// a scheduler can interleave other engines on the same thread.
    fn poll_notification(&mut self, deadline: Option<f64>) -> Polled {
        self.reap_finished();
        if let Ok(env) = self.rx.try_recv() {
            return Polled::Delivered(self.now(), env);
        }
        match deadline {
            Some(d) if self.now() >= d => Polled::TimedOut,
            Some(d) => {
                if self.outstanding.values().all(|h| h.is_finished()) {
                    // Purely timer-driven: nothing can arrive on the
                    // channel before the engine's own edge at `d`.
                    Polled::Pending { wake_at: Some(d) }
                } else {
                    // A live task can complete at any moment, and its
                    // notification lands on the channel rather than at an
                    // engine timer edge — there is no instant a scheduler
                    // could safely sleep until, so ask to be re-polled
                    // soon instead of parking until `d`.
                    Polled::Pending { wake_at: None }
                }
            }
            None => {
                if self.outstanding.values().all(|h| h.is_finished()) {
                    // Channel drained and nothing can send again: same
                    // terminal answer the blocking path gives.
                    Polled::TimedOut
                } else {
                    Polled::Pending { wake_at: None }
                }
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.outstanding.values().all(|h| h.is_finished()) && self.rx.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(task: u64, program: &str) -> SubmitRequest {
        SubmitRequest {
            task: TaskId(task),
            activity: "a".into(),
            program: program.into(),
            hostname: "localhost".into(),
            service: "thread".into(),
            nominal_duration: 0.1,
            checkpoint_flag: None,
            heartbeat_interval: 0.02,
            checkpoint_hint: None,
        }
    }

    fn drain(x: &mut ThreadExecutor, timeout: f64) -> Vec<Notification> {
        let mut out = Vec::new();
        let deadline = x.now() + timeout;
        while let Some((_, env)) = x.next_notification(Some(deadline)) {
            let done = matches!(env.body, Notification::Done);
            out.push(env.body);
            if done {
                break;
            }
        }
        out
    }

    #[test]
    fn successful_closure_produces_canonical_stream() {
        let mut x = ThreadExecutor::new();
        x.register("ok", |ctx| {
            ctx.heartbeat();
            TaskResult::Success
        });
        x.submit(req(1, "ok"));
        let bodies = drain(&mut x, 2.0);
        assert!(matches!(bodies.first(), Some(Notification::TaskStart)));
        assert!(bodies
            .iter()
            .any(|b| matches!(b, Notification::Heartbeat { .. })));
        let n = bodies.len();
        assert!(matches!(bodies[n - 2], Notification::TaskEnd));
        assert!(matches!(bodies[n - 1], Notification::Done));
    }

    #[test]
    fn crash_result_omits_task_end() {
        let mut x = ThreadExecutor::new();
        x.register("boom", |_| TaskResult::Crash);
        x.submit(req(1, "boom"));
        let bodies = drain(&mut x, 2.0);
        assert!(!bodies.iter().any(|b| matches!(b, Notification::TaskEnd)));
        assert!(matches!(bodies.last(), Some(Notification::Done)));
    }

    #[test]
    fn exception_result_is_reported() {
        let mut x = ThreadExecutor::new();
        x.register("exc", |_| TaskResult::Exception {
            name: "disk_full".into(),
            detail: "test".into(),
        });
        x.submit(req(1, "exc"));
        let bodies = drain(&mut x, 2.0);
        assert!(bodies
            .iter()
            .any(|b| matches!(b, Notification::Exception { name, .. } if name == "disk_full")));
    }

    #[test]
    fn unregistered_program_bounces() {
        let mut x = ThreadExecutor::new();
        x.submit(req(1, "ghost"));
        let bodies = drain(&mut x, 2.0);
        assert_eq!(bodies.len(), 1);
        assert!(matches!(bodies[0], Notification::Done));
    }

    #[test]
    fn checkpoint_flag_round_trips() {
        let mut x = ThreadExecutor::new();
        x.register("ck", |ctx| {
            assert_eq!(ctx.resume_flag.as_deref(), Some("ckpt:5"));
            ctx.checkpoint("ckpt:7");
            TaskResult::Success
        });
        let mut r = req(1, "ck");
        r.checkpoint_flag = Some("ckpt:5".into());
        x.submit(r);
        let bodies = drain(&mut x, 2.0);
        assert!(bodies
            .iter()
            .any(|b| matches!(b, Notification::Checkpoint { flag } if flag == "ckpt:7")));
    }

    #[test]
    fn cancel_silences_a_cooperative_task() {
        let mut x = ThreadExecutor::new();
        x.register("slow", |ctx| {
            if ctx.work_for(5.0, 0.05) {
                TaskResult::Success
            } else {
                TaskResult::Crash // unreachable: cancelled tasks stay silent
            }
        });
        x.submit(req(1, "slow"));
        // Let it start, then cancel.
        let _ = x.next_notification(Some(x.now() + 1.0));
        x.cancel(TaskId(1));
        // No Done should ever arrive.
        let mut saw_done = false;
        while let Some((_, env)) = x.next_notification(Some(x.now() + 0.3)) {
            if matches!(env.body, Notification::Done) {
                saw_done = true;
            }
        }
        assert!(!saw_done, "cancelled task must not report Done");
    }

    #[test]
    fn work_for_heartbeats_and_completes() {
        let mut x = ThreadExecutor::new();
        x.register("w", |ctx| {
            assert!(ctx.work_for(0.15, 0.03));
            TaskResult::Success
        });
        x.submit(req(1, "w"));
        let bodies = drain(&mut x, 3.0);
        let beats = bodies
            .iter()
            .filter(|b| matches!(b, Notification::Heartbeat { .. }))
            .count();
        assert!(beats >= 2, "expected several heartbeats, got {beats}");
        assert!(matches!(bodies.last(), Some(Notification::Done)));
    }

    #[test]
    fn deadline_expiry_returns_none() {
        let mut x = ThreadExecutor::new();
        assert!(x.next_notification(Some(x.now() + 0.05)).is_none());
        assert!(x.is_idle());
    }

    /// Silence the default panic hook's stderr spam for panics this test
    /// binary injects on purpose (recognised by their message).
    fn quiet_expected_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let msg = info
                    .payload()
                    .downcast_ref::<&str>()
                    .copied()
                    .map(String::from)
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_default();
                if !msg.contains("chaos:") && !msg.contains("expected panic") {
                    default(info);
                }
            }));
        });
    }

    #[test]
    fn panicking_closure_is_classified_as_crash_and_executor_survives() {
        quiet_expected_panics();
        let mut x = ThreadExecutor::new();
        x.register("panics", |_| -> TaskResult {
            panic!("expected panic: task body blew up");
        });
        x.register("ok", |_| TaskResult::Success);
        x.submit(req(1, "panics"));
        let bodies = drain(&mut x, 2.0);
        assert!(!bodies.iter().any(|b| matches!(b, Notification::TaskEnd)));
        assert!(
            matches!(bodies.last(), Some(Notification::Done)),
            "panic must surface as Done-without-TaskEnd, got {bodies:?}"
        );
        // The executor (and its channel) survived; later tasks still run.
        x.submit(req(2, "ok"));
        let bodies = drain(&mut x, 2.0);
        assert!(bodies.iter().any(|b| matches!(b, Notification::TaskEnd)));
    }

    #[test]
    fn fault_hook_panic_body_crashes_the_attempt() {
        quiet_expected_panics();
        let mut x = ThreadExecutor::new();
        x.register("ok", |_| TaskResult::Success);
        x.set_fault_hook(Arc::new(|r: &SubmitRequest| {
            (r.task == TaskId(1)).then_some(InjectedTaskFault::PanicBody)
        }));
        x.submit(req(1, "ok"));
        let bodies = drain(&mut x, 2.0);
        assert!(!bodies.iter().any(|b| matches!(b, Notification::TaskEnd)));
        assert!(matches!(bodies.last(), Some(Notification::Done)));
        // Task 2 is not targeted by the hook and completes normally.
        x.submit(req(2, "ok"));
        let bodies = drain(&mut x, 2.0);
        assert!(bodies.iter().any(|b| matches!(b, Notification::TaskEnd)));
    }

    #[test]
    fn fault_hook_stall_starves_heartbeats_past_the_interval() {
        let mut x = ThreadExecutor::new();
        x.register("beats", |ctx| {
            ctx.heartbeat();
            TaskResult::Success
        });
        x.set_fault_hook(Arc::new(|_: &SubmitRequest| {
            Some(InjectedTaskFault::Stall(0.3))
        }));
        x.submit(req(1, "beats")); // heartbeat_interval is 0.02
        let (start_at, env) = x.next_notification(Some(x.now() + 2.0)).expect("start");
        assert!(matches!(env.body, Notification::TaskStart));
        // The next notification is the post-stall heartbeat: nothing for
        // many multiples of the heartbeat interval — exactly the silence
        // that trips the monitor's presumed-dead rule.
        let (beat_at, env) = x.next_notification(Some(x.now() + 2.0)).expect("beat");
        assert!(matches!(env.body, Notification::Heartbeat { .. }));
        assert!(
            beat_at - start_at >= 0.25,
            "stall should delay the first heartbeat, gap was {}",
            beat_at - start_at
        );
    }
}
