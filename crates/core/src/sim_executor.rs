//! The simulated Grid executor.
//!
//! [`SimGrid`] stands in for the Globus deployment of the original
//! prototype: it owns a set of simulated resources (speed, Poisson
//! failures, exponential downtime — the §8.1 model), a notification link
//! (delay/loss), and per-program behaviour profiles (software crashes,
//! user-defined exceptions, checkpoint emission).  On `submit` it
//! pre-computes the attempt's fate and schedules the exact notification
//! stream a real task would have produced:
//!
//! * success — heartbeats, optional `Checkpoint`s, `Task End`, `Done`;
//! * software crash — heartbeats, then `Done` **without** `Task End`;
//! * user-defined exception — heartbeats, then `Exception`, then `Done`;
//! * **host crash** — heartbeats, then *silence* (no `Done` at all): the
//!   engine can only find out through heartbeat timeout, exactly the
//!   ambiguity the generic failure detection service exists to resolve.
//!
//! Determinism: all draws come from split RNG streams keyed by attempt id,
//! so a given seed always produces the same history regardless of
//! submission interleaving.

use std::collections::HashMap;

use gridwfs_detect::notify::{Envelope, Notification, TaskId};
use gridwfs_sim::dist::Dist;
use gridwfs_sim::net::{Delivery, LinkModel};
use gridwfs_sim::resource::{GridResource, ResourceId, ResourceSpec};
use gridwfs_sim::rng::Rng;
use gridwfs_sim::sim::Sim;
use gridwfs_sim::time::SimTime;

use crate::executor::{Executor, SubmitRequest};

/// Behavioural profile of a program's tasks (how the *application* can fail,
/// as opposed to how the *host* fails).
#[derive(Debug, Clone, Default)]
pub struct TaskProfile {
    /// Emit a `Checkpoint` notification every this many time units of
    /// progress (the task is checkpoint-enabled, §4.3).
    pub checkpoint_period: Option<f64>,
    /// Software-crash process: time-to-crash distribution (process dies ⇒
    /// `Done` without `Task End`).
    pub soft_crash: Option<Dist>,
    /// User-defined exception behaviour.
    pub exception: Option<ExceptionProfile>,
}

/// Bernoulli exception checks, the Figure 13 model: the task checks an
/// environmental condition `checks` times, evenly spaced across its nominal
/// duration, and each check independently raises the exception with
/// probability `prob`.
#[derive(Debug, Clone)]
pub struct ExceptionProfile {
    /// Exception name raised (e.g. `disk_full`).
    pub name: String,
    /// Number of evenly spaced checks.
    pub checks: u32,
    /// Per-check probability of raising.
    pub prob: f64,
}

impl TaskProfile {
    /// A well-behaved task: no crashes, no exceptions, no checkpoints.
    pub fn reliable() -> Self {
        TaskProfile::default()
    }

    /// Builder: enable checkpoint emission.
    pub fn with_checkpoints(mut self, period: f64) -> Self {
        assert!(period > 0.0, "checkpoint period must be positive");
        self.checkpoint_period = Some(period);
        self
    }

    /// Builder: add a software-crash process.
    pub fn with_soft_crash(mut self, ttf: Dist) -> Self {
        self.soft_crash = Some(ttf);
        self
    }

    /// Builder: add Bernoulli exception checks.
    pub fn with_exception(mut self, name: impl Into<String>, checks: u32, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "prob must be in [0,1]");
        assert!(checks > 0, "need at least one check");
        self.exception = Some(ExceptionProfile {
            name: name.into(),
            checks,
            prob,
        });
        self
    }
}

struct HostState {
    resource: GridResource,
    /// The host is rebooting until this time (submissions queue behind it).
    down_until: f64,
}

/// The simulated Grid.
pub struct SimGrid {
    sim: Sim<Envelope>,
    hosts: HashMap<String, HostState>,
    profiles: HashMap<String, TaskProfile>,
    link: LinkModel,
    host_links: HashMap<String, LinkModel>,
    rng: Rng,
    /// Scheduled notification events per attempt, with their *send* times
    /// — an orphan cancel arriving at the host at time `t` suppresses only
    /// messages the task would have sent after `t`.
    pending: HashMap<TaskId, Vec<(gridwfs_sim::event::EventId, f64)>>,
    /// Which host each attempt was submitted to (orphan cancels must
    /// travel that host's link).
    task_hosts: HashMap<TaskId, String>,
    submitted: u64,
}

impl SimGrid {
    /// An empty Grid with a perfect notification link.
    pub fn new(seed: u64) -> Self {
        SimGrid {
            sim: Sim::new(),
            hosts: HashMap::new(),
            profiles: HashMap::new(),
            link: LinkModel::perfect(),
            host_links: HashMap::new(),
            rng: Rng::seed_from_u64(seed),
            pending: HashMap::new(),
            task_hosts: HashMap::new(),
            submitted: 0,
        }
    }

    /// Replaces the default notification link model (used by every host
    /// without a per-host override).
    pub fn with_link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// Overrides the link model for one host.
    pub fn set_host_link(&mut self, host: impl Into<String>, link: LinkModel) {
        self.host_links.insert(host.into(), link);
    }

    /// Builder form of [`SimGrid::set_host_link`].
    pub fn with_host_link(mut self, host: impl Into<String>, link: LinkModel) -> Self {
        self.set_host_link(host, link);
        self
    }

    /// Registers a host.
    pub fn add_host(&mut self, spec: ResourceSpec) {
        let id = ResourceId(self.hosts.len() as u32);
        let hostname = spec.hostname.clone();
        let resource = GridResource::new(id, spec, &self.rng);
        self.hosts.insert(
            hostname,
            HostState {
                resource,
                down_until: 0.0,
            },
        );
    }

    /// Registers the behaviour profile for a program (defaults to
    /// [`TaskProfile::reliable`] when absent).
    pub fn set_profile(&mut self, program: impl Into<String>, profile: TaskProfile) {
        self.profiles.insert(program.into(), profile);
    }

    /// True if the named host exists.
    pub fn has_host(&self, hostname: &str) -> bool {
        self.hosts.contains_key(hostname)
    }

    fn link_for(&self, host: &str) -> &LinkModel {
        self.host_links.get(host).unwrap_or(&self.link)
    }

    fn deliver(&mut self, task: TaskId, host: &str, send_at: f64, body: Notification) {
        let link = self.link_for(host).clone();
        for delay in link.offer_copies(&mut self.rng) {
            let env = Envelope::new(task, host, send_at, body.clone());
            let id = self.sim.schedule_at(SimTime::new(send_at + delay), env);
            self.pending.entry(task).or_default().push((id, send_at));
        }
    }

    /// Per-host failure priors for the resilience-aware scheduler:
    /// `(hostname, λ, D)` with λ = 1/E[TTF] (0 for failure-free hosts) and
    /// D = E[downtime].  Hostname-sorted so the result is deterministic.
    pub fn host_priors(&self) -> Vec<(String, f64, f64)> {
        let mut out: Vec<(String, f64, f64)> = self
            .hosts
            .iter()
            .map(|(name, h)| {
                let spec = &h.resource.spec;
                let lambda = if spec.ttf.is_never() {
                    0.0
                } else {
                    let mttf = spec.ttf.mean();
                    if mttf.is_finite() && mttf > 0.0 {
                        1.0 / mttf
                    } else {
                        0.0
                    }
                };
                let downtime = if spec.downtime.is_never() {
                    0.0
                } else {
                    let d = spec.downtime.mean();
                    if d.is_finite() {
                        d
                    } else {
                        0.0
                    }
                };
                (name.clone(), lambda, downtime)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Parses the progress cookie produced by checkpoint emission.
    fn parse_flag(flag: &str) -> f64 {
        flag.strip_prefix("ckpt:")
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|p| p.is_finite() && *p >= 0.0)
            .unwrap_or(0.0)
    }
}

impl Executor for SimGrid {
    fn now(&self) -> f64 {
        self.sim.now().as_f64()
    }

    fn submit(&mut self, req: SubmitRequest) {
        self.submitted += 1;
        self.task_hosts.insert(req.task, req.hostname.clone());
        let attempt_rng_id = 0x7A5C_0000_0000 | req.task.0;
        let mut arng = self.rng.split(attempt_rng_id);
        let now = self.now();

        let Some(host) = self.hosts.get_mut(&req.hostname) else {
            // Unknown host: the submission bounces — the job manager
            // reports Done with no Task End, i.e. a crash.
            self.deliver(req.task, &req.hostname, now, Notification::Done);
            return;
        };

        // Queue behind a rebooting host.
        let start = now.max(host.down_until);
        let speed = host.resource.spec.speed;

        // Remaining nominal work after checkpoint resume.
        let prior = req
            .checkpoint_flag
            .as_deref()
            .map(Self::parse_flag)
            .unwrap_or(0.0)
            .min(req.nominal_duration);
        let remaining_nominal = req.nominal_duration - prior;
        let wall_duration = remaining_nominal / speed;
        let end = start + wall_duration;

        // Host crash: next failure of this resource after `start`.
        let host_crash = {
            let ttf = host.resource.sample_ttf();
            if ttf.is_finite() {
                Some(start + ttf)
            } else {
                None
            }
        };

        // Application behaviour.
        let profile = self.profiles.get(&req.program).cloned().unwrap_or_default();
        let soft_crash = profile
            .soft_crash
            .as_ref()
            .map(|d| start + d.sample(&mut arng) / speed);
        // Exception checks are positioned across the *nominal* duration;
        // checks already passed before the checkpoint are not re-run.
        let exception_at = profile.exception.as_ref().and_then(|e| {
            let step = req.nominal_duration / e.checks as f64;
            (1..=e.checks)
                .map(|i| i as f64 * step)
                .filter(|&at_nominal| at_nominal > prior)
                .find(|_| arng.bernoulli(e.prob))
                .map(|at_nominal| start + (at_nominal - prior) / speed)
        });

        // Earliest terminal event decides the attempt's fate.
        #[derive(Clone, Copy, PartialEq)]
        enum Fate {
            Success,
            SoftCrash,
            Exception,
            HostCrash,
        }
        let mut fate = Fate::Success;
        let mut t_term = end;
        if let Some(t) = exception_at {
            // A check that lands exactly at the finish line still raises:
            // the task checks its environment *before* it can declare
            // success (this is what makes the Figure 13 model's fifth
            // check at t = FU effective).
            if t <= t_term {
                t_term = t;
                fate = Fate::Exception;
            }
        }
        if let Some(t) = soft_crash {
            if t < t_term {
                t_term = t;
                fate = Fate::SoftCrash;
            }
        }
        if let Some(t) = host_crash {
            if t < t_term {
                t_term = t;
                fate = Fate::HostCrash;
            }
        }

        // Host bookkeeping: a host crash takes the machine down.
        if fate == Fate::HostCrash {
            let down = host.resource.sample_downtime();
            host.down_until = t_term + down;
        }

        // Emit the stream.
        let hostname = req.hostname.clone();
        self.deliver(req.task, &hostname, start, Notification::TaskStart);
        if req.heartbeat_interval > 0.0 {
            let mut seq = 0u64;
            let mut t = start + req.heartbeat_interval;
            while t < t_term {
                self.deliver(req.task, &hostname, t, Notification::Heartbeat { seq });
                seq += 1;
                t += req.heartbeat_interval;
            }
        }
        if let Some(period) = profile.checkpoint_period {
            // The scheduler's adaptive hint overrides the profile's cadence,
            // but only for tasks the profile already checkpoint-enables —
            // the hint tunes K, it cannot conjure checkpoint support.
            let period = req
                .checkpoint_hint
                .filter(|p| p.is_finite() && *p > 0.0)
                .unwrap_or(period);
            // First checkpoint lands at the next period boundary after prior.
            let mut done_nominal = ((prior / period).floor() + 1.0) * period;
            while done_nominal < req.nominal_duration {
                let t = start + (done_nominal - prior) / speed;
                if t >= t_term {
                    break;
                }
                self.deliver(
                    req.task,
                    &hostname,
                    t,
                    Notification::Checkpoint {
                        flag: format!("ckpt:{done_nominal}"),
                    },
                );
                done_nominal += period;
            }
        }
        match fate {
            Fate::Success => {
                self.deliver(req.task, &hostname, end, Notification::TaskEnd);
                self.deliver(req.task, &hostname, end, Notification::Done);
            }
            Fate::SoftCrash => {
                self.deliver(req.task, &hostname, t_term, Notification::Done);
            }
            Fate::Exception => {
                let name = profile
                    .exception
                    .as_ref()
                    .expect("exception fate implies profile")
                    .name
                    .clone();
                self.deliver(
                    req.task,
                    &hostname,
                    t_term,
                    Notification::Exception {
                        name,
                        detail: format!("raised on {hostname}"),
                    },
                );
                self.deliver(req.task, &hostname, t_term, Notification::Done);
            }
            Fate::HostCrash => {
                // Silence: the host is gone. Nothing further arrives.
            }
        }
    }

    fn cancel(&mut self, task: TaskId) {
        if let Some(ids) = self.pending.remove(&task) {
            for (id, _) in ids {
                self.sim.cancel(id);
            }
        }
    }

    fn orphan_cancel(&mut self, task: TaskId) {
        // The cancel is a message to the (possibly alive) remote task: it
        // travels the host's link like everything else.  If it gets
        // through, it arrives at `now + delay` and stops the task — which
        // suppresses only notifications the task would have *sent* after
        // that instant.  Messages already in flight still deliver, which
        // is exactly what makes zombies possible.
        let Some(host) = self.task_hosts.get(&task).cloned() else {
            return; // never submitted here: nothing to cancel
        };
        let link = self.link_for(&host).clone();
        match link.offer(&mut self.rng) {
            Delivery::Dropped => {} // cancel lost; the orphan streams on
            Delivery::After(delay) => {
                let arrival = self.now() + delay;
                if let Some(ids) = self.pending.get_mut(&task) {
                    ids.retain(|&(id, send_at)| {
                        if send_at > arrival {
                            self.sim.cancel(id);
                            false
                        } else {
                            true
                        }
                    });
                    if ids.is_empty() {
                        self.pending.remove(&task);
                    }
                }
            }
        }
    }

    fn next_notification(&mut self, deadline: Option<f64>) -> Option<(f64, Envelope)> {
        let fired = match deadline {
            Some(d) => self.sim.next_until(SimTime::new(d))?,
            None => self.sim.next()?,
        };
        // Drop the event id from the cancellation index.
        if let Some(ids) = self.pending.get_mut(&fired.payload.task) {
            ids.retain(|&(id, _)| id != fired.id);
            if ids.is_empty() {
                self.pending.remove(&fired.payload.task);
            }
        }
        Some((fired.time.as_f64(), fired.payload))
    }

    fn is_idle(&self) -> bool {
        self.sim.is_idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwfs_detect::notify::Notification as N;

    fn grid() -> SimGrid {
        let mut g = SimGrid::new(42);
        g.add_host(ResourceSpec::reliable("good.host"));
        g.add_host(ResourceSpec::unreliable("bad.host", 5.0, 10.0));
        g.add_host(ResourceSpec::reliable("fast.host").with_speed(2.0));
        g
    }

    fn req(task: u64, host: &str, dur: f64) -> SubmitRequest {
        SubmitRequest {
            task: TaskId(task),
            activity: "a".into(),
            program: "p".into(),
            hostname: host.into(),
            service: "jobmanager".into(),
            nominal_duration: dur,
            checkpoint_flag: None,
            heartbeat_interval: 1.0,
            checkpoint_hint: None,
        }
    }

    fn drain(g: &mut SimGrid) -> Vec<(f64, Envelope)> {
        std::iter::from_fn(|| g.next_notification(None)).collect()
    }

    #[test]
    fn successful_task_stream() {
        let mut g = grid();
        g.submit(req(1, "good.host", 5.0));
        let events = drain(&mut g);
        let bodies: Vec<&N> = events.iter().map(|(_, e)| &e.body).collect();
        assert!(matches!(bodies.first(), Some(N::TaskStart)));
        assert!(matches!(bodies[bodies.len() - 2], N::TaskEnd));
        assert!(matches!(bodies[bodies.len() - 1], N::Done));
        let heartbeats = bodies
            .iter()
            .filter(|b| matches!(b, N::Heartbeat { .. }))
            .count();
        assert_eq!(heartbeats, 4, "hb at 1,2,3,4 (5.0 is the end)");
        let (t_end, _) = events.last().unwrap();
        assert_eq!(*t_end, 5.0);
    }

    #[test]
    fn speed_scales_wall_time() {
        let mut g = grid();
        g.submit(req(1, "fast.host", 10.0));
        let events = drain(&mut g);
        let (t_end, _) = events.last().unwrap();
        assert_eq!(*t_end, 5.0, "speed 2.0 halves duration");
    }

    #[test]
    fn unknown_host_bounces_as_crash() {
        let mut g = grid();
        g.submit(req(1, "ghost.host", 5.0));
        let events = drain(&mut g);
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0].1.body, N::Done));
    }

    #[test]
    fn host_crash_goes_silent() {
        // MTTF 5 on a 1000-long task: crash almost surely precedes success.
        let mut g = grid();
        g.submit(req(1, "bad.host", 1000.0));
        let events = drain(&mut g);
        assert!(
            !events
                .iter()
                .any(|(_, e)| matches!(e.body, N::Done | N::TaskEnd)),
            "host crash produces neither TaskEnd nor Done"
        );
        assert!(
            events.iter().any(|(_, e)| matches!(e.body, N::TaskStart)),
            "the attempt did start before going silent"
        );
    }

    #[test]
    fn soft_crash_is_done_without_task_end() {
        let mut g = grid();
        g.set_profile(
            "p",
            TaskProfile::reliable().with_soft_crash(Dist::constant(2.5)),
        );
        g.submit(req(1, "good.host", 10.0));
        let events = drain(&mut g);
        let (t, last) = events.last().unwrap();
        assert!(matches!(last.body, N::Done));
        assert_eq!(*t, 2.5);
        assert!(!events.iter().any(|(_, e)| matches!(e.body, N::TaskEnd)));
    }

    #[test]
    fn exception_profile_raises_at_check_point() {
        let mut g = grid();
        g.set_profile(
            "p",
            TaskProfile::reliable().with_exception("disk_full", 5, 1.0),
        );
        g.submit(req(1, "good.host", 30.0));
        let events = drain(&mut g);
        let exc = events
            .iter()
            .find(|(_, e)| matches!(e.body, N::Exception { .. }))
            .expect("exception with prob 1.0");
        assert_eq!(exc.0, 6.0, "first of 5 checks across 30 units");
        match &exc.1.body {
            N::Exception { name, .. } => assert_eq!(name, "disk_full"),
            _ => unreachable!(),
        }
        // Followed by Done at the same time.
        assert!(matches!(events.last().unwrap().1.body, N::Done));
    }

    #[test]
    fn zero_prob_exception_never_raises() {
        let mut g = grid();
        g.set_profile(
            "p",
            TaskProfile::reliable().with_exception("disk_full", 5, 0.0),
        );
        g.submit(req(1, "good.host", 30.0));
        let events = drain(&mut g);
        assert!(!events
            .iter()
            .any(|(_, e)| matches!(e.body, N::Exception { .. })));
        assert!(events.iter().any(|(_, e)| matches!(e.body, N::TaskEnd)));
    }

    #[test]
    fn checkpoints_carry_progress_flags() {
        let mut g = grid();
        g.set_profile("p", TaskProfile::reliable().with_checkpoints(2.0));
        g.submit(req(1, "good.host", 10.0));
        let events = drain(&mut g);
        let flags: Vec<&str> = events
            .iter()
            .filter_map(|(_, e)| match &e.body {
                N::Checkpoint { flag } => Some(flag.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(flags, vec!["ckpt:2", "ckpt:4", "ckpt:6", "ckpt:8"]);
    }

    #[test]
    fn checkpoint_hint_overrides_the_profile_cadence() {
        let mut g = grid();
        g.set_profile("p", TaskProfile::reliable().with_checkpoints(2.0));
        let mut r = req(1, "good.host", 10.0);
        r.checkpoint_hint = Some(5.0);
        g.submit(r);
        let flags: Vec<String> = drain(&mut g)
            .iter()
            .filter_map(|(_, e)| match &e.body {
                N::Checkpoint { flag } => Some(flag.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(flags, vec!["ckpt:5"], "hint of 5 replaces the 2.0 period");
        // A hint cannot enable checkpoints on a profile without them.
        let mut g = grid();
        let mut r = req(2, "good.host", 10.0);
        r.checkpoint_hint = Some(1.0);
        g.submit(r);
        assert!(!drain(&mut g)
            .iter()
            .any(|(_, e)| matches!(e.body, N::Checkpoint { .. })));
    }

    #[test]
    fn host_priors_surface_lambda_and_downtime() {
        let g = grid();
        let priors = g.host_priors();
        let names: Vec<&str> = priors.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["bad.host", "fast.host", "good.host"],
            "hostname-sorted"
        );
        let bad = &priors[0];
        assert!(
            (bad.1 - 1.0 / 5.0).abs() < 1e-12,
            "λ = 1/MTTF, got {}",
            bad.1
        );
        assert!((bad.2 - 10.0).abs() < 1e-12, "D = mean downtime");
        assert_eq!((priors[1].1, priors[1].2), (0.0, 0.0), "reliable host");
    }

    #[test]
    fn checkpoint_flag_resumes_remaining_work() {
        let mut g = grid();
        let mut r = req(1, "good.host", 10.0);
        r.checkpoint_flag = Some("ckpt:6".into());
        g.submit(r);
        let events = drain(&mut g);
        let (t_end, last) = events.last().unwrap();
        assert!(matches!(last.body, N::Done));
        assert_eq!(*t_end, 4.0, "only the remaining 4 units run");
    }

    #[test]
    fn malformed_flag_restarts_from_zero() {
        let mut g = grid();
        let mut r = req(1, "good.host", 10.0);
        r.checkpoint_flag = Some("garbage".into());
        g.submit(r);
        let events = drain(&mut g);
        assert_eq!(events.last().unwrap().0, 10.0);
    }

    #[test]
    fn cancel_suppresses_future_events() {
        let mut g = grid();
        g.submit(req(1, "good.host", 5.0));
        g.submit(req(2, "good.host", 5.0));
        g.cancel(TaskId(1));
        let events = drain(&mut g);
        assert!(events.iter().all(|(_, e)| e.task == TaskId(2)));
        assert!(!events.is_empty());
    }

    #[test]
    fn deadline_limits_delivery() {
        let mut g = grid();
        g.submit(req(1, "good.host", 5.0));
        // TaskStart at 0 arrives within deadline 0.5.
        assert!(g.next_notification(Some(0.5)).is_some());
        // Next heartbeat is at 1.0 — not within 0.5.
        assert!(g.next_notification(Some(0.5)).is_none());
        assert_eq!(g.now(), 0.5);
        assert!(!g.is_idle());
    }

    #[test]
    fn submissions_queue_behind_downtime() {
        let mut g = SimGrid::new(7);
        // MTTF tiny, downtime long: first submit crashes the host.
        g.add_host(ResourceSpec::unreliable("h", 0.5, 50.0));
        g.submit(req(1, "h", 100.0));
        let _ = drain(&mut g);
        let crash_downtime_end = {
            // Second submission must start no earlier than down_until.
            g.submit(req(2, "h", 0.1));
            let events = drain(&mut g);
            events.first().map(|(t, _)| *t).unwrap_or(0.0)
        };
        assert!(crash_downtime_end > 0.0, "start delayed past reboot");
    }

    #[test]
    fn lossy_link_drops_messages() {
        let mut g = SimGrid::new(11).with_link(LinkModel::lossy(0.0, 1.0));
        g.add_host(ResourceSpec::reliable("h"));
        g.submit(req(1, "h", 5.0));
        assert!(g.is_idle(), "everything dropped at the link");
    }

    #[test]
    fn orphan_cancel_lets_in_flight_messages_deliver() {
        // Every message on h travels 3 time units.  The orphan cancel sent
        // at t=3 reaches the host at t=6: it suppresses only what the task
        // would have sent after 6, while everything already in flight (and
        // everything sent before the cancel landed) still arrives.
        let mut g = SimGrid::new(3).with_host_link("h", LinkModel::lossy(3.0, 0.0));
        g.add_host(ResourceSpec::reliable("h"));
        g.submit(req(1, "h", 20.0));
        let (t, first) = g.next_notification(None).expect("TaskStart in flight");
        assert_eq!(t, 3.0, "TaskStart sent at 0 arrives at 3");
        assert!(matches!(first.body, N::TaskStart));
        g.orphan_cancel(TaskId(1));
        let rest = drain(&mut g);
        assert!(!rest.is_empty(), "in-flight messages still deliver");
        assert!(
            rest.iter().all(|(_, e)| e.sent_at <= 6.0),
            "nothing sent after the cancel arrived at t=6 gets out"
        );
        assert!(
            !rest
                .iter()
                .any(|(_, e)| matches!(e.body, N::Done | N::TaskEnd)),
            "the orphan never completes once the cancel lands"
        );
    }

    #[test]
    fn orphan_cancel_for_unknown_task_is_noop() {
        let mut g = grid();
        g.submit(req(1, "good.host", 5.0));
        g.orphan_cancel(TaskId(99));
        let events = drain(&mut g);
        assert!(matches!(events.last().unwrap().1.body, N::Done));
    }

    #[test]
    fn per_host_link_override_applies_only_to_that_host() {
        let mut g = SimGrid::new(9).with_host_link("slow", LinkModel::lossy(5.0, 0.0));
        g.add_host(ResourceSpec::reliable("slow"));
        g.add_host(ResourceSpec::reliable("clean"));
        g.submit(req(1, "slow", 2.0));
        g.submit(req(2, "clean", 2.0));
        for (t, e) in drain(&mut g) {
            if e.task == TaskId(1) {
                assert_eq!(t, e.sent_at + 5.0, "slow host's link delays by 5");
            } else {
                assert_eq!(t, e.sent_at, "clean host keeps the default link");
            }
        }
    }

    #[test]
    fn duplicating_link_doubles_every_message() {
        let baseline = {
            let mut g = SimGrid::new(4);
            g.add_host(ResourceSpec::reliable("h"));
            g.submit(req(1, "h", 5.0));
            drain(&mut g).len()
        };
        let mut g = SimGrid::new(4).with_link(LinkModel::lossy(0.0, 0.0).with_duplicates(1.0));
        g.add_host(ResourceSpec::reliable("h"));
        g.submit(req(1, "h", 5.0));
        assert_eq!(drain(&mut g).len(), baseline * 2);
    }

    #[test]
    fn lossy_deterministic_with_orphan_cancel() {
        let run = |seed| {
            let mut g = SimGrid::new(seed)
                .with_link(LinkModel::jittered(0.2, 0.5, 0.3).with_duplicates(0.1));
            g.add_host(ResourceSpec::reliable("h"));
            g.submit(req(1, "h", 10.0));
            g.submit(req(2, "h", 10.0));
            let first = g.next_notification(None);
            g.orphan_cancel(TaskId(1));
            let mut out = vec![first.map(|(t, e)| (t, e.task, format!("{:?}", e.body)))];
            out.extend(
                drain(&mut g)
                    .into_iter()
                    .map(|(t, e)| Some((t, e.task, format!("{:?}", e.body)))),
            );
            out
        };
        assert_eq!(run(13), run(13));
        assert_ne!(run(13), run(14));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut g = SimGrid::new(seed);
            g.add_host(ResourceSpec::unreliable("h", 10.0, 2.0));
            g.set_profile(
                "p",
                TaskProfile::reliable().with_soft_crash(Dist::exponential_mean(8.0)),
            );
            for i in 0..5 {
                g.submit(req(i, "h", 20.0));
            }
            drain(&mut g)
                .into_iter()
                .map(|(t, e)| (t, e.task, format!("{:?}", e.body)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
