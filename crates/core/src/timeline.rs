//! ASCII timeline rendering of a workflow execution.
//!
//! The engine records one [`Span`] per task attempt (submission →
//! settlement/cancellation).  [`render`] draws them as a Gantt-style chart,
//! one lane per attempt grouped by activity — which makes recovery
//! behaviour visible at a glance: retries appear as successive bars,
//! replicas as parallel bars with all but one cut short, and alternative
//! tasks as late bars on other activities.
//!
//! ```text
//! fast_task   #1 |=====x                                  | crashed
//! slow_task   #2 |      ===============================✓  | done
//! ```

use gridwfs_trace::{TaskOutcome, TraceEvent, TraceKind};

use crate::engine::Report;

/// How one attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Completed successfully.
    Completed,
    /// Crashed (including presumed crashes).
    Crashed,
    /// Raised an exception.
    Exception,
    /// Cancelled by the engine (losing replica / node settled elsewhere).
    Cancelled,
}

impl SpanOutcome {
    fn glyph(self) -> char {
        match self {
            SpanOutcome::Completed => '+',
            SpanOutcome::Crashed => 'x',
            SpanOutcome::Exception => '!',
            SpanOutcome::Cancelled => '/',
        }
    }

    fn label(self) -> &'static str {
        match self {
            SpanOutcome::Completed => "completed",
            SpanOutcome::Crashed => "crashed",
            SpanOutcome::Exception => "exception",
            SpanOutcome::Cancelled => "cancelled",
        }
    }
}

/// One task attempt's lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Owning activity.
    pub activity: String,
    /// Attempt id (engine task number).
    pub task: u64,
    /// Host the attempt ran on.
    pub host: String,
    /// Submission time.
    pub start: f64,
    /// Settlement/cancellation time.
    pub end: f64,
    /// How it ended.
    pub outcome: SpanOutcome,
}

impl From<TaskOutcome> for SpanOutcome {
    fn from(o: TaskOutcome) -> Self {
        match o {
            TaskOutcome::Completed => SpanOutcome::Completed,
            TaskOutcome::Crashed => SpanOutcome::Crashed,
            TaskOutcome::Exception => SpanOutcome::Exception,
            TaskOutcome::Cancelled => SpanOutcome::Cancelled,
        }
    }
}

/// Derives attempt spans from the flight journal — the single source of
/// truth: a span opens at each `task_submit` event and closes at the
/// matching `task_settle`.  Attempts that never settle (a simulated engine
/// crash abandons its in-flight work) produce no span, exactly as a crashed
/// engine records nothing.
pub fn spans_from_trace(events: &[TraceEvent]) -> Vec<Span> {
    let mut open: std::collections::HashMap<u64, (String, String, f64)> =
        std::collections::HashMap::new();
    let mut spans = Vec::new();
    for e in events {
        match &e.kind {
            TraceKind::TaskSubmitted {
                activity,
                task,
                host,
                ..
            } => {
                open.insert(*task, (activity.clone(), host.clone(), e.at));
            }
            TraceKind::TaskSettled { task, outcome, .. } => {
                if let Some((activity, host, start)) = open.remove(task) {
                    spans.push(Span {
                        activity,
                        task: *task,
                        host,
                        start,
                        end: e.at,
                        outcome: (*outcome).into(),
                    });
                }
            }
            _ => {}
        }
    }
    spans
}

/// Renders the report's spans as an ASCII chart `width` characters wide.
/// Spans are grouped by activity in first-submission order.
pub fn render(report: &Report, width: usize) -> String {
    let spans = &report.spans;
    if spans.is_empty() {
        return "(no task attempts were made)\n".to_string();
    }
    // Every bar field is exactly `cols` wide (a 10-column floor keeps
    // degenerate widths legible), and span positions are clamped into it:
    // a span ending after `finished_at` (aborted run) lands on the right
    // edge instead of widening its own row.
    let cols = width.max(10);
    let t_end = report
        .finished_at
        .max(spans.iter().map(|s| s.end).fold(0.0f64, f64::max));
    let scale = if t_end > 0.0 {
        (cols - 1) as f64 / t_end
    } else {
        1.0
    };
    let position = |t: f64| -> usize {
        let x = (t * scale).round();
        if x.is_finite() {
            (x as usize).min(cols - 1)
        } else {
            0
        }
    };
    let name_w = spans
        .iter()
        .map(|s| s.activity.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    out.push_str(&format!(
        "timeline 0 .. {t_end:.2} ({} attempts, '=' running, '+'/ 'x'/'!'/'/' = done/crash/exception/cancel)\n",
        spans.len()
    ));
    // Group by activity in first-appearance order.
    let mut order: Vec<&str> = Vec::new();
    for s in spans {
        if !order.contains(&s.activity.as_str()) {
            order.push(&s.activity);
        }
    }
    for activity in order {
        for s in spans.iter().filter(|s| s.activity == activity) {
            let from = position(s.start);
            let to = position(s.end).max(from);
            let mut lane = vec![' '; cols];
            for slot in lane.iter_mut().take(to).skip(from) {
                *slot = '=';
            }
            lane[to] = s.outcome.glyph();
            let lane: String = lane.into_iter().collect();
            out.push_str(&format!(
                "{:<name_w$} #{:<3} |{lane}| {}\n",
                s.activity,
                s.task,
                s.outcome.label(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::sim_executor::{SimGrid, TaskProfile};
    use gridwfs_sim::dist::Dist;
    use gridwfs_sim::resource::ResourceSpec;
    use gridwfs_wpdl::builder::{figure4, WorkflowBuilder};
    use gridwfs_wpdl::validate::validate;

    #[test]
    fn spans_cover_all_attempts() {
        let mut b = WorkflowBuilder::new("t").program("p", 10.0, &["h"]);
        b.activity("a", "p").retry(3, 1.0);
        let mut grid = SimGrid::new(1);
        grid.add_host(ResourceSpec::reliable("h"));
        grid.set_profile(
            "p",
            TaskProfile::reliable().with_soft_crash(Dist::constant(2.0)),
        );
        let report = Engine::new(b.build().unwrap(), grid).run();
        assert_eq!(report.spans.len(), 3, "one span per attempt");
        assert!(report
            .spans
            .iter()
            .all(|s| s.outcome == SpanOutcome::Crashed));
        assert!(report.spans.windows(2).all(|w| w[0].start <= w[1].start));
        for s in &report.spans {
            assert!(s.end >= s.start);
        }
    }

    #[test]
    fn replica_spans_mark_winner_and_cancelled() {
        let mut b = WorkflowBuilder::new("r").program("p", 10.0, &["fast", "slow"]);
        b.activity("a", "p").replicate();
        let mut grid = SimGrid::new(2);
        grid.add_host(ResourceSpec::reliable("fast").with_speed(2.0));
        grid.add_host(ResourceSpec::reliable("slow"));
        let report = Engine::new(b.build().unwrap(), grid).run();
        let outcomes: Vec<SpanOutcome> = report.spans.iter().map(|s| s.outcome).collect();
        assert!(outcomes.contains(&SpanOutcome::Completed));
        assert!(outcomes.contains(&SpanOutcome::Cancelled));
        let cancelled = report
            .spans
            .iter()
            .find(|s| s.outcome == SpanOutcome::Cancelled)
            .unwrap();
        assert_eq!(cancelled.end, 5.0, "loser cut at the winner's finish");
    }

    #[test]
    fn render_shows_recovery_structure() {
        let mut grid = SimGrid::new(3);
        grid.add_host(ResourceSpec::reliable("volunteer.example.org"));
        grid.add_host(ResourceSpec::reliable("condor.example.org"));
        grid.set_profile(
            "fast_impl",
            TaskProfile::reliable().with_soft_crash(Dist::constant(3.0)),
        );
        let report = Engine::new(validate(figure4(30.0, 150.0)).unwrap(), grid).run();
        let chart = render(&report, 60);
        assert!(chart.contains("fast_task"), "{chart}");
        assert!(chart.contains("slow_task"));
        assert!(chart.contains('x'), "crash glyph present:\n{chart}");
        assert!(chart.contains('+'), "completion glyph present:\n{chart}");
        // One line per attempt plus the header.
        assert_eq!(chart.lines().count(), 1 + report.spans.len());
    }

    fn report_with(spans: Vec<Span>, finished_at: f64) -> Report {
        Report {
            outcome: crate::instance::Outcome::Success,
            aborted: None,
            finished_at,
            makespan: finished_at,
            node_status: vec![],
            log: vec![],
            spans,
            trace: vec![],
            eval_errors: vec![],
            dlq: vec![],
        }
    }

    fn span(activity: &str, task: u64, start: f64, end: f64, outcome: SpanOutcome) -> Span {
        Span {
            activity: activity.to_string(),
            task,
            host: "h".to_string(),
            start,
            end,
            outcome,
        }
    }

    #[test]
    fn narrow_width_rows_stay_aligned() {
        // Bar fields must all be the same width even when `width` is below
        // the 10-column floor: a long span must not widen its own row.
        let report = report_with(
            vec![
                span("a", 1, 0.0, 10.0, SpanOutcome::Crashed),
                span("b", 2, 0.0, 1.0, SpanOutcome::Crashed),
            ],
            10.0,
        );
        for width in [0, 1, 3, 9] {
            let chart = render(&report, width);
            let bars: Vec<usize> = chart
                .lines()
                .skip(1)
                .map(|l| {
                    let open = l.find('|').expect("bar field present");
                    let close = l.rfind('|').expect("bar field closed");
                    close - open - 1
                })
                .collect();
            assert_eq!(
                bars,
                vec![10, 10],
                "width={width}: every bar field is exactly the 10-col floor\n{chart}"
            );
        }
    }

    #[test]
    fn all_zero_duration_spans_render_without_panic() {
        // t_end == 0.0 exercises the scale fallback.
        let report = report_with(
            vec![
                span("a", 1, 0.0, 0.0, SpanOutcome::Completed),
                span("b", 2, 0.0, 0.0, SpanOutcome::Cancelled),
            ],
            0.0,
        );
        let chart = render(&report, 40);
        assert!(chart.contains('+'), "{chart}");
        assert!(chart.contains('/'), "{chart}");
        let bars: Vec<usize> = chart
            .lines()
            .skip(1)
            .map(|l| l.rfind('|').unwrap() - l.find('|').unwrap() - 1)
            .collect();
        assert_eq!(bars, vec![40, 40], "uniform rows at the requested width");
    }

    #[test]
    fn span_ending_after_finished_at_stays_inside_the_chart() {
        // An aborted engine can leave finished_at before the last span end;
        // the chart must scale to the spans, not truncate or panic.
        let report = report_with(
            vec![span("late", 1, 0.0, 20.0, SpanOutcome::Cancelled)],
            5.0,
        );
        let chart = render(&report, 30);
        let row = chart.lines().nth(1).unwrap();
        let bar = &row[row.find('|').unwrap() + 1..row.rfind('|').unwrap()];
        assert_eq!(bar.len(), 30);
        assert!(
            bar.trim_end().ends_with('/'),
            "glyph at the right edge: {chart}"
        );
    }

    #[test]
    fn render_empty_report() {
        // A workflow of only dummies has no attempts.
        let mut b = WorkflowBuilder::new("d");
        b.dummy("only");
        let report = Engine::new(b.build().unwrap(), SimGrid::new(4)).run();
        assert!(report.is_success());
        assert!(render(&report, 40).contains("no task attempts"));
    }

    #[test]
    fn exception_glyph() {
        let mut b = WorkflowBuilder::new("e").program("p", 10.0, &["h"]);
        b.activity("a", "p");
        let mut grid = SimGrid::new(5);
        grid.add_host(ResourceSpec::reliable("h"));
        grid.set_profile("p", TaskProfile::reliable().with_exception("oom", 2, 1.0));
        let report = Engine::new(b.build().unwrap(), grid).run();
        assert_eq!(report.spans[0].outcome, SpanOutcome::Exception);
        assert!(render(&report, 40).contains('!'));
    }
}
