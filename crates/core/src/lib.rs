//! # grid-wfs — the Grid Workflow System engine
//!
//! Reproduction of the core contribution of *Grid Workflow: A Flexible
//! Failure Handling Framework for the Grid* (Hwang & Kesselman, HPDC 2003):
//! a workflow engine in which **failure-handling policy is workflow
//! structure**.  Change the XML (or the builder calls) and the recovery
//! strategy changes; the application tasks never do.
//!
//! * [`instance`] — the annotated parse tree: node statuses, edge firing,
//!   AND/OR joins, conditional transitions, do-while loops, skip
//!   propagation, and the success/failure outcome rule;
//! * [`engine`] — the navigator: submits ready tasks, classifies their fate
//!   through the generic failure detection service, applies task-level
//!   recovery (retry / replicate / checkpoint-resume) and lets the workflow
//!   structure handle the rest (alternative tasks, OR redundancy, exception
//!   handlers);
//! * [`executor`] — the GRAM-shaped submission abstraction, with a
//!   deterministic simulated Grid ([`sim_executor`]) and a real
//!   threaded runner ([`thread_executor`]);
//! * [`checkpoint`] — fault tolerance of the engine itself: the annotated
//!   parse tree persists to XML after every task termination and a
//!   restarted engine resumes where it left off.
//!
//! ## Quickstart
//!
//! ```
//! use grid_wfs::{Engine, SimGrid};
//! use gridwfs_sim::resource::ResourceSpec;
//! use gridwfs_wpdl::builder::figure4;
//! use gridwfs_wpdl::validate::validate;
//!
//! // The paper's Figure 4: fast-unreliable task with a slow-reliable
//! // alternative behind an OR-join.
//! let workflow = validate(figure4(30.0, 150.0)).unwrap();
//!
//! // A simulated Grid with the two hosts the workflow names.
//! let mut grid = SimGrid::new(42);
//! grid.add_host(ResourceSpec::reliable("volunteer.example.org"));
//! grid.add_host(ResourceSpec::reliable("condor.example.org"));
//!
//! let report = Engine::new(workflow, grid).run();
//! assert!(report.is_success());
//! assert_eq!(report.status_of("slow_task"), Some("skipped"));
//! ```

pub mod breaker;
pub mod checkpoint;
pub mod engine;
pub mod executor;
pub mod instance;
pub mod sched_score;
pub mod sim_executor;
pub mod thread_executor;
pub mod timeline;

pub use breaker::{BreakerConfig, BreakerEvent, HostBreakers};
pub use engine::{
    CheckpointSink, DlqEntry, Engine, EngineConfig, LogEntry, LogKind, Report, StepOutcome,
};
pub use executor::{Executor, Polled, SubmitRequest};
pub use gridwfs_detect::{DetectorPolicy, PhiConfig};
pub use gridwfs_trace::{TaskOutcome, TraceEvent, TraceKind, TraceSink};
pub use instance::{
    CompleteResult, EdgeState, Instance, ItemProgress, ItemState, NodeStatus, Outcome,
};
pub use sched_score::{
    HostEvidence, HostPrior, HostScorer, Placement, SchedulerPolicy, ScorerConfig,
};
pub use sim_executor::{ExceptionProfile, SimGrid, TaskProfile};
pub use thread_executor::{
    FaultHook, InjectedTaskFault, TaskContext, TaskFn, TaskResult, ThreadExecutor,
};
pub use timeline::{spans_from_trace, Span, SpanOutcome};
