//! Engine checkpointing: fault tolerance *of the engine itself*.
//!
//! From the paper (§7): "every time a task termination state is recognized,
//! the engine saves the current XML parse tree onto a persistent storage in
//! a XML file form.  So, when being restarted, the engine creates a parse
//! tree from the saved XML file rather than from the original XML file and
//! begins navigation from where it left off."
//!
//! The saved document embeds the workflow definition (so the checkpoint is
//! self-contained even if the original file changed) plus the runtime
//! annotations: per-node status and completion counts, and workflow
//! variables.  Attempts that were *in flight* at save time are recorded as
//! `pending` — on restart they are simply resubmitted, which is safe because
//! task-level recovery is idempotent from the workflow's point of view.

use std::path::Path;

use gridwfs_wpdl::expr::Value;
use gridwfs_wpdl::validate::validate;
use gridwfs_wpdl::xml::{self, Element};
use gridwfs_wpdl::{parse as wpdl_parse, writer};

use crate::instance::{Instance, ItemProgress, ItemState, NodeStatus};

/// Errors from saving/loading engine checkpoints.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not a valid checkpoint document.
    Format(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(m) => write!(f, "checkpoint format error: {m}"),
        }
    }
}
impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn status_str(s: &NodeStatus) -> String {
    match s {
        NodeStatus::Exception(e) => format!("exception:{e}"),
        // In-flight attempts are lost across a restart; record as pending
        // so the restarted engine resubmits them.
        NodeStatus::Running => "pending".to_string(),
        other => other.as_expr_str().to_string(),
    }
}

fn parse_status(s: &str) -> Result<NodeStatus, CheckpointError> {
    Ok(match s {
        "pending" => NodeStatus::Pending,
        "done" => NodeStatus::Done,
        "failed" => NodeStatus::Failed,
        "skipped" => NodeStatus::Skipped,
        _ => match s.strip_prefix("exception:") {
            Some(name) if !name.is_empty() => NodeStatus::Exception(name.to_string()),
            _ => {
                return Err(CheckpointError::Format(format!(
                    "unknown node status '{s}'"
                )))
            }
        },
    })
}

/// Serialises an instance to the checkpoint document.
pub fn to_xml(instance: &Instance) -> String {
    let mut runtime = Element::new("Runtime");
    for (name, status) in instance.statuses() {
        runtime = runtime.child(
            Element::new("Node")
                .attr("name", name)
                .attr("status", status_str(status))
                .attr("runs", instance.runs(name).to_string()),
        );
    }
    for (name, items) in instance.items_iter() {
        for (idx, p) in items.iter().enumerate() {
            let mut el = Element::new("Item")
                .attr("activity", name)
                .attr("index", idx.to_string())
                .attr("state", p.state.wire_str())
                .attr("attempts", p.attempts.to_string());
            if p.failover {
                el = el.attr("failover", "true");
            }
            if p.reprocess {
                el = el.attr("reprocess", "true");
            }
            if !p.reason.is_empty() {
                el = el.attr("reason", &p.reason);
            }
            runtime = runtime.child(el);
        }
    }
    for (name, value) in instance.vars_iter() {
        let (ty, raw) = match value {
            Value::Num(n) => ("num", n.to_string()),
            Value::Str(s) => ("str", s.clone()),
            Value::Bool(b) => ("bool", b.to_string()),
        };
        runtime = runtime.child(
            Element::new("Var")
                .attr("name", name)
                .attr("type", ty)
                .attr("value", raw),
        );
    }
    let doc = Element::new("EngineCheckpoint")
        .child(writer::to_element(instance.workflow()))
        .child(runtime);
    xml::write(&doc)
}

/// Writes the checkpoint crash-atomically: tmp file + `sync_all`, then
/// rename, then parent-dir fsync.  A crash at any point leaves either the
/// previous checkpoint or the new one in full, never a torn file.
///
/// This is the standalone path (`gridwfs run --checkpoint`), one fsync
/// pair per checkpoint.  The service never calls it: engines there hand
/// serialized checkpoints to a [`crate::CheckpointSink`] and the
/// scheduler group-commits them through its storage backend.
pub fn save(instance: &Instance, path: &Path) -> Result<(), CheckpointError> {
    gridwfs_chaos::write_atomic(&gridwfs_chaos::RealFs, path, to_xml(instance).as_bytes())?;
    Ok(())
}

/// Reconstructs an instance from checkpoint text.
pub fn from_xml(text: &str) -> Result<Instance, CheckpointError> {
    let root = xml::parse(text).map_err(|e| CheckpointError::Format(e.to_string()))?;
    if root.name != "EngineCheckpoint" {
        return Err(CheckpointError::Format(format!(
            "expected <EngineCheckpoint>, found <{}>",
            root.name
        )));
    }
    let wf_el = root
        .first_child("Workflow")
        .ok_or_else(|| CheckpointError::Format("missing <Workflow>".into()))?;
    let workflow =
        wpdl_parse::from_element(wf_el).map_err(|e| CheckpointError::Format(e.to_string()))?;
    let validated = validate(workflow).map_err(|issues| {
        CheckpointError::Format(format!(
            "embedded workflow invalid: {}",
            issues
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        ))
    })?;
    let mut instance = Instance::new(validated);
    let runtime = root
        .first_child("Runtime")
        .ok_or_else(|| CheckpointError::Format("missing <Runtime>".into()))?;
    // Restore variables first: edge guards may read them.
    for var in runtime.children_named("Var") {
        let name = var
            .get_attr("name")
            .ok_or_else(|| CheckpointError::Format("<Var> missing name".into()))?;
        let raw = var
            .get_attr("value")
            .ok_or_else(|| CheckpointError::Format("<Var> missing value".into()))?;
        let value = match var.get_attr("type") {
            Some("num") => Value::Num(raw.parse().map_err(|_| {
                CheckpointError::Format(format!("bad num value '{raw}' for ${name}"))
            })?),
            Some("bool") => Value::Bool(raw == "true"),
            _ => Value::Str(raw.to_string()),
        };
        instance.set_var(name, value);
    }
    for node in runtime.children_named("Node") {
        let name = node
            .get_attr("name")
            .ok_or_else(|| CheckpointError::Format("<Node> missing name".into()))?;
        if instance.workflow().activity(name).is_none() {
            return Err(CheckpointError::Format(format!(
                "runtime mentions unknown activity '{name}'"
            )));
        }
        let status = parse_status(
            node.get_attr("status")
                .ok_or_else(|| CheckpointError::Format("<Node> missing status".into()))?,
        )?;
        let runs: u32 = node
            .get_attr("runs")
            .unwrap_or("0")
            .parse()
            .map_err(|_| CheckpointError::Format(format!("bad runs count on '{name}'")))?;
        instance.force_runs(name, runs);
        if status != NodeStatus::Pending {
            instance.force_status(name, status);
        }
    }
    for item in runtime.children_named("Item") {
        let activity = item
            .get_attr("activity")
            .ok_or_else(|| CheckpointError::Format("<Item> missing activity".into()))?;
        let idx: usize = item
            .get_attr("index")
            .ok_or_else(|| CheckpointError::Format("<Item> missing index".into()))?
            .parse()
            .map_err(|_| CheckpointError::Format(format!("bad item index on '{activity}'")))?;
        match instance.items(activity) {
            Some(items) if idx < items.len() => {}
            _ => {
                return Err(CheckpointError::Format(format!(
                    "runtime mentions unknown foreach item {idx} of '{activity}'"
                )))
            }
        }
        let state = item
            .get_attr("state")
            .and_then(ItemState::parse_wire)
            .ok_or_else(|| {
                CheckpointError::Format(format!("bad item state on '{activity}'[{idx}]"))
            })?;
        let attempts: u32 = item
            .get_attr("attempts")
            .unwrap_or("0")
            .parse()
            .map_err(|_| {
                CheckpointError::Format(format!("bad item attempts on '{activity}'[{idx}]"))
            })?;
        instance.force_item(
            activity,
            idx,
            ItemProgress {
                state,
                attempts,
                failover: item.get_attr("failover") == Some("true"),
                reprocess: item.get_attr("reprocess") == Some("true"),
                reason: item.get_attr("reason").unwrap_or("").to_string(),
            },
        );
    }
    instance.recompute_edges();
    Ok(instance)
}

/// Rewrites a checkpoint so every dead-lettered `foreach` item becomes
/// pending again with a fresh attempt budget and the `reprocess` marker
/// set, and its owning activity reverts to `pending` so the engine re-runs
/// it.  Settled items, other activities, variables, and run counters are
/// untouched — the resume machinery re-runs *only* the failed items.
/// Returns the rewritten document and the number of items reset.
pub fn reset_dead_letters(text: &str) -> Result<(String, usize), CheckpointError> {
    let mut instance = from_xml(text)?;
    let targets: Vec<(String, usize)> = instance
        .items_iter()
        .flat_map(|(name, items)| {
            items
                .iter()
                .enumerate()
                .filter(|(_, p)| p.state == ItemState::DeadLettered)
                .map(|(i, _)| (name.to_string(), i))
                .collect::<Vec<_>>()
        })
        .collect();
    let mut reverted: Vec<String> = Vec::new();
    for (name, idx) in &targets {
        instance.force_item(
            name,
            *idx,
            ItemProgress {
                state: ItemState::Pending,
                attempts: 0,
                failover: false,
                reprocess: true,
                reason: String::new(),
            },
        );
        if !reverted.contains(name) {
            instance.force_status(name, NodeStatus::Pending);
            reverted.push(name.clone());
        }
    }
    if !targets.is_empty() {
        instance.recompute_edges();
    }
    Ok((to_xml(&instance), targets.len()))
}

/// Reads and reconstructs an instance from a checkpoint file.
pub fn load(path: &Path) -> Result<Instance, CheckpointError> {
    let text = std::fs::read_to_string(path)?;
    from_xml(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwfs_wpdl::builder::figure4;
    use gridwfs_wpdl::validate::validate;

    fn fresh() -> Instance {
        Instance::new(validate(figure4(30.0, 150.0)).unwrap())
    }

    #[test]
    fn roundtrip_fresh_instance() {
        let inst = fresh();
        let text = to_xml(&inst);
        let back = from_xml(&text).unwrap();
        assert_eq!(back.workflow(), inst.workflow());
        for (name, status) in inst.statuses() {
            assert_eq!(back.status(name), status);
        }
        assert_eq!(back.ready_nodes(), inst.ready_nodes());
    }

    #[test]
    fn mid_run_state_resumes_where_it_left_off() {
        let mut inst = fresh();
        inst.mark_running("fast_task");
        inst.settle("fast_task", NodeStatus::Failed);
        // slow_task is now the ready alternative.
        assert_eq!(inst.ready_nodes(), vec!["slow_task"]);
        let back = from_xml(&to_xml(&inst)).unwrap();
        assert_eq!(back.status("fast_task"), &NodeStatus::Failed);
        assert_eq!(
            back.ready_nodes(),
            vec!["slow_task"],
            "edges recomputed: alternative still ready"
        );
    }

    #[test]
    fn running_nodes_revert_to_pending() {
        let mut inst = fresh();
        inst.mark_running("fast_task");
        let back = from_xml(&to_xml(&inst)).unwrap();
        assert_eq!(back.status("fast_task"), &NodeStatus::Pending);
        assert_eq!(back.ready_nodes(), vec!["fast_task"], "will be resubmitted");
    }

    #[test]
    fn completed_workflow_stays_completed() {
        let mut inst = fresh();
        inst.mark_running("fast_task");
        inst.settle("fast_task", NodeStatus::Done);
        inst.mark_running("join_task");
        inst.settle("join_task", NodeStatus::Done);
        assert!(inst.is_finished());
        let back = from_xml(&to_xml(&inst)).unwrap();
        assert!(back.is_finished());
        assert_eq!(back.outcome(), inst.outcome());
        assert_eq!(back.status("slow_task"), &NodeStatus::Skipped);
    }

    #[test]
    fn runs_and_vars_roundtrip() {
        let mut inst = fresh();
        inst.set_var("x", Value::Num(2.5));
        inst.set_var("s", Value::Str("hello".into()));
        inst.set_var("b", Value::Bool(true));
        inst.mark_running("fast_task");
        inst.settle("fast_task", NodeStatus::Done);
        let back = from_xml(&to_xml(&inst)).unwrap();
        assert_eq!(back.runs("fast_task"), 1);
        assert_eq!(back.var("x"), Some(&Value::Num(2.5)));
        assert_eq!(back.var("s"), Some(&Value::Str("hello".into())));
        assert_eq!(back.var("b"), Some(&Value::Bool(true)));
    }

    #[test]
    fn exception_status_roundtrips_with_name() {
        let mut inst = fresh();
        inst.mark_running("fast_task");
        inst.settle("fast_task", NodeStatus::Exception("disk_full".into()));
        let back = from_xml(&to_xml(&inst)).unwrap();
        assert_eq!(
            back.status("fast_task"),
            &NodeStatus::Exception("disk_full".into())
        );
    }

    #[test]
    fn save_and_load_file() {
        let dir = std::env::temp_dir().join("gridwfs-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.ckpt.xml");
        let mut inst = fresh();
        inst.mark_running("fast_task");
        inst.settle("fast_task", NodeStatus::Failed);
        save(&inst, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.status("fast_task"), &NodeStatus::Failed);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn foreach_instance() -> Instance {
        use gridwfs_wpdl::ast::{Activity, ForeachSpec, Program, Transition, Workflow};
        let mut w = Workflow::new("mapred");
        w.programs.push(Program::new("p", 10.0, "h1").option("h2"));
        let mut m = Activity::new("map", "p");
        let mut f = ForeachSpec::new(vec!["s0".into(), "s1".into(), "s2".into()]);
        f.max_attempts = 2;
        m.foreach = Some(f);
        w.activities.push(m);
        w.activities.push(Activity::new("reduce", "p"));
        w.transitions.push(Transition::new("map", "reduce"));
        Instance::new(validate(w).unwrap())
    }

    #[test]
    fn foreach_item_progress_roundtrips() {
        let mut inst = foreach_instance();
        inst.mark_running("map");
        inst.force_item(
            "map",
            0,
            ItemProgress {
                state: ItemState::Done,
                attempts: 1,
                ..Default::default()
            },
        );
        inst.force_item(
            "map",
            1,
            ItemProgress {
                state: ItemState::DeadLettered,
                attempts: 4,
                failover: true,
                reprocess: false,
                reason: "crashed".into(),
            },
        );
        // Item 2 still pending with a banked attempt.
        inst.force_item(
            "map",
            2,
            ItemProgress {
                attempts: 1,
                ..Default::default()
            },
        );
        let back = from_xml(&to_xml(&inst)).unwrap();
        let items = back.items("map").unwrap();
        assert_eq!(items[0].state, ItemState::Done);
        assert_eq!(items[0].attempts, 1);
        assert_eq!(items[1].state, ItemState::DeadLettered);
        assert_eq!(items[1].attempts, 4);
        assert!(items[1].failover);
        assert_eq!(items[1].reason, "crashed");
        assert_eq!(items[2].state, ItemState::Pending);
        assert_eq!(items[2].attempts, 1, "banked attempt survives");
        assert_eq!(
            back.status("map"),
            &NodeStatus::Pending,
            "running saved as pending"
        );
    }

    #[test]
    fn reset_dead_letters_flips_only_dlq_items() {
        let mut inst = foreach_instance();
        inst.mark_running("map");
        inst.force_item(
            "map",
            0,
            ItemProgress {
                state: ItemState::Done,
                attempts: 1,
                ..Default::default()
            },
        );
        inst.force_item(
            "map",
            1,
            ItemProgress {
                state: ItemState::DeadLettered,
                attempts: 4,
                failover: true,
                reprocess: false,
                reason: "crashed".into(),
            },
        );
        inst.force_item(
            "map",
            2,
            ItemProgress {
                state: ItemState::Done,
                attempts: 2,
                ..Default::default()
            },
        );
        inst.settle("map", NodeStatus::Done);
        inst.mark_running("reduce");
        inst.settle("reduce", NodeStatus::Done);
        assert!(inst.is_finished());

        let (text, reset) = reset_dead_letters(&to_xml(&inst)).unwrap();
        assert_eq!(reset, 1);
        let back = from_xml(&text).unwrap();
        let items = back.items("map").unwrap();
        assert_eq!(items[0].state, ItemState::Done, "settled item untouched");
        assert_eq!(items[1].state, ItemState::Pending);
        assert_eq!(items[1].attempts, 0, "fresh budget");
        assert!(!items[1].failover);
        assert!(items[1].reprocess, "marked for the reprocess trace event");
        assert_eq!(items[2].state, ItemState::Done);
        assert_eq!(back.status("map"), &NodeStatus::Pending, "will re-run");
        assert_eq!(
            back.status("reduce"),
            &NodeStatus::Done,
            "downstream stays settled"
        );
        assert_eq!(back.ready_nodes(), vec!["map"], "only the foreach re-runs");

        // Idempotent on a DLQ-free checkpoint.
        let (text2, reset2) = reset_dead_letters(&text).unwrap();
        assert_eq!(reset2, 0);
        assert_eq!(text2, text);
    }

    #[test]
    fn malformed_item_entries_rejected() {
        let mut inst = foreach_instance();
        inst.mark_running("map");
        let text = to_xml(&inst);
        let evil = text.replace("index='2'", "index='9'");
        assert!(from_xml(&evil)
            .unwrap_err()
            .to_string()
            .contains("unknown foreach item"));
        let evil = text.replace("state='pending'", "state='levitating'");
        assert!(from_xml(&evil)
            .unwrap_err()
            .to_string()
            .contains("bad item state"));
    }

    #[test]
    fn malformed_checkpoints_rejected() {
        assert!(from_xml("<nope/>").is_err());
        assert!(from_xml("<EngineCheckpoint/>").is_err());
        assert!(from_xml("<EngineCheckpoint><Workflow/></EngineCheckpoint>").is_err());
        let err = from_xml(
            "<EngineCheckpoint><Workflow><Activity name='a'/></Workflow>\
             <Runtime><Node name='ghost' status='done'/></Runtime></EngineCheckpoint>",
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("unknown activity 'ghost'"),
            "{err}"
        );
        let err = from_xml(
            "<EngineCheckpoint><Workflow><Activity name='a'/></Workflow>\
             <Runtime><Node name='a' status='levitating'/></Runtime></EngineCheckpoint>",
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown node status"), "{err}");
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load(Path::new("/nonexistent/nowhere.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
