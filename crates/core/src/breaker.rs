//! Per-host circuit breaker for the engine's task placement.
//!
//! The paper's recovery ladder (retry → replicate → alternate) treats every
//! attempt as independent, but real Grids have *flaky hosts*: a host that
//! just failed three tasks in a row will very likely fail the fourth, and
//! naive retry burns the workflow's attempt budget against it.  The breaker
//! sits between task-level recovery and host selection:
//!
//! * `threshold` **consecutive** failures on a host open its breaker;
//! * an open breaker holds for a decorrelated-jitter backoff delay
//!   (`delay = min(max_delay, uniform(base_delay, prev_delay * 3))`,
//!   AWS-style), after which the next submission is a **half-open probe**;
//! * a successful probe closes the breaker, a failed probe re-opens it with
//!   a fresh (longer, jittered) delay.
//!
//! While a host's breaker is open, simple-policy option cycling skips it in
//! favour of the next closed host; if *every* candidate is open the engine
//! still submits (to the cycled choice, as a forced probe) — a breaker must
//! degrade placement, never deadlock it.  All decisions run on the engine's
//! single-threaded loop and draw jitter from a seeded SplitMix64 stream, so
//! runs are deterministic and journals replayable.  Transitions are recorded
//! to the flight journal as `breaker_open` / `breaker_probe` /
//! `breaker_closed` events.

use std::collections::HashMap;

/// Tuning for the per-host circuit breaker.  Off by default: the engine only
/// constructs breakers when `EngineConfig::breaker` is `Some`.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures on one host that open its breaker.
    pub threshold: u32,
    /// Backoff floor in executor seconds (first open waits at least this).
    pub base_delay: f64,
    /// Backoff ceiling in executor seconds.
    pub max_delay: f64,
    /// Seed for the decorrelated-jitter stream (deterministic per run).
    pub seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            base_delay: 1.0,
            max_delay: 60.0,
            seed: 2003,
        }
    }
}

/// A breaker state transition the engine should journal.
#[derive(Debug, Clone, PartialEq)]
pub enum BreakerEvent {
    /// The host's breaker opened; no placement until `until`.
    Opened {
        /// Affected host.
        host: String,
        /// Executor time the backoff expires.
        until: f64,
    },
    /// A success closed the host's (open or half-open) breaker.
    Closed {
        /// Affected host.
        host: String,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Closed,
    Open { until: f64 },
    HalfOpen,
}

#[derive(Debug)]
struct HostState {
    consecutive: u32,
    state: State,
    prev_delay: f64,
}

/// The engine-side registry of one breaker per host.
#[derive(Debug)]
pub struct HostBreakers {
    cfg: BreakerConfig,
    rng: u64,
    hosts: HashMap<String, HostState>,
}

impl HostBreakers {
    /// An empty registry (all breakers closed).
    pub fn new(cfg: BreakerConfig) -> Self {
        let rng = cfg.seed;
        HostBreakers {
            cfg,
            rng,
            hosts: HashMap::new(),
        }
    }

    fn next_unit(&mut self) -> f64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decorrelated jitter (AWS): uniform between the floor and three times
    /// the previous delay, capped.
    fn jitter_delay(&mut self, prev: f64) -> f64 {
        let lo = self.cfg.base_delay;
        let hi = (prev * 3.0).max(lo);
        let u = self.next_unit();
        (lo + u * (hi - lo)).min(self.cfg.max_delay)
    }

    /// Is this host's breaker open (still inside its backoff) at `now`?
    pub fn is_blocked(&self, host: &str, now: f64) -> bool {
        matches!(
            self.hosts.get(host).map(|h| h.state),
            Some(State::Open { until }) if now < until
        )
    }

    /// Is this host's breaker half-open (a probe is in flight)?  The
    /// resilience-aware scorer penalises half-open hosts: the probe exists
    /// to test them, not to receive fresh work.
    pub fn is_half_open(&self, host: &str) -> bool {
        matches!(self.hosts.get(host).map(|h| h.state), Some(State::HalfOpen))
    }

    /// The engine is about to submit to `host`.  If the breaker was open
    /// (backoff elapsed, or the engine was forced), this submission becomes
    /// the half-open probe; returns `true` so it can be journalled.
    pub fn on_submit(&mut self, host: &str, _now: f64) -> bool {
        match self.hosts.get_mut(host) {
            Some(h) if matches!(h.state, State::Open { .. }) => {
                h.state = State::HalfOpen;
                true
            }
            _ => false,
        }
    }

    /// Record a task failure (crash / presumed-dead) on `host` at `now`.
    pub fn record_failure(&mut self, host: &str, now: f64) -> Option<BreakerEvent> {
        // Draw the jitter unconditionally: the stream depends only on the
        // failure sequence, not on which failures cause transitions.
        let prev = self
            .hosts
            .get(host)
            .map(|h| h.prev_delay)
            .unwrap_or(self.cfg.base_delay);
        let delay = self.jitter_delay(prev);
        let threshold = self.cfg.threshold.max(1);
        let lo = self.cfg.base_delay;
        let h = self.hosts.entry(host.to_string()).or_insert(HostState {
            consecutive: 0,
            state: State::Closed,
            prev_delay: lo,
        });
        h.consecutive = h.consecutive.saturating_add(1);
        let opens = match h.state {
            State::Closed => h.consecutive >= threshold,
            State::HalfOpen => true, // failed probe re-opens immediately
            State::Open { .. } => false,
        };
        if !opens {
            return None;
        }
        h.prev_delay = delay;
        let until = now + delay;
        h.state = State::Open { until };
        Some(BreakerEvent::Opened {
            host: host.to_string(),
            until,
        })
    }

    /// Record a task success on `host`.
    pub fn record_success(&mut self, host: &str) -> Option<BreakerEvent> {
        let lo = self.cfg.base_delay;
        let h = self.hosts.get_mut(host)?;
        h.consecutive = 0;
        if h.state == State::Closed {
            return None;
        }
        h.state = State::Closed;
        h.prev_delay = lo;
        Some(BreakerEvent::Closed {
            host: host.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            threshold: 3,
            base_delay: 1.0,
            max_delay: 10.0,
            seed: 42,
        }
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = BreakerConfig::default();
        assert_eq!(c.threshold, 3);
        assert!(c.base_delay > 0.0 && c.base_delay < c.max_delay);
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let mut br = HostBreakers::new(cfg());
        assert!(br.record_failure("h", 0.0).is_none());
        assert!(br.record_failure("h", 1.0).is_none());
        let ev = br.record_failure("h", 2.0).expect("third failure opens");
        match ev {
            BreakerEvent::Opened { ref host, until } => {
                assert_eq!(host, "h");
                assert!(until > 2.0 && until <= 2.0 + 10.0, "until={until}");
            }
            other => panic!("expected Opened, got {other:?}"),
        }
        assert!(br.is_blocked("h", 2.5));
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut br = HostBreakers::new(cfg());
        br.record_failure("h", 0.0);
        br.record_failure("h", 1.0);
        assert!(br.record_success("h").is_none(), "closed stays closed");
        assert!(br.record_failure("h", 2.0).is_none());
        assert!(br.record_failure("h", 3.0).is_none());
        assert!(br.record_failure("h", 4.0).is_some(), "count restarted");
    }

    #[test]
    fn probe_success_closes_probe_failure_reopens_longer() {
        let mut br = HostBreakers::new(cfg());
        for t in 0..3 {
            br.record_failure("h", t as f64);
        }
        let first_until = match br.hosts["h"].state {
            State::Open { until } => until,
            s => panic!("expected open, got {s:?}"),
        };
        // Backoff elapsed: submission becomes a probe.
        assert!(br.on_submit("h", first_until + 0.1));
        assert!(!br.is_blocked("h", first_until + 0.1));
        // Failed probe re-opens without needing `threshold` new failures.
        let ev = br.record_failure("h", first_until + 0.2);
        assert!(matches!(ev, Some(BreakerEvent::Opened { .. })));
        // Successful probe closes.
        assert!(br.on_submit("h", 1e9));
        let ev = br.record_success("h");
        assert!(matches!(ev, Some(BreakerEvent::Closed { .. })));
        assert!(!br.is_blocked("h", 1e9));
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_bounded() {
        let runs: Vec<Vec<f64>> = (0..2)
            .map(|_| {
                let mut br = HostBreakers::new(cfg());
                let mut untils = Vec::new();
                let mut now = 0.0;
                for i in 0..40 {
                    if let Some(BreakerEvent::Opened { until, .. }) = br.record_failure("h", now) {
                        untils.push(until);
                        // Probe at expiry, fail again: drives prev_delay up.
                        now = until;
                        br.on_submit("h", now);
                    }
                    now += 0.1 * (i as f64);
                }
                untils
            })
            .collect();
        assert_eq!(runs[0], runs[1], "same seed, same jitter schedule");
        assert!(!runs[0].is_empty());
        let mut br = HostBreakers::new(BreakerConfig { seed: 7, ..cfg() });
        for t in 0..3 {
            br.record_failure("h", t as f64);
        }
        let mut prev = 1.0;
        for _ in 0..50 {
            let d = br.jitter_delay(prev);
            assert!((1.0..=10.0).contains(&d), "delay {d} out of bounds");
            prev = d;
        }
    }

    #[test]
    fn hosts_are_independent() {
        let mut br = HostBreakers::new(cfg());
        for t in 0..3 {
            br.record_failure("flaky", t as f64);
        }
        assert!(br.is_blocked("flaky", 2.1));
        assert!(!br.is_blocked("healthy", 2.1));
        assert!(br.record_failure("healthy", 2.2).is_none());
    }
}
