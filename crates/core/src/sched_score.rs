//! Resilience-aware host scoring for task placement.
//!
//! The paper's §5 failure handling reacts *after* a host dies; everything
//! the stack has accumulated since — φ-accrual suspicion levels (PR 5),
//! per-host circuit-breaker state (PR 4), observed failure rates and
//! heartbeat jitter — is evidence that can prevent the loss instead
//! (WRATH: resilience decisions keyed to runtime signals).  The
//! [`HostScorer`] folds that live evidence into one deterministic score
//! per host, lower = healthier:
//!
//! ```text
//! score(h) = w_rate    · windowed_failure_rate(h)
//!          + w_phi     · max φ over live attempts on h
//!          + w_jitter  · max heartbeat jitter over live attempts on h
//!          + w_halfopen· [breaker half-open]
//!          + w_prior   · λ(h) · (duration + D(h))     (simulator prior)
//! ```
//!
//! The engine consults the score at every placement point: initial
//! placement, retry target selection (steer retries *away* from suspected
//! hosts instead of blind option cycling), replica placement
//! (failure-decorrelated hosts), pre-emptive re-replication when a live
//! replica's host crosses [`ScorerConfig::rereplicate_phi`], and per-host
//! adaptive checkpoint intervals from observed MTTF — Young's
//! approximation √(2·C·MTTF), the paper's own §6 K-optimisation made
//! adaptive at runtime.
//!
//! Determinism: the scorer holds no RNG; scores are pure arithmetic over
//! journalled evidence, candidates are visited in the oblivious cycling
//! order and ties keep the *first* candidate — so with zero evidence the
//! resilient scheduler reproduces the oblivious placement exactly.  When
//! every candidate is blocked or suspect the scorer abstains
//! ([`HostScorer::choose`] returns `None`) and the engine falls back to
//! oblivious cycling with breaker-skip: placement is steered, never
//! deadlocked.

use std::collections::HashMap;

/// Which placement policy the engine runs.  `Oblivious` (the default) is
/// the pre-existing behaviour — option cycling plus breaker-skip — and
/// produces byte-identical journals to engines built before the scorer
/// existed.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum SchedulerPolicy {
    /// Blind option cycling (`tries % n`), skipping open breakers.
    #[default]
    Oblivious,
    /// Evidence-driven placement through a [`HostScorer`].
    Resilient(ScorerConfig),
}

/// A simulator-derived failure prior for one host: exponential failure
/// rate λ (1/MTTF) and mean downtime D.  Hosts without a prior score as
/// failure-free until live evidence says otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct HostPrior {
    /// Hostname the prior describes.
    pub host: String,
    /// Failure rate λ = 1 / MTTF (0 for failure-free hosts).
    pub lambda: f64,
    /// Mean downtime after a crash, in executor seconds.
    pub downtime: f64,
}

/// Tuning for the resilience-aware scorer.
#[derive(Debug, Clone, PartialEq)]
pub struct ScorerConfig {
    /// Outcomes remembered per host for the windowed failure rate.
    pub window: usize,
    /// Weight of the windowed failure rate.
    pub w_rate: f64,
    /// Weight of the live φ level (per unit φ).
    pub w_phi: f64,
    /// Weight of the heartbeat jitter (per second of σ).
    pub w_jitter: f64,
    /// Weight of the λ·(duration + D) prior term.
    pub w_prior: f64,
    /// Additive penalty while a host's breaker is half-open.
    pub w_halfopen: f64,
    /// Scores at or above this mark a host *suspect*: skipped when any
    /// non-suspect candidate exists, forcing the fallback when none does.
    pub suspect_score: f64,
    /// Live φ level at which a replica is pre-emptively re-replicated
    /// off its host.  Must sit above the cold-window ramp's healthy
    /// ceiling (`threshold / tolerance` per heartbeat interval of
    /// silence, ≈2.7 at the defaults) or warm-up jitter evacuates
    /// perfectly healthy attempts.
    pub rereplicate_phi: f64,
    /// Pre-emptive moves allowed per slot per attempt (budget, so a
    /// flapping φ cannot thrash a replica between hosts forever).
    pub max_rereplications: u32,
    /// Checkpoint cost C for Young's interval √(2·C·MTTF), in nominal
    /// task seconds.
    pub ckpt_cost: f64,
    /// Simulator-derived per-host failure priors.
    pub priors: Vec<HostPrior>,
}

impl Default for ScorerConfig {
    fn default() -> Self {
        ScorerConfig {
            window: 16,
            w_rate: 8.0,
            w_phi: 1.0,
            w_jitter: 0.5,
            w_prior: 4.0,
            w_halfopen: 2.0,
            suspect_score: 6.0,
            rereplicate_phi: 4.0,
            max_rereplications: 1,
            ckpt_cost: 1.0,
            priors: Vec::new(),
        }
    }
}

/// Live evidence about one candidate host, gathered by the engine at the
/// moment of a placement decision.  Keeping this a plain struct decouples
/// the scorer from the breaker and detector types.
#[derive(Debug, Clone, Copy, Default)]
pub struct HostEvidence {
    /// The host's breaker is open (inside its backoff) right now.
    pub blocked: bool,
    /// The host's breaker is half-open (probe in flight).
    pub half_open: bool,
    /// Highest live φ level over attempts currently running on the host.
    pub phi: f64,
    /// Highest heartbeat-interval standard deviation over those attempts.
    pub jitter: f64,
}

/// The outcome of a scored placement decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Index into the candidate list the engine passed in.
    pub index: usize,
    /// The chosen candidate's score.
    pub score: f64,
    /// True when the choice differs from the oblivious cycling base.
    pub steered: bool,
}

#[derive(Debug, Default)]
struct HostRecord {
    /// Ring of recent attempt outcomes, `true` = failure.
    outcomes: Vec<bool>,
    /// Next write position in the ring.
    cursor: usize,
    /// Failures observed (for the MTTF estimate).
    failures: u64,
    /// Executor time of the last observed failure.
    last_failure_at: f64,
    /// Online mean of inter-failure gaps (observed MTTF).
    mean_gap: f64,
}

/// Per-host evidence accumulator + deterministic argmin selector.
#[derive(Debug)]
pub struct HostScorer {
    cfg: ScorerConfig,
    priors: HashMap<String, (f64, f64)>,
    hosts: HashMap<String, HostRecord>,
}

impl HostScorer {
    /// A scorer with no observed history yet.
    pub fn new(cfg: ScorerConfig) -> Self {
        let priors = cfg
            .priors
            .iter()
            .map(|p| (p.host.clone(), (p.lambda, p.downtime)))
            .collect();
        HostScorer {
            cfg,
            priors,
            hosts: HashMap::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ScorerConfig {
        &self.cfg
    }

    fn record_outcome(&mut self, host: &str, failed: bool) -> &mut HostRecord {
        let window = self.cfg.window.max(1);
        let rec = self.hosts.entry(host.to_string()).or_default();
        if rec.outcomes.len() < window {
            rec.outcomes.push(failed);
        } else {
            rec.outcomes[rec.cursor] = failed;
        }
        rec.cursor = (rec.cursor + 1) % window;
        rec
    }

    /// Record a successful attempt on `host`.
    pub fn record_success(&mut self, host: &str) {
        self.record_outcome(host, false);
    }

    /// Record a failed attempt (crash / presumed-dead) on `host` at `now`,
    /// feeding both the windowed rate and the inter-failure MTTF estimate.
    pub fn record_failure(&mut self, host: &str, now: f64) {
        let rec = self.record_outcome(host, true);
        if rec.failures > 0 {
            let gap = (now - rec.last_failure_at).max(0.0);
            let n = rec.failures as f64;
            rec.mean_gap += (gap - rec.mean_gap) / n;
        }
        rec.failures += 1;
        rec.last_failure_at = now;
    }

    /// Windowed failure rate for `host` in `[0, 1]` (0 when unobserved).
    pub fn failure_rate(&self, host: &str) -> f64 {
        match self.hosts.get(host) {
            Some(r) if !r.outcomes.is_empty() => {
                r.outcomes.iter().filter(|&&f| f).count() as f64 / r.outcomes.len() as f64
            }
            _ => 0.0,
        }
    }

    /// Observed MTTF for `host`: the online mean of inter-failure gaps,
    /// falling back to the simulator prior (1/λ) and finally to `None`
    /// for hosts with no failure evidence at all.
    pub fn observed_mttf(&self, host: &str) -> Option<f64> {
        if let Some(r) = self.hosts.get(host) {
            if r.failures >= 2 && r.mean_gap > 0.0 {
                return Some(r.mean_gap);
            }
        }
        match self.priors.get(host) {
            Some(&(lambda, _)) if lambda > 0.0 => Some(1.0 / lambda),
            _ => None,
        }
    }

    /// Young's checkpoint interval √(2·C·MTTF) for `host`, `None` when no
    /// failure evidence or prior exists (keep the profile's own cadence).
    /// Clamped below by the checkpoint cost itself so a dying host cannot
    /// demand checkpoints more often than they cost to take.
    pub fn checkpoint_interval(&self, host: &str) -> Option<f64> {
        let mttf = self.observed_mttf(host)?;
        let c = self.cfg.ckpt_cost.max(1e-9);
        Some((2.0 * c * mttf).sqrt().max(c))
    }

    /// The score for one candidate, given the engine-gathered live
    /// evidence.  Pure arithmetic — no RNG, no clock reads.
    pub fn score(&self, host: &str, duration: f64, ev: &HostEvidence) -> f64 {
        let c = &self.cfg;
        let mut s = c.w_rate * self.failure_rate(host)
            + c.w_phi * ev.phi.max(0.0)
            + c.w_jitter * ev.jitter.max(0.0);
        if ev.half_open {
            s += c.w_halfopen;
        }
        if let Some(&(lambda, downtime)) = self.priors.get(host) {
            s += c.w_prior * lambda * (duration.max(0.0) + downtime);
        }
        s
    }

    /// Picks the healthiest candidate, visiting candidates in the
    /// oblivious cycling order starting at `base` so that a zero-evidence
    /// tie reproduces the oblivious choice exactly.  Candidates that are
    /// breaker-blocked or whose score reaches `suspect_score` are skipped;
    /// returns `None` when *every* candidate is skipped — the caller must
    /// then degrade to oblivious cycling (steered, never deadlocked).
    pub fn choose(
        &self,
        candidates: &[(&str, HostEvidence)],
        base: usize,
        duration: f64,
    ) -> Option<Placement> {
        let n = candidates.len();
        if n == 0 {
            return None;
        }
        let base = base % n;
        let mut best: Option<Placement> = None;
        for k in 0..n {
            let i = (base + k) % n;
            let (host, ev) = &candidates[i];
            if ev.blocked {
                continue;
            }
            let score = self.score(host, duration, ev);
            if score >= self.cfg.suspect_score {
                continue;
            }
            // Strict less-than keeps the first (cycling-order) candidate
            // on ties — the zero-evidence path is the oblivious path.
            if best.as_ref().is_none_or(|b| score < b.score) {
                best = Some(Placement {
                    index: i,
                    score,
                    steered: i != base,
                });
            }
        }
        best
    }

    /// Like [`HostScorer::choose`], but also skips hosts named in
    /// `exclude` — replica placement wants failure-decorrelated hosts, so
    /// sibling replicas' hosts are excluded before health is considered.
    pub fn choose_excluding(
        &self,
        candidates: &[(&str, HostEvidence)],
        base: usize,
        duration: f64,
        exclude: &[&str],
    ) -> Option<Placement> {
        let filtered: Vec<(&str, HostEvidence)> = candidates
            .iter()
            .map(|(h, ev)| {
                if exclude.contains(h) {
                    (
                        *h,
                        HostEvidence {
                            blocked: true,
                            ..*ev
                        },
                    )
                } else {
                    (*h, *ev)
                }
            })
            .collect();
        self.choose(&filtered, base, duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scorer() -> HostScorer {
        HostScorer::new(ScorerConfig::default())
    }

    fn ev() -> HostEvidence {
        HostEvidence::default()
    }

    #[test]
    fn default_policy_is_oblivious() {
        assert_eq!(SchedulerPolicy::default(), SchedulerPolicy::Oblivious);
    }

    #[test]
    fn zero_evidence_reproduces_the_oblivious_choice() {
        let s = scorer();
        let cands = [("a", ev()), ("b", ev()), ("c", ev())];
        for base in 0..5 {
            let p = s.choose(&cands, base, 10.0).unwrap();
            assert_eq!(p.index, base % 3, "tie keeps the cycling base");
            assert!(!p.steered);
            assert_eq!(p.score, 0.0);
        }
    }

    #[test]
    fn failure_rate_steers_away_from_the_flaky_host() {
        let mut s = scorer();
        for t in 0..4 {
            s.record_failure("a", t as f64);
        }
        let cands = [("a", ev()), ("b", ev())];
        let p = s.choose(&cands, 0, 10.0).unwrap();
        assert_eq!(p.index, 1, "retries route away from the failing host");
        assert!(p.steered);
        assert!(s.failure_rate("a") > 0.99);
        assert_eq!(s.failure_rate("b"), 0.0);
    }

    #[test]
    fn successes_age_failures_out_of_the_window() {
        let mut s = HostScorer::new(ScorerConfig {
            window: 4,
            ..ScorerConfig::default()
        });
        for t in 0..4 {
            s.record_failure("a", t as f64);
        }
        assert_eq!(s.failure_rate("a"), 1.0);
        for _ in 0..4 {
            s.record_success("a");
        }
        assert_eq!(s.failure_rate("a"), 0.0, "window fully refreshed");
    }

    #[test]
    fn live_phi_and_jitter_raise_the_score() {
        let s = scorer();
        let healthy = s.score("a", 10.0, &ev());
        let phi = s.score("a", 10.0, &HostEvidence { phi: 3.0, ..ev() });
        let jitter = s.score(
            "a",
            10.0,
            &HostEvidence {
                jitter: 2.0,
                ..ev()
            },
        );
        let half_open = s.score(
            "a",
            10.0,
            &HostEvidence {
                half_open: true,
                ..ev()
            },
        );
        assert_eq!(healthy, 0.0);
        assert!(phi > healthy && jitter > healthy && half_open > healthy);
    }

    #[test]
    fn prior_prefers_the_reliable_host_for_long_tasks() {
        let s = HostScorer::new(ScorerConfig {
            priors: vec![
                HostPrior {
                    host: "flaky".into(),
                    lambda: 1.0 / 30.0,
                    downtime: 5.0,
                },
                HostPrior {
                    host: "solid".into(),
                    lambda: 0.0,
                    downtime: 0.0,
                },
            ],
            ..ScorerConfig::default()
        });
        let cands = [("flaky", ev()), ("solid", ev())];
        let p = s.choose(&cands, 0, 100.0).unwrap();
        assert_eq!(p.index, 1, "long task avoids the high-λ host");
        // A free task has nothing to lose: expected-loss prior scales
        // with duration, so the short-task penalty is smaller.
        assert!(s.score("flaky", 1.0, &ev()) < s.score("flaky", 100.0, &ev()));
    }

    #[test]
    fn blocked_and_suspect_hosts_are_skipped_until_none_remain() {
        let mut s = scorer();
        for t in 0..8 {
            s.record_failure("bad", t as f64); // rate 1.0 ⇒ score 8 ≥ 6
        }
        let blocked = HostEvidence {
            blocked: true,
            ..ev()
        };
        // One healthy candidate left: it wins.
        let cands = [("bad", ev()), ("x", blocked), ("ok", ev())];
        let p = s.choose(&cands, 0, 1.0).unwrap();
        assert_eq!(p.index, 2);
        // Everyone bad: the scorer abstains (graceful degradation).
        let cands = [("bad", ev()), ("x", blocked)];
        assert!(s.choose(&cands, 0, 1.0).is_none());
        assert!(s.choose(&[], 0, 1.0).is_none());
    }

    #[test]
    fn replica_exclusion_decorrelates_placement() {
        let s = scorer();
        let cands = [("a", ev()), ("b", ev()), ("c", ev())];
        let p = s.choose_excluding(&cands, 0, 5.0, &["a"]).unwrap();
        assert_eq!(p.index, 1, "sibling's host excluded, next-best wins");
        assert!(s
            .choose_excluding(&cands, 0, 5.0, &["a", "b", "c"])
            .is_none());
    }

    #[test]
    fn observed_mttf_prefers_evidence_over_prior() {
        let mut s = HostScorer::new(ScorerConfig {
            priors: vec![HostPrior {
                host: "h".into(),
                lambda: 1.0 / 100.0,
                downtime: 1.0,
            }],
            ..ScorerConfig::default()
        });
        assert_eq!(s.observed_mttf("h"), Some(100.0), "prior before evidence");
        assert_eq!(s.observed_mttf("unknown"), None);
        s.record_failure("h", 10.0);
        assert_eq!(s.observed_mttf("h"), Some(100.0), "one failure: no gap yet");
        s.record_failure("h", 40.0);
        s.record_failure("h", 60.0);
        let mttf = s.observed_mttf("h").unwrap();
        assert!(
            (mttf - 25.0).abs() < 1e-9,
            "mean gap of 30 and 20, got {mttf}"
        );
    }

    #[test]
    fn checkpoint_interval_follows_youngs_approximation() {
        let mut s = HostScorer::new(ScorerConfig {
            ckpt_cost: 1.0,
            priors: vec![HostPrior {
                host: "h".into(),
                lambda: 1.0 / 50.0,
                downtime: 1.0,
            }],
            ..ScorerConfig::default()
        });
        let k = s.checkpoint_interval("h").unwrap();
        assert!((k - 10.0).abs() < 1e-9, "√(2·1·50) = 10, got {k}");
        assert_eq!(s.checkpoint_interval("unknown"), None);
        // Shrinking observed MTTF shrinks the interval, floored at C.
        s.record_failure("h", 0.0);
        s.record_failure("h", 0.5);
        let k2 = s.checkpoint_interval("h").unwrap();
        assert!(k2 < k && k2 >= 1.0, "got {k2}");
    }

    #[test]
    fn scoring_is_deterministic() {
        let build = || {
            let mut s = scorer();
            s.record_failure("a", 1.0);
            s.record_success("a");
            s.record_failure("b", 2.0);
            let cands = [
                ("a", HostEvidence { phi: 0.5, ..ev() }),
                ("b", ev()),
                (
                    "c",
                    HostEvidence {
                        jitter: 0.25,
                        ..ev()
                    },
                ),
            ];
            (0..6)
                .map(|base| s.choose(&cands, base, 7.0))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
