//! Seeded step/run equivalence corpus: driving an engine through the
//! non-blocking `step()` API must reproduce `run()`'s journal byte for
//! byte, and the same report, across a corpus of workflows on a
//! fault-injecting Grid.  `trace_properties.rs` checks the same law with
//! randomized workflows under proptest; this file is the plain-`#[test]`
//! counterpart that runs everywhere (no dev-dependencies), so the
//! equivalence the `gridwfs-serve` scheduler stands on is never skipped.

use grid_wfs::engine::{Engine, Report, StepOutcome};
use grid_wfs::sim_executor::{SimGrid, TaskProfile};
use grid_wfs::{TaskResult, ThreadExecutor};
use gridwfs_sim::dist::Dist;
use gridwfs_sim::resource::ResourceSpec;
use gridwfs_wpdl::builder::{figure4, figure5, figure6, WorkflowBuilder};
use gridwfs_wpdl::validate::{validate, Validated};

/// A Grid where `h2` fails often enough that retries, replicas, and
/// failure transitions all fire somewhere in the seed corpus.
fn lossy_grid(seed: u64) -> SimGrid {
    let mut g = SimGrid::new(seed);
    g.add_host(ResourceSpec::reliable("h1"));
    g.add_host(ResourceSpec::unreliable("h2", 20.0, 1.0));
    g.set_profile(
        "p",
        TaskProfile::reliable().with_soft_crash(Dist::exponential_mean(30.0)),
    );
    g
}

/// The paper's example hosts, with the volunteer machine flaky so the
/// figure workflows actually exercise their failure edges.
fn paper_grid(seed: u64) -> SimGrid {
    let mut g = SimGrid::new(seed);
    g.add_host(ResourceSpec::unreliable("volunteer.example.org", 40.0, 2.0));
    g.add_host(ResourceSpec::reliable("condor.example.org"));
    g.set_profile(
        "fast_impl",
        TaskProfile::reliable().with_soft_crash(Dist::exponential_mean(25.0)),
    );
    g
}

/// A chain that leans on every recovery policy at once: retries with
/// backoff up front, a replicated middle, and a failure edge to a
/// cleanup tail.
fn recovery_chain() -> Validated {
    let mut b = WorkflowBuilder::new("recovery-chain").program("p", 12.0, &["h1", "h2"]);
    b.activity("ingest", "p").retry(3, 2.0).backoff(2.0);
    b.activity("transform", "p").replicate();
    b.activity("publish", "p").retry(2, 1.0);
    b.activity("cleanup", "p");
    b.edge("ingest", "transform")
        .edge("transform", "publish")
        .on_failure("publish", "cleanup")
        .build()
        .expect("recovery chain validates")
}

/// Drives `engine` to completion through `step()`, asserting the
/// contract virtual grids promise: they never report `Idle`.
fn step_to_finish(mut engine: Engine<SimGrid>) -> Report {
    loop {
        match engine.step() {
            StepOutcome::Finished(report) => return *report,
            StepOutcome::Progressed => {}
            StepOutcome::Idle { wake_at } => {
                panic!("virtual grid reported Idle (wake_at {wake_at:?})")
            }
        }
    }
}

fn assert_equivalent(ran: &Report, stepped: &Report) {
    assert_eq!(
        ran.trace_jsonl(),
        stepped.trace_jsonl(),
        "step() and run() journals diverged"
    );
    assert_eq!(
        format!("{:?}", ran.outcome),
        format!("{:?}", stepped.outcome)
    );
    assert_eq!(ran.makespan, stepped.makespan);
    assert_eq!(ran.spans, stepped.spans);
    assert_eq!(ran.log.len(), stepped.log.len());
}

#[test]
fn step_matches_run_across_seeded_fault_corpus() {
    for seed in 0..32u64 {
        let ran = Engine::new(recovery_chain(), lossy_grid(seed)).run();
        let stepped = step_to_finish(Engine::new(recovery_chain(), lossy_grid(seed)));
        assert_equivalent(&ran, &stepped);
    }
}

#[test]
fn step_matches_run_on_paper_figure_workflows() {
    let figures: [fn(f64, f64) -> gridwfs_wpdl::ast::Workflow; 3] = [figure4, figure5, figure6];
    for build in figures {
        for seed in [1u64, 7, 23, 40, 77, 104, 271, 828] {
            let workflow = || validate(build(30.0, 150.0)).expect("figure workflow validates");
            let ran = Engine::new(workflow(), paper_grid(seed)).run();
            let stepped = step_to_finish(Engine::new(workflow(), paper_grid(seed)));
            assert_equivalent(&ran, &stepped);
        }
    }
}

/// On the paced `ThreadExecutor` the engine genuinely waits on wall-clock
/// work, so `step()` must hand control back with `Idle` instead of
/// parking — and still converge on the same successful outcome `run()`
/// would produce.
#[test]
fn paced_step_yields_idle_and_still_finishes() {
    let chain = || {
        let mut b = WorkflowBuilder::new("paced-chain").program("p", 1.0, &["local"]);
        b.activity("a", "p");
        b.activity("b", "p");
        b.edge("a", "b").build().expect("paced chain validates")
    };
    let executor = || {
        let mut executor = ThreadExecutor::new();
        executor.register("p", |ctx| {
            ctx.work_for(0.05, 0.01);
            TaskResult::Success
        });
        executor
    };

    let mut engine = Engine::new(chain(), executor());
    let mut idles = 0usize;
    let stepped = loop {
        match engine.step() {
            StepOutcome::Finished(report) => break *report,
            StepOutcome::Progressed => {}
            StepOutcome::Idle { wake_at } => {
                idles += 1;
                // wake_at is on the executor's clock; without a deadline
                // the engine is simply waiting on in-flight work.
                if let Some(t) = wake_at {
                    assert!(t.is_finite(), "non-finite wake_at {t}");
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
    };
    assert!(idles > 0, "paced tasks never left the engine idle");
    assert!(stepped.is_success(), "{:?}", stepped.outcome);
    assert_eq!(stepped.spans.len(), 2, "one attempt per activity");

    let ran = Engine::new(chain(), executor()).run();
    assert!(ran.is_success(), "{:?}", ran.outcome);
    assert_eq!(
        ran.node_status, stepped.node_status,
        "run() and step() disagree on terminal node states"
    );
}
