//! End-to-end `<Foreach>` fan-out tests on the simulated Grid: dynamic
//! instantiation under `max_parallel`, per-item retry budgets, failover,
//! the three exhaustion actions, failure budgets over the item set, and
//! the dead-letter reprocess cycle through `checkpoint::reset_dead_letters`.

use grid_wfs::checkpoint;
use grid_wfs::engine::{Engine, EngineConfig};
use grid_wfs::sim_executor::SimGrid;
use grid_wfs::TraceKind;
use gridwfs_sim::resource::ResourceSpec;
use gridwfs_wpdl::ast::{ForeachSpec, ItemAction};
use gridwfs_wpdl::builder::WorkflowBuilder;
use gridwfs_wpdl::validate::Validated;

fn items(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("shard-{i}")).collect()
}

/// A map/reduce shape: `map` fans out over `n` items, `reduce` follows.
fn mapred(n: usize, tweak: impl FnOnce(&mut ForeachSpec)) -> Validated {
    let mut spec = ForeachSpec::new(items(n));
    tweak(&mut spec);
    let mut b = WorkflowBuilder::new("mapred")
        .program("p", 4.0, &["h"])
        .program("alt", 2.0, &["alt.host"]);
    b.activity("map", "p").foreach(spec);
    b.activity("reduce", "alt");
    b.edge("map", "reduce").build().expect("validates")
}

fn reliable_grid(seed: u64) -> SimGrid {
    let mut g = SimGrid::new(seed);
    g.add_host(ResourceSpec::reliable("h"));
    g.add_host(ResourceSpec::reliable("alt.host"));
    g
}

/// A grid where program `p`'s only option bounces instantly (the host is
/// unknown to the grid), so every primary attempt fails deterministically.
fn primary_dead_grid(seed: u64) -> SimGrid {
    let mut g = SimGrid::new(seed);
    g.add_host(ResourceSpec::reliable("alt.host"));
    g
}

fn count<'a>(report: &'a grid_wfs::Report, f: impl Fn(&'a TraceKind) -> bool) -> usize {
    report.trace.iter().filter(|e| f(&e.kind)).count()
}

fn settled_with(report: &grid_wfs::Report, want: &str) -> usize {
    count(
        report,
        |k| matches!(k, TraceKind::ItemSettled { outcome, .. } if outcome == want),
    )
}

#[test]
fn fan_out_completes_every_item() {
    let report = Engine::new(mapred(5, |_| {}), reliable_grid(1)).run();
    assert!(report.is_success(), "{:?}", report.outcome);
    assert_eq!(report.status_of("map"), Some("done"));
    assert_eq!(report.status_of("reduce"), Some("done"));
    assert_eq!(report.submissions_of("map"), 5, "one attempt per item");
    assert_eq!(settled_with(&report, "done"), 5);
    assert!(report.dlq.is_empty());
    assert_eq!(
        count(&report, |k| matches!(
            k,
            TraceKind::ForeachStarted {
                items: 5,
                pending: 5,
                ..
            }
        )),
        1
    );
}

#[test]
fn max_parallel_bounds_concurrent_items() {
    let report = Engine::new(mapred(6, |s| s.max_parallel = 2), reliable_grid(2)).run();
    assert!(report.is_success());
    // All six attempts ran on the same 4-unit program with bound 2: three
    // full waves.
    assert_eq!(report.makespan, 3.0 * 4.0 + 2.0, "3 map waves + reduce");
    let map_spans: Vec<_> = report
        .spans
        .iter()
        .filter(|s| s.activity == "map")
        .collect();
    assert_eq!(map_spans.len(), 6);
    for s in &map_spans {
        let overlapping = map_spans
            .iter()
            .filter(|o| o.start < s.end && s.start < o.end)
            .count();
        assert!(overlapping <= 2, "bound breached: {overlapping} overlap");
    }
}

#[test]
fn exhausted_items_dead_letter_without_failing_the_workflow() {
    let report = Engine::new(
        mapred(3, |s| {
            s.max_attempts = 2;
            s.retry_interval = 1.0;
        }),
        primary_dead_grid(3),
    )
    .run();
    // Dead-lettered items park for reprocessing; the fan-out itself (and
    // the workflow) still completes.
    assert!(report.is_success(), "{:?}", report.outcome);
    assert_eq!(report.status_of("map"), Some("done"));
    assert_eq!(report.submissions_of("map"), 6, "2 attempts x 3 items");
    assert_eq!(report.dlq.len(), 3);
    for (i, e) in report.dlq.iter().enumerate() {
        assert_eq!(e.activity, "map");
        assert_eq!(e.index, i);
        assert_eq!(e.item, format!("shard-{i}"));
        assert_eq!(e.attempts, 2);
        assert!(!e.reason.is_empty());
    }
    assert_eq!(
        count(&report, |k| matches!(k, TraceKind::ItemDeadLettered { .. })),
        3
    );
}

#[test]
fn skip_action_tolerates_exhausted_items() {
    let report = Engine::new(
        mapred(2, |s| s.on_exhausted = ItemAction::Skip),
        primary_dead_grid(4),
    )
    .run();
    assert!(report.is_success());
    assert!(report.dlq.is_empty(), "skip does not dead-letter");
    assert_eq!(settled_with(&report, "skipped"), 2);
}

#[test]
fn stop_action_fails_the_fan_out_and_cancels_the_rest() {
    let report = Engine::new(
        mapred(4, |s| {
            s.on_exhausted = ItemAction::Stop;
            s.max_parallel = 1;
        }),
        primary_dead_grid(5),
    )
    .run();
    assert!(!report.is_success());
    assert_eq!(report.status_of("map"), Some("failed"));
    assert_eq!(report.status_of("reduce"), Some("skipped"));
    assert_eq!(
        settled_with(&report, "failed"),
        1,
        "first item stops the node"
    );
    assert_eq!(settled_with(&report, "cancelled"), 3, "rest never ran");
}

#[test]
fn failure_budget_breach_fails_the_workflow() {
    let report = Engine::new(
        mapred(4, |s| {
            s.max_parallel = 1;
            s.max_failures = Some(1);
        }),
        primary_dead_grid(6),
    )
    .run();
    // Items dead-letter one at a time; the second dead letter exceeds
    // max_failures=1 and fails the node.
    assert!(!report.is_success());
    assert_eq!(report.status_of("map"), Some("failed"));
    assert_eq!(report.dlq.len(), 2);
    assert_eq!(settled_with(&report, "cancelled"), 2);
}

#[test]
fn failover_reruns_items_on_the_alternative_program() {
    let report = Engine::new(
        mapred(3, |s| {
            s.failover = Some("alt".into());
            s.retry_interval = 0.5;
        }),
        primary_dead_grid(7),
    )
    .run();
    assert!(report.is_success(), "{:?}", report.outcome);
    assert!(report.dlq.is_empty());
    assert_eq!(
        count(&report, |k| matches!(
            k,
            TraceKind::ItemFailover { program, .. } if program == "alt"
        )),
        3
    );
    assert_eq!(settled_with(&report, "done"), 3);
    assert_eq!(
        report.submissions_of("map"),
        6,
        "one dead primary + one failover attempt per item"
    );
}

#[test]
fn engine_crash_mid_fan_out_resumes_without_resettling_items() {
    let dir = std::env::temp_dir().join(format!("gridwfs-foreach-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("mapred.ckpt.xml");
    let config = EngineConfig {
        checkpoint_path: Some(ckpt.clone()),
        max_settlements: Some(3),
        ..EngineConfig::default()
    };
    let first = Engine::new(mapred(5, |s| s.max_parallel = 1), reliable_grid(8))
        .with_config(config)
        .run();
    assert_eq!(first.aborted.as_deref(), Some("max_settlements"));
    assert_eq!(settled_with(&first, "done"), 3);

    let instance = checkpoint::load(&ckpt).expect("checkpoint readable");
    let resumed = Engine::from_instance(instance, reliable_grid(9))
        .with_checkpointing(&ckpt)
        .run();
    assert!(resumed.is_success(), "{:?}", resumed.outcome);
    assert_eq!(
        count(&resumed, |k| matches!(
            k,
            TraceKind::ForeachStarted {
                items: 5,
                pending: 2,
                ..
            }
        )),
        1,
        "three checkpointed items survive the crash"
    );
    assert_eq!(
        settled_with(&resumed, "done"),
        2,
        "only pending items re-ran"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dead_letter_reprocess_banks_prior_attempts_and_settles_items_once() {
    let dir = std::env::temp_dir().join(format!("gridwfs-dlqcycle-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("mapred.ckpt.xml");
    // Round 1: the primary host is dead, every item dead-letters.
    let first = Engine::new(mapred(3, |s| s.max_attempts = 2), primary_dead_grid(10))
        .with_checkpointing(&ckpt)
        .run();
    assert_eq!(first.dlq.len(), 3);

    // `dlq retry`: flip dead-lettered items back to pending...
    let text = std::fs::read_to_string(&ckpt).unwrap();
    let (reset, n) = checkpoint::reset_dead_letters(&text).expect("reset applies");
    assert_eq!(n, 3);
    std::fs::write(&ckpt, reset).unwrap();

    // ...and resume on a grid where the host is back.
    let instance = checkpoint::load(&ckpt).expect("checkpoint readable");
    let resumed = Engine::from_instance(instance, reliable_grid(11))
        .with_checkpointing(&ckpt)
        .run();
    assert!(resumed.is_success(), "{:?}", resumed.outcome);
    assert!(resumed.dlq.is_empty(), "reprocessed items settled");
    assert_eq!(
        count(&resumed, |k| matches!(k, TraceKind::ItemReprocessed { .. })),
        3,
        "every retried item journals its reprocess"
    );
    assert_eq!(settled_with(&resumed, "done"), 3);
    // The final checkpoint holds exactly one terminal state per item.
    let final_text = std::fs::read_to_string(&ckpt).unwrap();
    let final_instance = checkpoint::from_xml(&final_text).unwrap();
    let states = final_instance.items("map").unwrap();
    assert!(states.iter().all(|p| p.state == grid_wfs::ItemState::Done));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journals_are_deterministic_per_seed() {
    let run = |seed| {
        Engine::new(
            mapred(4, |s| {
                s.max_parallel = 2;
                s.max_attempts = 2;
                s.retry_interval = 1.0;
            }),
            reliable_grid(seed),
        )
        .run()
        .trace_jsonl()
    };
    assert_eq!(run(12), run(12), "same seed, same journal");
}
